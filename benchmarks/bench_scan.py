"""Scan-pipeline benchmark: array plane vs object path vs reference.

Builds one target pool from the standard per-prefix 6Gen run, then
scans growing tiers of it with (a) the sequential per-address reference
path, (b) the batched *object* path (``use_arrays=False`` — Python-int
batches through the list[bool] lookups), and (c) the batched *array*
plane (packed uint64 hi/lo columns, vectorised lookups), verifying on
every tier that all paths produce identical hits *and* identical
``ScanStats`` — the parity contract the engine promises for a fixed
``rng_seed``.  A lossy tier exercises the order-independent loss PRF,
and a multi-worker run checks that shared-memory process sharding
reproduces the reference hit set.  Medians and speedups land in
``benchmarks/results/BENCH_scan.json`` (see docs/performance.md for
how to read the tiers).

Standalone script, not a pytest benchmark — CI runs it with ``--quick``
and fails the build if the paths ever diverge, and the ``scan-speedup``
job additionally gates on ``--min-array-speedup``:

    python benchmarks/bench_scan.py [--quick] [--out BENCH_scan.json]
                                    [--min-array-speedup X.Y]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import experiments as ex  # noqa: E402
from repro.analysis.grouping import run_per_prefix  # noqa: E402
from repro.scanner.blacklist import Blacklist  # noqa: E402
from repro.scanner.engine import ScanConfig, Scanner  # noqa: E402
from repro.ipv6.prefix import Prefix  # noqa: E402
from repro.telemetry import (  # noqa: E402
    NULL_TELEMETRY,
    JsonlSink,
    RunManifest,
    Telemetry,
)
from repro.telemetry.timer import time_call  # noqa: E402

FULL_TIERS = (10_000, 50_000, 200_000, 500_000)
QUICK_TIERS = (10_000, 50_000)
BUDGET = 20_000
SCALE = 0.3
RNG_SEED = 5

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "BENCH_scan.json"


def build_pool(limit: int) -> list[int]:
    """Target pool from the standard 6Gen run (streamed, deterministic)."""
    context = ex.standard_context(SCALE)
    run = run_per_prefix(context.groups, BUDGET)
    pool: list[int] = []
    seen: set[int] = set()
    for target in run.iter_targets():
        if target not in seen:
            seen.add(target)
            pool.append(target)
            if len(pool) >= limit:
                break
    return pool


def make_blacklist(pool: list[int]) -> Blacklist:
    """Blacklist a slice of target space so that path gets exercised."""
    blacklist = Blacklist()
    for target in pool[:: max(1, len(pool) // 50)]:
        blacklist.add(Prefix(int(target), 128))
    return blacklist


def bench_tier(
    truth, blacklist: Blacklist, pool: list[int], n: int,
    repeats: int, loss_rate: float, telemetry: Telemetry = NULL_TELEMETRY,
) -> dict:
    targets = pool[:n]
    configs = {
        "reference": ScanConfig(use_batched=False),
        "object": ScanConfig(use_arrays=False),
        "arrays": ScanConfig(),
    }
    timings: dict[str, list[float]] = {name: [] for name in configs}
    identical = True
    for _ in range(repeats):
        results = {}
        for name, config in configs.items():
            # Only the array (production) path is instrumented, so the
            # JSONL records one pipeline's counters per tier run.
            scanner = Scanner(
                truth, blacklist=blacklist, loss_rate=loss_rate,
                rng_seed=RNG_SEED, config=config,
                telemetry=telemetry if name == "arrays" else None,
            )
            results[name], elapsed = time_call(lambda s=scanner: s.scan(targets))
            timings[name].append(elapsed)
        for name in ("object", "arrays"):
            if (
                results[name].hits != results["reference"].hits
                or results[name].stats != results["reference"].stats
            ):
                identical = False
    baseline = statistics.median(timings["reference"])
    object_path = statistics.median(timings["object"])
    arrays = statistics.median(timings["arrays"])
    return {
        "targets": n,
        "loss_rate": loss_rate,
        "baseline_median_s": round(baseline, 4),
        "batched_median_s": round(object_path, 4),
        "arrays_median_s": round(arrays, 4),
        "speedup": round(baseline / object_path, 2) if object_path else None,
        "arrays_speedup": round(baseline / arrays, 2) if arrays else None,
        "arrays_over_batched": round(object_path / arrays, 2) if arrays else None,
        "identical": identical,
    }


def check_workers(
    truth, blacklist: Blacklist, pool: list[int],
    telemetry: Telemetry = NULL_TELEMETRY,
) -> dict:
    """Multi-worker scans must reproduce the reference hit set and stats."""
    targets = pool[: min(len(pool), 100_000)]
    reference = Scanner(
        truth, blacklist=blacklist, loss_rate=0.1, rng_seed=RNG_SEED,
        config=ScanConfig(use_batched=False),
    ).scan(targets)
    object_scanner = Scanner(
        truth, blacklist=blacklist, loss_rate=0.1, rng_seed=RNG_SEED,
        config=ScanConfig(workers=2, use_arrays=False),
    )
    object_pooled, object_s = time_call(lambda: object_scanner.scan(targets))
    arrays_scanner = Scanner(
        truth, blacklist=blacklist, loss_rate=0.1, rng_seed=RNG_SEED,
        config=ScanConfig(workers=2), telemetry=telemetry,
    )
    arrays_pooled, arrays_s = time_call(lambda: arrays_scanner.scan(targets))
    identical = all(
        pooled.hits == reference.hits and pooled.stats == reference.stats
        for pooled in (object_pooled, arrays_pooled)
    )
    return {
        "targets": len(targets),
        "workers": 2,
        "pool_s": round(object_s, 4),
        "arrays_pool_s": round(arrays_s, 4),
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small tiers / fewer repeats (CI divergence gate)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: benchmarks/results/BENCH_scan.json)",
    )
    parser.add_argument(
        "--min-array-speedup",
        type=float,
        metavar="X.Y",
        help="fail unless the array plane beats the object path by at "
             "least this factor on the largest lossless tier (CI "
             "scan-speedup gate)",
    )
    parser.add_argument(
        "--telemetry",
        type=pathlib.Path,
        metavar="FILE",
        help="also append a telemetry JSONL (manifest + per-tier events + "
             "scan metrics) for the array path",
    )
    args = parser.parse_args(argv)
    if not args.out.parent.is_dir():
        parser.error(f"output directory does not exist: {args.out.parent}")

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    repeats = 2 if args.quick else 3
    telemetry = (
        Telemetry(JsonlSink(args.telemetry)) if args.telemetry
        else NULL_TELEMETRY
    )
    RunManifest.create(
        "bench_scan",
        {"quick": args.quick, "scale": SCALE, "budget": BUDGET,
         "repeats": repeats},
        rng_seed=RNG_SEED,
    ).emit(telemetry)
    pool = build_pool(max(tiers))
    tiers = tuple(n for n in tiers if n <= len(pool)) or (len(pool),)
    blacklist = make_blacklist(pool)
    truth = ex.standard_context(SCALE).internet.truth

    rows = []
    for n in tiers:
        row = bench_tier(truth, blacklist, pool, n, repeats, 0.0, telemetry)
        rows.append(row)
        telemetry.event("progress", {"stage": "bench_tier", **row})
        print(
            f"targets={row['targets']:>7}  baseline={row['baseline_median_s']:.3f}s  "
            f"object={row['batched_median_s']:.3f}s  "
            f"arrays={row['arrays_median_s']:.3f}s  "
            f"arrays_speedup={row['arrays_speedup']}x  "
            f"arrays_over_batched={row['arrays_over_batched']}x  "
            f"identical={row['identical']}"
        )
    # One lossy tier: the loss PRF must stay order-independent.
    lossy = bench_tier(truth, blacklist, pool, tiers[0], repeats, 0.2, telemetry)
    rows.append(lossy)
    telemetry.event("progress", {"stage": "bench_tier", **lossy})
    print(
        f"targets={lossy['targets']:>7}  loss=0.2  "
        f"baseline={lossy['baseline_median_s']:.3f}s  "
        f"object={lossy['batched_median_s']:.3f}s  "
        f"arrays={lossy['arrays_median_s']:.3f}s  "
        f"identical={lossy['identical']}"
    )
    workers = check_workers(truth, blacklist, pool, telemetry)
    telemetry.event("progress", {"stage": "workers_check", **workers})
    print(
        f"workers={workers['workers']}  targets={workers['targets']}  "
        f"object_pool={workers['pool_s']:.3f}s  "
        f"arrays_pool={workers['arrays_pool_s']:.3f}s  "
        f"identical={workers['identical']}"
    )
    telemetry.close()

    payload = {
        "benchmark": "scan_batched_pipeline",
        "scale": SCALE,
        "budget": BUDGET,
        "rng_seed": RNG_SEED,
        "repeats": repeats,
        "quick": args.quick,
        "tiers": rows,
        "workers_check": workers,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if not all(row["identical"] for row in rows) or not workers["identical"]:
        print("DIVERGENCE: batched scan output differs from reference")
        return 1
    if args.min_array_speedup is not None:
        # Gate on the largest lossless tier (the first rows are the
        # lossless ladder; the lossy tier is appended after them).
        gate_row = rows[len(tiers) - 1]
        measured = gate_row["arrays_over_batched"]
        if measured is None or measured < args.min_array_speedup:
            print(
                f"SPEEDUP GATE FAILED: arrays over object path "
                f"{measured}x < {args.min_array_speedup}x "
                f"at {gate_row['targets']} targets"
            )
            return 1
        print(
            f"speedup gate OK: {measured}x >= {args.min_array_speedup}x "
            f"at {gate_row['targets']} targets"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
