"""Generation-plane benchmark: column-native TGA output vs scalar.

Fits the standard per-prefix 6Gen run once (clustering is identical
work for every path and is excluded from timing), then measures the
*generation -> scan-ingest* stage over growing target tiers:

* **scalar** — each prefix emits boxed Python ints in densest-first
  order (``iter_targets_by_density``), the stream is deduped with
  ``dict.fromkeys`` and packed into ``(hi, lo)`` columns — exactly what
  ``Scanner.scan`` does with a list of ints before the array plane can
  start probing;
* **columns** — each prefix emits packed ``(hi, lo)`` uint64 columns
  directly (``target_columns_by_density``), deduped with the streaming
  fused-key :class:`ColumnDeduper` — the zero-boxing path
  ``run_full_scan`` now feeds the scanner.

Every tier asserts the two paths produce the identical address
sequence (same targets, same first-seen order), and a separate check
runs the *full* pipeline — per-prefix generation through a real scan —
serially and with ``gen_workers`` 1 and 2, requiring identical hits
and stats.  Results land in ``benchmarks/results/BENCH_generate.json``.

Standalone script, not a pytest benchmark — CI runs it with ``--quick``
and fails the build on any divergence, and the ``gen-speedup`` job
additionally gates on ``--min-column-speedup``:

    python benchmarks/bench_generate.py [--quick] [--out OUT.json]
                                        [--min-column-speedup X.Y]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import experiments as ex  # noqa: E402
from repro.analysis.grouping import MultiPrefixRun, run_per_prefix  # noqa: E402
from repro.ipv6.addrplane import (  # noqa: E402
    ColumnDeduper,
    concat_columns,
    pack,
    unpack,
)
from repro.scanner.engine import ScanConfig, Scanner  # noqa: E402
from repro.telemetry import (  # noqa: E402
    NULL_TELEMETRY,
    JsonlSink,
    RunManifest,
    Telemetry,
)
from repro.telemetry.timer import time_call  # noqa: E402

FULL_TIERS = (10_000, 50_000, 200_000, 500_000)
QUICK_TIERS = (10_000, 50_000)
BUDGET = 20_000
SCALE = 0.3
RNG_SEED = 5

DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "BENCH_generate.json"


def fit_runs() -> MultiPrefixRun:
    """The shared clustering fit every timed path starts from."""
    context = ex.standard_context(SCALE)
    return run_per_prefix(context.groups, BUDGET)


def select_prefixes(run: MultiPrefixRun, n: int) -> list:
    """Smallest sorted-prefix slice whose cumulative targets reach ``n``."""
    selected = []
    total = 0
    for prefix in sorted(run.runs):
        prefix_run = run.runs[prefix]
        selected.append(prefix_run)
        total += len(prefix_run.result.target_set())
        if total >= n:
            break
    return selected


def emit_scalar(prefix_runs) -> tuple:
    """Boxed emission + list ingest: densest-first ints, dict dedupe, pack."""
    stream = []
    for prefix_run in prefix_runs:
        stream.extend(prefix_run.result.iter_targets_by_density())
    ordered = list(dict.fromkeys(stream))
    return pack(ordered)


def emit_columns(prefix_runs) -> tuple:
    """Packed emission + column ingest: column chunks, fused-key dedupe."""
    dedupe = ColumnDeduper()
    chunks = []
    for prefix_run in prefix_runs:
        hi, lo = prefix_run.result.target_columns_by_density()
        chunks.append(dedupe.add(hi, lo))
    return concat_columns(chunks)


def clear_column_cache(prefix_runs) -> None:
    """Drop cached columns so every repeat re-materialises them."""
    for prefix_run in prefix_runs:
        prefix_run.result._columns = None


def bench_tier(
    run: MultiPrefixRun, n: int, repeats: int,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> dict:
    prefix_runs = select_prefixes(run, n)
    timings: dict[str, list[float]] = {"scalar": [], "columns": []}
    identical = True
    targets = 0
    for _ in range(repeats):
        clear_column_cache(prefix_runs)
        scalar, scalar_s = time_call(lambda: emit_scalar(prefix_runs))
        columns, columns_s = time_call(lambda: emit_columns(prefix_runs))
        timings["scalar"].append(scalar_s)
        timings["columns"].append(columns_s)
        targets = len(scalar[0])
        if len(columns[0]) != targets or unpack(*columns) != unpack(*scalar):
            identical = False
        telemetry.count("generate.targets_total", targets)
        if columns_s > 0:
            telemetry.gauge("generate.targets_per_sec", targets / columns_s)
    scalar_median = statistics.median(timings["scalar"])
    columns_median = statistics.median(timings["columns"])
    return {
        "tier": n,
        "targets": targets,
        "prefixes": len(prefix_runs),
        "scalar_median_s": round(scalar_median, 4),
        "columns_median_s": round(columns_median, 4),
        "column_speedup": (
            round(scalar_median / columns_median, 2) if columns_median else None
        ),
        "identical": identical,
    }


def check_gen_workers(telemetry: Telemetry = NULL_TELEMETRY) -> dict:
    """Serial vs gen_workers 1/2 full pipelines must be bit-identical.

    A smaller budget keeps this check fast; it exercises the complete
    path — parallel per-prefix generation, shared-memory column
    transport, column streaming into the scanner — against the serial
    reference, comparing hits *and* stats.
    """
    context = ex.standard_context(SCALE)
    groups = {p: context.groups[p] for p in sorted(context.groups)[:16]}

    def full(gen_workers):
        run = run_per_prefix(groups, 2_000, processes=gen_workers)
        scanner = Scanner(
            context.internet.truth, config=ScanConfig(), rng_seed=RNG_SEED,
        )
        return run, scanner.scan(run.iter_target_columns())

    reference_run, reference = full(None)
    rows = []
    identical = True
    for workers in (1, 2):
        (run, scan), elapsed = time_call(lambda w=workers: full(w))
        same = (
            scan.hits == reference.hits
            and scan.stats == reference.stats
            and all(
                run.runs[p].target_columns()[0].tolist()
                == reference_run.runs[p].target_columns()[0].tolist()
                and run.runs[p].target_columns()[1].tolist()
                == reference_run.runs[p].target_columns()[1].tolist()
                for p in reference_run.runs
            )
        )
        identical = identical and same
        rows.append(
            {"gen_workers": workers, "seconds": round(elapsed, 4),
             "identical": same}
        )
        telemetry.event(
            "progress", {"stage": "gen_workers_check", **rows[-1]}
        )
    return {
        "prefixes": len(groups),
        "hits": len(reference.hits),
        "runs": rows,
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small tiers / fewer repeats (CI divergence gate)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: benchmarks/results/"
             "BENCH_generate.json)",
    )
    parser.add_argument(
        "--min-column-speedup",
        type=float,
        metavar="X.Y",
        help="fail unless the column path beats the scalar path by at "
             "least this factor on the largest tier (CI gen-speedup gate)",
    )
    parser.add_argument(
        "--telemetry",
        type=pathlib.Path,
        metavar="FILE",
        help="also append a telemetry JSONL (manifest + per-tier events + "
             "generation metrics) for the column path",
    )
    args = parser.parse_args(argv)
    if not args.out.parent.is_dir():
        parser.error(f"output directory does not exist: {args.out.parent}")

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    repeats = 2 if args.quick else 3
    telemetry = (
        Telemetry(JsonlSink(args.telemetry)) if args.telemetry
        else NULL_TELEMETRY
    )
    RunManifest.create(
        "bench_generate",
        {"quick": args.quick, "scale": SCALE, "budget": BUDGET,
         "repeats": repeats},
        rng_seed=RNG_SEED,
    ).emit(telemetry)

    run = fit_runs()
    available = sum(len(r.result.target_set()) for r in run.runs.values())
    tiers = tuple(n for n in tiers if n <= available) or (available,)

    rows = []
    for n in tiers:
        row = bench_tier(run, n, repeats, telemetry)
        rows.append(row)
        telemetry.event("progress", {"stage": "bench_tier", **row})
        print(
            f"tier={row['tier']:>7}  targets={row['targets']:>7}  "
            f"scalar={row['scalar_median_s']:.3f}s  "
            f"columns={row['columns_median_s']:.3f}s  "
            f"column_speedup={row['column_speedup']}x  "
            f"identical={row['identical']}"
        )
    workers = check_gen_workers(telemetry)
    print(
        f"gen_workers check: prefixes={workers['prefixes']}  "
        f"hits={workers['hits']}  identical={workers['identical']}"
    )
    telemetry.close()

    payload = {
        "benchmark": "generate_column_plane",
        "scale": SCALE,
        "budget": BUDGET,
        "rng_seed": RNG_SEED,
        "repeats": repeats,
        "quick": args.quick,
        "available_targets": available,
        "tiers": rows,
        "gen_workers_check": workers,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if not all(row["identical"] for row in rows) or not workers["identical"]:
        print("DIVERGENCE: column generation output differs from scalar")
        return 1
    if args.min_column_speedup is not None:
        gate_row = rows[-1]
        measured = gate_row["column_speedup"]
        if measured is None or measured < args.min_column_speedup:
            print(
                f"SPEEDUP GATE FAILED: columns over scalar "
                f"{measured}x < {args.min_column_speedup}x "
                f"at {gate_row['targets']} targets"
            )
            return 1
        print(
            f"speedup gate OK: {measured}x >= {args.min_column_speedup}x "
            f"at {gate_row['targets']} targets"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
