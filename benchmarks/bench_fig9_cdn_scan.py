"""Figure 9: active TCP/80 scans of each algorithm's CDN predictions.

Paper shape: 6Gen near-equal or better everywhere; neither algorithm
gets meaningful hits in CDN 1; CDN 4 aliases extensively (dropped from
the filtered comparison); CDN 5 roughly a tie.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_CDN_BUDGETS, BENCH_CDN_SIZE


def test_fig9_cdn_scan(benchmark, save_result, save_plot):
    def run():
        return ex.fig9_cdn_scan(
            budgets=BENCH_CDN_BUDGETS, dataset_size=BENCH_CDN_SIZE
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig9_cdn_scan", ex.format_fig9(curves))

    from repro.analysis.svgplot import Plot

    plot = Plot(
        title="Figure 9: TCP/80 hits in CDN networks (alias-filtered)",
        x_label="budget per CDN (probes)",
        y_label="hits after filtering aliasing",
    )
    for curve in curves:
        if max(curve.filtered_hits) == 0:
            continue  # the paper elides flat-zero curves too
        plot.add(
            f"{curve.algorithm} {curve.cdn}",
            list(zip(curve.budgets, curve.filtered_hits)),
            dashed=(curve.algorithm == "Entropy/IP"),
        )
    save_plot("fig9_cdn_scan", plot)

    final_raw = {(c.cdn, c.algorithm): c.raw_hits[-1] for c in curves}
    final_filtered = {(c.cdn, c.algorithm): c.filtered_hits[-1] for c in curves}

    # CDN1: no significant hits for either algorithm.
    assert final_raw[("CDN1", "6Gen")] < BENCH_CDN_SIZE * 0.05
    assert final_raw[("CDN1", "Entropy/IP")] < BENCH_CDN_SIZE * 0.05
    # CDN4 aliases extensively: raw hits far exceed filtered hits.
    assert final_raw[("CDN4", "6Gen")] > 5 * max(final_filtered[("CDN4", "6Gen")], 1)
    # 6Gen >= ~Entropy/IP on filtered hits in the structured CDNs.
    for cdn in ("CDN3", "CDN5"):
        assert final_filtered[(cdn, "6Gen")] >= final_filtered[(cdn, "Entropy/IP")] * 0.95
    # 6Gen clearly ahead on the correlated CDN 3.
    assert final_filtered[("CDN3", "6Gen")] > final_filtered[("CDN3", "Entropy/IP")]
