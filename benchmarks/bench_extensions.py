"""§8 future-work explorations as benchmark artifacts.

Not paper tables — these answer the open questions §8 poses, with the
same harness discipline as the reproduced figures (see DESIGN.md §5).
"""

from repro.analysis import extensions as ext

from conftest import BENCH_SCALE


def test_cross_protocol(benchmark, save_result):
    def run():
        return ext.cross_protocol_experiment(
            seed_port=80, target_port=443, budget=10_000, scale=BENCH_SCALE
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ext_cross_protocol", ext.format_cross_protocol(result))
    # One service's seeds meaningfully discover another service's hosts
    # (the §6.7.1 finding, generalised across ports).
    assert result.coverage > 0.05


def test_seed_prefilter(benchmark, save_result):
    def run():
        return ext.seed_prefilter_experiment(budget=10_000, scale=BENCH_SCALE)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ext_seed_prefilter", ext.format_prefilter(rows))
    by_variant = {r.variant: r for r in rows}
    # Dealiased seeds keep most of the real discovery while avoiding
    # aliased space.
    full = by_variant["all seeds"]
    filtered = by_variant["active+dealiased"]
    assert filtered.dealiased_hits > 0.5 * full.dealiased_hits
    assert (filtered.raw_hits - filtered.dealiased_hits) < (
        full.raw_hits - full.dealiased_hits
    )


def test_budget_allocation(benchmark, save_result):
    def run():
        return ext.budget_allocation_experiment(
            budget_per_prefix=5_000, scale=BENCH_SCALE
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ext_budget_allocation", ext.format_allocation(rows))
    assert all(r.dealiased_hits > 0 for r in rows)


def test_adaptive_vs_classic(benchmark, save_result):
    def run():
        return ext.adaptive_vs_classic_experiment(budget=8_000, scale=0.15)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ext_adaptive_vs_classic", ext.format_adaptive_comparison(rows))
    by_pipeline = {r.pipeline: r for r in rows}
    assert (
        by_pipeline["adaptive"].efficiency
        >= by_pipeline["classic"].efficiency
    )
