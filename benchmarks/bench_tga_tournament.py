"""All six TGAs head to head (extends the paper's §7 two-way comparison).

Train-and-test on the correlated CDN 3 network: 6Gen, Entropy/IP,
Ullrich recursive, Plonka-Berger MRA dense-prefix, RFC 7707 low-byte,
and uniform-random guessing, all at the same budget.
"""

from repro.analysis.traintest import split_folds
from repro.baselines.lowbyte import run_lowbyte
from repro.baselines.mra import run_mra
from repro.baselines.random_gen import run_random
from repro.baselines.ullrich import run_ullrich
from repro.core.sixgen import run_6gen
from repro.datasets.cdn import build_cdn
from repro.entropyip.generator import run_entropy_ip

from conftest import BENCH_CDN_SIZE

BUDGET = 20_000


def test_tga_tournament(benchmark, save_result):
    cdn = build_cdn(3, dataset_size=BENCH_CDN_SIZE)
    folds = split_folds(cdn.addresses, k=10, rng_seed=0)
    train = folds[0]
    test = {a for fold in folds[1:] for a in fold}

    algorithms = [
        ("6Gen", lambda: run_6gen(train, BUDGET).target_set()),
        ("Entropy/IP", lambda: run_entropy_ip(train, BUDGET)),
        ("Ullrich", lambda: run_ullrich(train, BUDGET)),
        ("MRA", lambda: run_mra(train, BUDGET)),
        ("RFC7707", lambda: run_lowbyte(train, BUDGET)),
        ("random", lambda: run_random(train, BUDGET)),
    ]

    def run():
        return {
            name: len(generate() & test) / len(test)
            for name, generate in algorithms
        }

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"TGA tournament on {cdn.name} (budget {BUDGET})"]
    for name, fraction in sorted(fractions.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<12} {fraction:>7.1%}")
    save_result("tga_tournament", "\n".join(lines))

    # Density-driven approaches dominate the correlated network; the
    # chain model and the single-range recursion trail; random finds
    # essentially nothing.
    assert fractions["6Gen"] > fractions["Entropy/IP"]
    assert fractions["6Gen"] > fractions["Ullrich"]
    assert fractions["6Gen"] > fractions["random"] + 0.5
    assert fractions["random"] < 0.01
