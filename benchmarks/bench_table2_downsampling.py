"""Table 2: 6Gen hits under seed downsampling (1 %, 10 %, 25 %, 100 %).

Paper shape: degradation is markedly sub-linear — a 10 % seed sample
still finds 71 % of the dealiased hits (23.5 % of raw hits); 6Gen is
robust to thin seed data.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_table2_downsampling(benchmark, save_result):
    def run():
        return ex.table2_downsampling(
            levels=(0.01, 0.10, 0.25, 1.0), budget=BENCH_BUDGET, scale=BENCH_SCALE
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table2_downsampling", ex.format_table2(rows))

    by_level = {r.level: r for r in rows}
    # Monotone in sampling level.
    assert (
        by_level[0.01].dealiased_hits
        <= by_level[0.10].dealiased_hits
        <= by_level[0.25].dealiased_hits
        <= by_level[1.0].dealiased_hits
    )
    # Sub-linear degradation: 10 % of seeds keeps far more than 10 % of
    # the dealiased hits (paper: 71 %).
    assert by_level[0.10].dealiased_vs_all > 0.3
    # And 25 % keeps the large majority (paper: 82 %).
    assert by_level[0.25].dealiased_vs_all > 0.5
