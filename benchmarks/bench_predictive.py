"""Predictive-allocation gate: probes-vs-coverage against classic 6Gen.

Runs the classic pipeline (static per-prefix budget split, one
generate→scan pass) and the predictive phased campaign
(:class:`~repro.predictive.allocate.PredictiveAllocator`: uniform
pilot, then re-split the remaining budget across prefixes by modelled
hit rate) over the same simulated Internet at a sweep of equal total
budgets, and emits the probes-vs-coverage curve.

Two gates (exit 1 on failure):

1. **equal-budget coverage** — at the full budget point, predictive
   dealiased coverage must be >= classic coverage;
2. **coverage held at reduced budget** — predictive at the reduced
   budget point (default 75%) must still reach classic's full-budget
   coverage: the re-allocation loop is only worth shipping if it buys
   the same coverage for less probing.

Standalone script, not a pytest benchmark — CI runs it with ``--quick``:

    python benchmarks/bench_predictive.py [--quick] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.extensions import (  # noqa: E402
    format_predictive,
    predictive_allocation_experiment,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller world and budget sweep (the CI gate configuration)",
    )
    parser.add_argument(
        "--phases", type=int, default=3,
        help="plan->scan phases for the predictive campaign (default: 3)",
    )
    parser.add_argument(
        "--reduced-fraction", type=float, default=0.75, metavar="FRAC",
        help="budget fraction at which predictive must still hold "
             "classic's full-budget coverage (default: 0.75)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: benchmarks/results/)",
    )
    args = parser.parse_args()

    scale = 0.05 if args.quick else 0.1
    budget = 600 if args.quick else 400
    fractions = (
        (args.reduced_fraction, 1.0)
        if args.quick
        else (0.25, 0.5, args.reduced_fraction, 1.0)
    )
    print(f"world scale={scale}, budget={budget}/prefix, "
          f"fractions={fractions}, {args.phases} phases")

    started = time.perf_counter()
    rows = predictive_allocation_experiment(
        budget_per_prefix=budget,
        scale=scale,
        phases=args.phases,
        fractions=fractions,
    )
    seconds = time.perf_counter() - started
    print()
    print(format_predictive(rows))
    print(f"\nwall-clock: {seconds:.1f}s")

    def point(policy: str, fraction: float):
        return next(
            r for r in rows
            if r.policy == policy and r.budget_fraction == fraction
        )

    classic_full = point("classic", 1.0)
    predictive_full = point("predictive", 1.0)
    predictive_reduced = point("predictive", args.reduced_fraction)

    failures = []
    if predictive_full.coverage < classic_full.coverage:
        failures.append(
            f"predictive coverage {predictive_full.coverage:.4f} trails "
            f"classic {classic_full.coverage:.4f} at equal budget"
        )
    if predictive_reduced.coverage < classic_full.coverage:
        failures.append(
            f"predictive at {args.reduced_fraction:.0%} budget reaches "
            f"{predictive_reduced.coverage:.4f}, below classic's "
            f"full-budget {classic_full.coverage:.4f}"
        )

    report = {
        "benchmark": "predictive_allocation",
        "quick": args.quick,
        "scale": scale,
        "budget_per_prefix": budget,
        "phases": args.phases,
        "fractions": list(fractions),
        "curve": [
            {
                "policy": r.policy,
                "budget_fraction": r.budget_fraction,
                "total_budget": r.total_budget,
                "probes_sent": r.probes_sent,
                "raw_hits": r.raw_hits,
                "dealiased_hits": r.dealiased_hits,
                "coverage": round(r.coverage, 4),
            }
            for r in rows
        ],
        "equal_budget": {
            "classic_coverage": round(classic_full.coverage, 4),
            "predictive_coverage": round(predictive_full.coverage, 4),
            "classic_probes": classic_full.probes_sent,
            "predictive_probes": predictive_full.probes_sent,
        },
        "reduced_budget": {
            "fraction": args.reduced_fraction,
            "predictive_coverage": round(predictive_reduced.coverage, 4),
            "holds_classic_full_coverage": (
                predictive_reduced.coverage >= classic_full.coverage
            ),
        },
        "seconds": round(seconds, 2),
        "failures": failures,
    }
    out = pathlib.Path(
        args.out
        or REPO_ROOT / "benchmarks" / "results" / "BENCH_predictive.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    print("gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
