"""§7.1 improvement proposal: budget-aware Entropy/IP.

The paper suggests Entropy/IP could be improved for scanning by
"factoring in a budget when identifying probable address patterns".
This bench measures that proposal (density-first region commitment,
`repro.entropyip.budgeted`) against plain Entropy/IP sampling and 6Gen
on the correlated CDN 3 network.
"""

from repro.analysis.traintest import split_folds
from repro.core.sixgen import run_6gen
from repro.datasets.cdn import build_cdn
from repro.entropyip.budgeted import run_budget_aware_entropy_ip
from repro.entropyip.generator import run_entropy_ip

from conftest import BENCH_CDN_SIZE

BUDGETS = (5_000, 20_000)


def test_budget_aware_entropy_ip(benchmark, save_result):
    cdn = build_cdn(3, dataset_size=BENCH_CDN_SIZE)
    folds = split_folds(cdn.addresses, k=10, rng_seed=0)
    train = folds[0]
    test = {a for fold in folds[1:] for a in fold}

    def run():
        rows = []
        for budget in BUDGETS:
            base = len(run_entropy_ip(train, budget) & test) / len(test)
            aware = len(run_budget_aware_entropy_ip(train, budget) & test) / len(test)
            sixgen = len(run_6gen(train, budget).target_set() & test) / len(test)
            rows.append((budget, base, aware, sixgen))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["§7.1 proposal: budget-aware Entropy/IP (CDN 3 train-and-test)"]
    lines.append(f"{'budget':>8} {'E/IP':>7} {'E/IP+budget':>12} {'6Gen':>7}")
    for budget, base, aware, sixgen in rows:
        lines.append(f"{budget:>8} {base:>7.3f} {aware:>12.3f} {sixgen:>7.3f}")
    save_result("budget_aware_eip", "\n".join(lines))

    for _, base, aware, sixgen in rows:
        # the proposal improves Entropy/IP...
        assert aware >= base
        # ...but does not close the gap to 6Gen (the chain still loses
        # the cross-segment correlation).
        assert sixgen > aware
