"""Figure 3: distribution of seeds, aliased hits, and clean hits across ASNs.

Paper shape: seeds spread broadly across ASes; aliased hits concentrate
almost entirely in ~5 ASes; non-aliased hits sit between the two.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_fig3_asn_cdf(benchmark, save_result, save_plot):
    def run():
        return ex.fig3_asn_cdf(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig3_asn_cdf", ex.format_fig3(series))

    from repro.analysis.svgplot import Plot

    plot = Plot(
        title="Figure 3: address distribution across ASNs",
        x_label="ASNs (ordered by addresses per ASN)",
        y_label="CDF of addresses",
        x_log=True,
    )
    for s in series:
        if s.points:
            plot.add(s.label, [(float(rank), frac) for rank, frac in s.points])
    save_plot("fig3_asn_cdf", plot)

    by_label = {s.label: dict(s.points) for s in series}

    def top5(label):
        points = by_label[label]
        return points.get(5, points[max(points)])

    # Aliased hits concentrate far more than seeds do (paper: ~95 % of
    # aliased hits in five ASes vs a broad seed distribution).
    assert top5("Aliased Hits") > 0.9
    assert top5("Aliased Hits") > top5("Seed Addresses")
