"""Figure 4: TCP/80 hits vs per-prefix probe budget.

Paper shape: without dealiasing, hits keep climbing with budget
(aliased regions absorb arbitrary probes); with dealiasing the curve
plateaus as meaningful clustering halts — the basis for the paper's
choice of a 1 M default budget.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_SCALE

BUDGETS = (1_000, 2_500, 5_000, 10_000, 20_000, 40_000)


def test_fig4_budget_sweep(benchmark, save_result, save_plot):
    def run():
        return ex.fig4_budget_sweep(budgets=BUDGETS, scale=BENCH_SCALE)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig4_budget_sweep", ex.format_fig4(rows))

    from repro.analysis.svgplot import Plot

    plot = Plot(
        title="Figure 4: hits vs per-prefix budget",
        x_label="budget per routed prefix (probes)",
        y_label="TCP/80 hits",
        y_log=True,
    )
    plot.add("w/o dealiasing", [(r.budget, r.raw_hits) for r in rows])
    plot.add("w/ dealiasing", [(r.budget, r.dealiased_hits) for r in rows])
    save_plot("fig4_budget_sweep", plot)

    raw = [r.raw_hits for r in rows]
    clean = [r.dealiased_hits for r in rows]
    # Raw hits grow monotonically with budget.
    assert raw == sorted(raw)
    # Dealiased hits plateau: the final doubling of budget gains little.
    assert clean[-1] <= clean[-2] * 1.10
    # And the raw curve keeps growing where the clean one has flattened
    # (aliased regions keep absorbing budget).
    assert raw[-1] > raw[-2] * 1.1
