"""Figure 5: singleton and grown cluster counts per routed prefix.

Paper shape: 6Gen grows at least one cluster for the vast majority of
prefixes (only ~3 % of ≥10-seed prefixes have none), and forms few
clusters relative to seed counts — most seeds join a grown cluster.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_fig5_cluster_census(benchmark, save_result, save_plot):
    def run():
        return ex.fig5_cluster_census(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    buckets = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig5_clusters", ex.format_fig5(buckets))

    from repro.analysis.svgplot import Plot

    for kind in ("singleton", "grown"):
        plot = Plot(
            title=f"Figure 5: CDF of {kind} clusters per routed prefix",
            x_label=f"number of {kind} clusters",
            y_label="CDF of routed prefixes",
        )
        for series in ex.fig5_cluster_cdfs(budget=BENCH_BUDGET, scale=BENCH_SCALE):
            if series.kind == kind:
                plot.add(series.bucket, series.points)
        if plot.series:
            save_plot(f"fig5_{kind}_clusters", plot)

    by_bucket = {b.bucket: b for b in buckets}
    # Prefixes with >= 10 seeds usually grow clusters.  (The paper sees
    # 3 % with none at a 1 M budget; at the scaled-down 20 K budget a
    # few more SLAAC/privacy-addressed prefixes cannot afford any
    # growth, so the bound is looser.)
    for label, bucket in by_bucket.items():
        if label not in ("[2; 10)",):
            assert bucket.no_grown_fraction <= 0.4
    # Cluster counts stay far below seed counts: the median number of
    # grown clusters in the 100-1000 seed bucket is small (paper: <= 10).
    mid = by_bucket.get("[100; 1000)")
    if mid is not None:
        assert mid.grown_quartiles[1] <= 30
