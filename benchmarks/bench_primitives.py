"""Micro-benchmarks for the hot primitives under 6Gen.

Not a paper artifact, but these are the operations Figure 2's scaling
rests on: distance computations, nybble-tree queries, range iteration.
"""

import random

from repro.core.candidates import SeedMatrix
from repro.ipv6.distance import addr_distance
from repro.ipv6.nybble_tree import NybbleTree
from repro.ipv6.range_ import NybbleRange


def _random_addrs(count, seed=0):
    rng = random.Random(seed)
    return [rng.getrandbits(128) for _ in range(count)]


def test_addr_distance(benchmark):
    a, b = _random_addrs(2)
    benchmark(lambda: addr_distance(a, b))


def test_seed_matrix_query_10k(benchmark):
    seeds = _random_addrs(10_000)
    matrix = SeedMatrix(seeds)
    r = NybbleRange.from_address(seeds[0])
    benchmark(lambda: matrix.min_positive_candidates(r))


def test_nybble_tree_insert_1k(benchmark):
    seeds = _random_addrs(1_000)
    benchmark(lambda: NybbleTree(seeds))


def test_nybble_tree_count_in_range(benchmark):
    base = 0x20010DB8 << 96
    seeds = [base | random.Random(1).getrandbits(24) for _ in range(5_000)]
    tree = NybbleTree(seeds)
    r = NybbleRange.parse("2001:db8::??:????")
    benchmark(lambda: tree.count_in_range(r))


def test_range_iteration_64k(benchmark):
    r = NybbleRange.parse("2001:db8::????")
    benchmark(lambda: sum(1 for _ in r.iter_ints()))


def test_range_parse(benchmark):
    benchmark(lambda: NybbleRange.parse("2001:db8::[1-3,8]:?00?"))
