"""Resume-parity gate: kill a scan campaign mid-run, resume, compare.

Runs the same deterministic campaign three ways:

1. **uninterrupted** — the baseline hits and ``ScanStats``;
2. **crashed** — the identical campaign with an injected
   :class:`~repro.faults.WorkerCrash` that raises partway through the
   probe stream while checkpoints land in a crash-safe JSONL file;
3. **resumed** — a fresh campaign restored from that checkpoint file.

The gate fails (exit 1) unless the resumed run's hits and stats are
*bit-identical* to the uninterrupted baseline — the checkpoint/resume
contract documented in ``docs/fault_tolerance.md``.  Crash points are
swept across round-0 batches and a retry round, at one and two workers,
so both the in-process and pool merge paths are covered.

Standalone script, not a pytest benchmark — CI runs it with ``--quick``
and fails the build on any divergence:

    python benchmarks/bench_resume.py [--quick] [--out BENCH_resume.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import experiments as ex  # noqa: E402
from repro.faults import InjectedWorkerCrash, WorkerCrash  # noqa: E402
from repro.scanner.checkpoint import (  # noqa: E402
    ScanCheckpointer,
    load_scan_checkpoint,
)
from repro.scanner.engine import ScanConfig, Scanner  # noqa: E402
from repro.telemetry import JsonlSink  # noqa: E402

SCALE = 0.2
BUDGET = 10_000
RNG_SEED = 5
LOSS_RATE = 0.2
BATCH_SIZE = 256
RETRIES = 2


def build_campaign():
    """Deterministic truth + target pool from the standard 6Gen run."""
    context = ex.standard_context(SCALE)
    from repro.analysis.grouping import run_per_prefix

    run = run_per_prefix(context.groups, BUDGET)
    targets = list(dict.fromkeys(run.iter_targets()))
    return context.internet.truth, targets


def scan_once(truth, targets, workers, *, checkpoint=None, resume=None,
              crash=None):
    scanner = Scanner(
        truth, loss_rate=LOSS_RATE, rng_seed=RNG_SEED,
        config=ScanConfig(
            batch_size=BATCH_SIZE, workers=workers, retries=RETRIES
        ),
    )
    return scanner.scan(
        targets, checkpoint=checkpoint, resume=resume, crash=crash
    )


def run_case(truth, targets, workers, crash, workdir) -> dict:
    """One crash/resume cycle; returns the parity verdict."""
    baseline = scan_once(truth, targets, workers)

    path = workdir / f"ckpt_w{workers}_r{crash.at_round}_b{crash.at_batch}.jsonl"
    sink = JsonlSink(path)
    crashed = False
    try:
        scan_once(
            truth, targets, workers,
            checkpoint=ScanCheckpointer(sink, every_batches=2), crash=crash,
        )
    except InjectedWorkerCrash:
        crashed = True
    finally:
        sink.close()

    state = load_scan_checkpoint(path)
    sink = JsonlSink(path)
    try:
        resumed = scan_once(
            truth, targets, workers,
            checkpoint=ScanCheckpointer(sink, every_batches=2), resume=state,
        )
    finally:
        sink.close()

    return {
        "workers": workers,
        "crash_round": crash.at_round,
        "crash_batch": crash.at_batch,
        "crashed": crashed,
        "resumed_from_round": state.round if state else None,
        "resumed_from_batch": state.next_batch if state else None,
        "hits_match": resumed.hits == baseline.hits,
        "stats_match": resumed.stats == baseline.stats,
        "baseline_hits": len(baseline.hits),
        "resumed_hits": len(resumed.hits),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer crash points (the CI gate configuration)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: benchmarks/results/)",
    )
    args = parser.parse_args()

    truth, targets = build_campaign()
    n_batches = (len(targets) + BATCH_SIZE - 1) // BATCH_SIZE
    print(f"campaign: {len(targets)} targets, {n_batches} round-0 batches")

    if args.quick:
        crashes = [
            WorkerCrash(at_batch=max(1, n_batches // 2)),
            WorkerCrash(at_batch=0, at_round=1),
        ]
        worker_counts = (1, 2)
    else:
        crashes = [
            WorkerCrash(at_batch=1),
            WorkerCrash(at_batch=max(1, n_batches // 2)),
            WorkerCrash(at_batch=max(1, n_batches - 1)),
            WorkerCrash(at_batch=0, at_round=1),
            WorkerCrash(at_batch=0, at_round=RETRIES),
        ]
        worker_counts = (1, 2)

    cases = []
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        for workers in worker_counts:
            for crash in crashes:
                case = run_case(truth, targets, workers, crash, workdir)
                cases.append(case)
                ok = case["crashed"] and case["hits_match"] and case["stats_match"]
                if not ok:
                    failures += 1
                print(
                    f"  workers={workers} crash=({crash.at_round},"
                    f"{crash.at_batch:>3}) resumed_from=({case['resumed_from_round']},"
                    f"{case['resumed_from_batch']}) "
                    f"hits={case['resumed_hits']}/{case['baseline_hits']} "
                    f"{'OK' if ok else 'DIVERGED'}"
                )

    report = {
        "benchmark": "resume_parity",
        "quick": args.quick,
        "scale": SCALE,
        "budget": BUDGET,
        "targets": len(targets),
        "retries": RETRIES,
        "cases": cases,
        "failures": failures,
    }
    out = pathlib.Path(
        args.out
        or REPO_ROOT / "benchmarks" / "results" / "BENCH_resume.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {out}")

    if failures:
        print(f"RESUME PARITY FAILED: {failures} diverging case(s)")
        return 1
    print("resume parity holds on every case")
    return 0


if __name__ == "__main__":
    sys.exit(main())
