"""Dynamic TGAs head to head: 6Gen classic vs §8 adaptive vs 6Tree-style.

The paper's §8 predicts that scanner-integrated generation beats the
static generate-then-scan pipeline; 6Tree later confirmed it at
Internet scale.  This bench runs all three on one partly aliased
network with the same probe budget and compares probe efficiency
(real hosts discovered per probe).
"""

from repro.core.feedback import run_adaptive
from repro.core.sixgen import run_6gen
from repro.scanner.engine import Scanner
from repro.simnet.dns import collect_seeds
from repro.simnet.ground_truth import default_internet
from repro.successors.sixtree import run_sixtree

BUDGET = 8_000
SCALE = 0.15
ASN = 20940  # the Akamai-like network: dense hosts + aliased regions


def test_dynamic_tga_comparison(benchmark, save_result):
    internet = default_internet(scale=SCALE)
    truth = internet.truth
    network = internet.network_for_asn(ASN)[0]
    seeds = [
        s
        for s in collect_seeds(internet).addresses()
        if network.spec.routed_prefix.contains(s)
    ]

    def run():
        rows = []
        scanner = Scanner(truth)
        classic = run_6gen(seeds, BUDGET)
        scan = scanner.scan(classic.new_targets(seeds))
        real = {h for h in scan.hits if not truth.is_aliased(h)}
        rows.append(("6Gen classic", scan.stats.probes_sent, len(real)))

        scanner = Scanner(truth)
        adaptive = run_adaptive(seeds, scanner, BUDGET, rounds=2)
        real = {h for h in adaptive.hits if not truth.is_aliased(h)}
        rows.append(("§8 adaptive", adaptive.probes_used, len(real)))

        scanner = Scanner(truth)
        sixtree = run_sixtree(seeds, scanner, BUDGET)
        real = {h for h in sixtree.hits if not truth.is_aliased(h)}
        rows.append(("6Tree-style", sixtree.probes_used, len(real)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"dynamic TGA comparison (budget {BUDGET}, Akamai-like network)"]
    lines.append(f"{'algorithm':<14} {'probes':>8} {'real hits':>10} {'per probe':>10}")
    for name, probes, real_hits in rows:
        eff = real_hits / probes if probes else 0.0
        lines.append(f"{name:<14} {probes:>8} {real_hits:>10} {eff:>10.4f}")
    save_result("successors", "\n".join(lines))

    by_name = {name: (probes, hits) for name, probes, hits in rows}
    classic_probes, classic_hits = by_name["6Gen classic"]
    classic_eff = classic_hits / classic_probes if classic_probes else 0

    # The §8 adaptive loop (6Gen regeneration + feedback) matches the
    # classic pipeline's discovery at far better probe efficiency.
    probes, hits = by_name["§8 adaptive"]
    assert hits >= classic_hits * 0.8
    assert hits / max(probes, 1) > classic_eff * 2

    # The 6Tree-style scanner conserves budget (alias halting, early
    # stops) and finds a meaningful share of the hosts — but its
    # hit-rate-gated expansion cannot reach seedless subnets that
    # 6Gen's cross-seed spans cover, so it trails on absolute hits.
    # (The honest structural tradeoff; real 6Tree pairs the tree with
    # richer target generation for the same reason.)
    probes, hits = by_name["6Tree-style"]
    assert probes < classic_probes
    assert hits >= classic_hits * 0.3
