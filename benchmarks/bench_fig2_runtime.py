"""Figure 2: 6Gen runtime vs number of seeds per routed prefix.

The paper's C++ prototype runs the full 2.96 M-seed dataset in 9 hours;
we measure the same runtime-vs-seed-count curve for the pure-Python
implementation, which preserves the shape (superlinear growth, heavy
dependence on seed structure).
"""

from repro.analysis import experiments as ex

from conftest import BENCH_SCALE


def test_fig2_runtime_curve(benchmark, save_result):
    def run():
        return ex.fig2_runtime(
            seed_counts=(30, 100, 300, 1000, 2000),
            budget=10_000,
            repeats=3,
            scale=BENCH_SCALE,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig2_runtime", ex.format_fig2(rows))
    # Shape: runtime grows with seed count at the extremes.
    assert rows[-1].median_seconds > rows[0].median_seconds


def test_fig2_single_prefix_1000_seeds(benchmark):
    """Headline scaling point: one 6Gen run on a 1 000-seed prefix."""
    from repro.core.sixgen import run_6gen

    context = ex.standard_context(BENCH_SCALE)
    pool = sorted(context.seed_addresses)[:1000]

    benchmark(lambda: run_6gen(pool, 10_000))
