"""Figure 6: portion of routed prefixes with each nybble dynamic.

Paper shape: bimodal — one mode over the subnet-identifier nybbles
(9th–16th, 1-based) from RFC 2460 /64 layouts, and a stronger mode at
the lowest nybbles (after the 29th) from RFC 7707 low-bit practices.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_fig6_dynamic_nybbles(benchmark, save_result, save_plot):
    def run():
        return ex.fig6_dynamic_nybbles(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    portions = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig6_nybbles", ex.format_fig6(portions))

    from repro.analysis.svgplot import Plot

    plot = Plot(
        title="Figure 6: portion of prefixes with each nybble dynamic",
        x_label="nybble index (1-based)",
        y_label="portion of routed prefixes",
    )
    plot.add("dynamic nybbles", [(i + 1, p) for i, p in enumerate(portions)])
    save_plot("fig6_nybbles", plot)

    # 0-indexed: subnet nybbles 8..15, low nybbles 28..31.
    subnet_mode = max(portions[8:16])
    low_mode = max(portions[28:])
    network_head = max(portions[:8])
    middle_valley = min(portions[20:28])

    # Low-nybble mode dominates (the paper's strongest feature).
    assert low_mode > 0.5
    # Both modes rise above the head of the address and the valley
    # between them — the bimodal shape.
    assert subnet_mode > network_head
    assert low_mode > middle_valley
    assert subnet_mode > middle_valley
