"""Entropy/IP Bayesian-network structure ablation: chain vs Chow-Liu tree.

The original Entropy/IP tool learns its network structure; the fixed
chain is the simplification documented in DESIGN.md.  This ablation
measures what structure learning buys on the correlated CDN 3 network
— and shows the honest answer: on CDN 3 the binding constraint is the
*value mining* granularity (all correlated bases merge into one range
atom), so the tree barely moves the needle there, while on networks
whose correlated values are separable, the tree recovers dependencies
the chain provably cannot (see ``tests/test_bayes.py``).
"""

from repro.analysis.traintest import split_folds
from repro.datasets.cdn import build_cdn
from repro.entropyip.generator import EntropyIPConfig, fit_entropy_ip

from conftest import BENCH_CDN_SIZE

BUDGET = 20_000


def test_bayes_structure_ablation(benchmark, save_result):
    cdn = build_cdn(3, dataset_size=BENCH_CDN_SIZE)
    folds = split_folds(cdn.addresses, k=10, rng_seed=0)
    train = folds[0]
    test = {a for fold in folds[1:] for a in fold}

    def run():
        out = {}
        for structure in ("chain", "tree"):
            model = fit_entropy_ip(
                train, EntropyIPConfig(bayes_structure=structure)
            )
            targets = model.generate(BUDGET)
            out[structure] = len(targets & test) / len(test)
        return out

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "bayes_structure",
        "Entropy/IP structure ablation on CDN 3 (fraction of test found)\n"
        f"  chain: {fractions['chain']:.3f}\n"
        f"  tree (Chow-Liu): {fractions['tree']:.3f}",
    )
    # Structure learning never hurts, and stays within the same regime
    # (the mining granularity, not the structure, binds on CDN 3).
    assert fractions["tree"] >= fractions["chain"] * 0.9
