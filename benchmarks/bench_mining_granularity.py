"""Entropy/IP upgrade path on the correlated network (CDN 3).

Answers the paper's §8 question — "Are there certain types of address
assignment patterns that an algorithm is not amenable to discovering?"
— constructively.  CDN 3's cross-segment correlation defeats stock
Entropy/IP twice over: the gap-based value mining merges all correlated
sub-blocks into one range atom, and the chain network cannot carry a
dependency across constant segments.  Fixing either alone barely helps;
fixing *both* (nybble-split mining + Chow-Liu structure learning)
recovers most of the held-out addresses — yet still trails 6Gen, whose
region density needs no model at all.
"""

from repro.analysis.traintest import split_folds
from repro.core.sixgen import run_6gen
from repro.datasets.cdn import build_cdn
from repro.entropyip.generator import EntropyIPConfig, fit_entropy_ip

from conftest import BENCH_CDN_SIZE

BUDGET = 20_000

VARIANTS = (
    ("gap+chain (stock)", EntropyIPConfig()),
    ("nybble+chain", EntropyIPConfig(mining_split_mode="nybble")),
    ("gap+tree", EntropyIPConfig(bayes_structure="tree")),
    (
        "nybble+tree",
        EntropyIPConfig(mining_split_mode="nybble", bayes_structure="tree"),
    ),
)


def test_mining_granularity_ablation(benchmark, save_result):
    cdn = build_cdn(3, dataset_size=BENCH_CDN_SIZE)
    folds = split_folds(cdn.addresses, k=10, rng_seed=0)
    train = folds[0]
    test = {a for fold in folds[1:] for a in fold}

    def run():
        out = {}
        for name, config in VARIANTS:
            model = fit_entropy_ip(train, config)
            out[name] = len(model.generate(BUDGET) & test) / len(test)
        out["6Gen"] = len(run_6gen(train, BUDGET).target_set() & test) / len(test)
        return out

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Entropy/IP upgrade path on CDN 3 (fraction of test found)"]
    for name, value in fractions.items():
        lines.append(f"  {name:<20} {value:.3f}")
    save_result("mining_granularity", "\n".join(lines))

    stock = fractions["gap+chain (stock)"]
    upgraded = fractions["nybble+tree"]
    # Each fix alone is not enough...
    assert fractions["nybble+chain"] < 2.5 * max(stock, 0.01)
    assert fractions["gap+tree"] < 2.5 * max(stock, 0.01)
    # ...both together recover most of the network...
    assert upgraded > 3 * stock
    assert upgraded > 0.5
    # ...and 6Gen still leads without learning anything.
    assert fractions["6Gen"] > upgraded
