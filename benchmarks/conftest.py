"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4) against the simulated Internet and writes the formatted
rows/series to ``benchmarks/results/<name>.txt`` so the reproduced
artifact can be inspected after the run.

Scale notes: the simulation is ~100× smaller than the paper's Internet
measurement, and probe budgets are scaled accordingly (20 K per routed
prefix instead of 1 M; CDN budget sweeps to 100 K instead of 1 M).
EXPERIMENTS.md records paper-vs-measured for each artifact.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Simulation scale shared by all benchmarks (overridable via env).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))

#: Per-prefix probe budget for full-scan benchmarks.
BENCH_BUDGET = int(os.environ.get("REPRO_BENCH_BUDGET", "20000"))

#: CDN dataset size for the §7 comparisons.
BENCH_CDN_SIZE = int(os.environ.get("REPRO_BENCH_CDN_SIZE", "3000"))

#: CDN budget sweep (scaled from the paper's 0–1 M axis).
BENCH_CDN_BUDGETS = (2_000, 5_000, 10_000, 25_000, 50_000)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist one experiment's formatted output to the results dir."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save


@pytest.fixture(scope="session")
def save_plot(results_dir):
    """Persist one experiment's figure as an SVG in the results dir."""
    from repro.analysis.svgplot import save_svg

    def _save(name: str, plot) -> None:
        save_svg(plot, results_dir / f"{name}.svg")

    return _save
