"""Churn-freshness gate: delta campaigns vs full rescans over a drifting world.

Evolves two identical copies of the simulated Internet through the same
deterministic churn (same worldfile, same churn seed) and tracks the
moving host population two ways:

1. **full rescan** — re-collect seeds, regenerate, and re-probe the
   whole campaign every epoch (the naive longitudinal baseline);
2. **delta** — a :class:`~repro.hitlist.LivingHitlist` of decaying
   belief driving :class:`~repro.hitlist.DeltaCampaign`: re-probe only
   what decayed, explore with a budgeted slice seeded from the hitlist.

Both start from the same epoch-0 bootstrap campaign.  After every epoch
each side's belief is scored against ground truth:

* ``freshness`` — fraction of truly live addresses believed live
  (recall of the current population);
* ``staleness`` — fraction of believed-live addresses actually gone.

The gate fails (exit 1) unless, averaged over the post-bootstrap
epochs, the delta tracker's freshness stays within ``--tolerance`` of
the full-rescan baseline **and** its cumulative probe count stays at or
below ``--max-probe-ratio`` (default 50%) of the baseline's.

Standalone script, not a pytest benchmark — CI runs it with ``--quick``:

    python benchmarks/bench_churn.py [--quick] [--out BENCH_churn.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import Campaign, CampaignSpec  # noqa: E402
from repro.hitlist import DeltaCampaign, LivingHitlist  # noqa: E402
from repro.ipv6.addrplane import pack  # noqa: E402
from repro.scanner.engine import ScanConfig  # noqa: E402
from repro.simnet.bgp import group_by_routed_prefix  # noqa: E402
from repro.simnet.dns import collect_seeds  # noqa: E402
from repro.simnet.dynamics import DynamicWorld  # noqa: E402
from repro.simnet.ground_truth import default_internet  # noqa: E402

WORLD_SEED = 7
CHURN_SEED = 3
BATCH_SIZE = 256


def live_columns(internet):
    return pack(sorted(internet.all_active_hosts()))


def bootstrap(internet, spec):
    """Epoch-0 seeding: one full campaign, observed into a fresh store."""
    seeds = collect_seeds(internet)
    groups = group_by_routed_prefix(seeds.addresses(), internet.bgp)
    result = Campaign(internet.truth, internet.bgp, groups, spec).run()
    store = LivingHitlist()
    probed = pack(sorted(result.run.all_targets()))
    store.observe(0, probed, result.clean_hits)
    return store, len(probed[0])


def run_full_rescan(scale, spec, epochs):
    """The baseline: regenerate + re-probe everything, every epoch."""
    internet = default_internet(scale=scale, rng_seed=WORLD_SEED)
    dynamic = DynamicWorld(internet, churn_seed=CHURN_SEED)
    store, _ = bootstrap(internet, spec)
    probes = 0
    rows = []
    started = time.perf_counter()
    for epoch in range(1, epochs + 1):
        dynamic.advance_to(epoch)
        seeds = collect_seeds(internet)
        groups = group_by_routed_prefix(seeds.addresses(), internet.bgp)
        result = Campaign(internet.truth, internet.bgp, groups, spec).run()
        probed = pack(sorted(result.run.all_targets()))
        probes += len(probed[0])
        store.observe(epoch, probed, result.clean_hits)
        quality = store.freshness(epoch, live_columns(internet))
        rows.append({
            "epoch": epoch,
            "probes": len(probed[0]),
            "freshness": round(quality["freshness"], 4),
            "staleness": round(quality["staleness"], 4),
        })
    return rows, probes, time.perf_counter() - started


def run_delta(scale, spec, epochs):
    """The contender: decay-driven re-probe + seeded exploration.

    Exploration seeds are the store's believed-live addresses plus the
    epoch's fresh DNS snapshot — the same seed feed the full rescan
    regenerates from.  Seed intake costs no probes; only the planned
    targets do, and that is what the probe-ratio gate counts.
    """
    internet = default_internet(scale=scale, rng_seed=WORLD_SEED)
    dynamic = DynamicWorld(internet, churn_seed=CHURN_SEED)
    store, _ = bootstrap(internet, spec)
    delta = DeltaCampaign(store, internet.bgp, spec)
    probes = 0
    rows = []
    started = time.perf_counter()
    for epoch in range(1, epochs + 1):
        dynamic.advance_to(epoch)
        feed = collect_seeds(internet).addresses()
        plan, _result = delta.run(internet.truth, epoch, extra_seeds=feed)
        probes += plan.total
        quality = store.freshness(epoch, live_columns(internet))
        rows.append({
            "epoch": epoch,
            "probes": plan.total,
            "reprobe": plan.reprobe_count,
            "explore": plan.explore_count,
            "freshness": round(quality["freshness"], 4),
            "staleness": round(quality["staleness"], 4),
        })
    return rows, probes, time.perf_counter() - started


def mean(values):
    return sum(values) / len(values) if values else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller world and fewer epochs (the CI gate configuration)",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, metavar="E",
        help="churn epochs after the bootstrap (default: 6 quick, 10 full)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10, metavar="FRAC",
        help="max mean-freshness deficit vs the full rescan (default 0.10)",
    )
    parser.add_argument(
        "--max-probe-ratio", type=float, default=0.50, metavar="FRAC",
        help="max delta/full cumulative probe ratio (default 0.50)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: benchmarks/results/)",
    )
    args = parser.parse_args()

    scale = 0.05 if args.quick else 0.1
    budget = 600 if args.quick else 1_200
    epochs = args.epochs or (6 if args.quick else 10)
    spec = CampaignSpec(
        budget=budget,
        scan_config=ScanConfig(use_batched=True, batch_size=BATCH_SIZE),
    )
    print(f"world scale={scale}, budget={budget}/prefix, "
          f"{epochs} churn epochs (seed {CHURN_SEED})")

    full_rows, full_probes, full_seconds = run_full_rescan(
        scale, spec, epochs
    )
    delta_rows, delta_probes, delta_seconds = run_delta(scale, spec, epochs)

    print(f"\n{'epoch':>5} {'full prb':>9} {'full frs':>9} "
          f"{'delta prb':>10} {'delta frs':>10} {'delta stl':>10}")
    for full, delta in zip(full_rows, delta_rows):
        print(f"{full['epoch']:>5} {full['probes']:>9} "
              f"{full['freshness']:>9.3f} {delta['probes']:>10} "
              f"{delta['freshness']:>10.3f} {delta['staleness']:>10.3f}")

    full_freshness = mean([r["freshness"] for r in full_rows])
    delta_freshness = mean([r["freshness"] for r in delta_rows])
    probe_ratio = delta_probes / full_probes if full_probes else 0.0
    deficit = full_freshness - delta_freshness
    print(f"\nmean freshness: full {full_freshness:.3f}, "
          f"delta {delta_freshness:.3f} (deficit {deficit:+.3f}, "
          f"tolerance {args.tolerance})")
    print(f"cumulative probes: full {full_probes}, delta {delta_probes} "
          f"({probe_ratio:.0%}; gate {args.max_probe_ratio:.0%})")
    print(f"wall-clock: full {full_seconds:.1f}s, delta {delta_seconds:.1f}s")

    failures = []
    if deficit > args.tolerance:
        failures.append(
            f"delta freshness {delta_freshness:.3f} trails the full "
            f"rescan {full_freshness:.3f} by more than {args.tolerance}"
        )
    if probe_ratio > args.max_probe_ratio:
        failures.append(
            f"delta probe ratio {probe_ratio:.2f} exceeds "
            f"{args.max_probe_ratio:.2f}"
        )

    report = {
        "benchmark": "churn_freshness",
        "quick": args.quick,
        "scale": scale,
        "budget": budget,
        "epochs": epochs,
        "churn_seed": CHURN_SEED,
        "world_seed": WORLD_SEED,
        "full": {
            "rows": full_rows,
            "probes": full_probes,
            "mean_freshness": round(full_freshness, 4),
            "seconds": round(full_seconds, 2),
        },
        "delta": {
            "rows": delta_rows,
            "probes": delta_probes,
            "mean_freshness": round(delta_freshness, 4),
            "seconds": round(delta_seconds, 2),
        },
        "probe_ratio": round(probe_ratio, 4),
        "freshness_deficit": round(deficit, 4),
        "tolerance_gate": args.tolerance,
        "max_probe_ratio_gate": args.max_probe_ratio,
        "failures": failures,
    }
    out = pathlib.Path(
        args.out or REPO_ROOT / "benchmarks" / "results" / "BENCH_churn.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {out}")

    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    print("gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
