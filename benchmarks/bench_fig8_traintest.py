"""Figure 8: train-and-test — 6Gen vs Entropy/IP on the five CDN datasets.

Paper shape: both algorithms near zero on CDN 1 (and weak on CDN 2);
6Gen 1–8× ahead in the middle ground (our CDN 3); both above 88 % on
CDN 4/5 with 6Gen >99 % on CDN 4.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_CDN_BUDGETS, BENCH_CDN_SIZE


def test_fig8_traintest(benchmark, save_result, save_plot):
    def run():
        return ex.fig8_traintest(
            budgets=BENCH_CDN_BUDGETS, dataset_size=BENCH_CDN_SIZE, folds_to_run=1
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig8_traintest", ex.format_fig8(curves))

    from repro.analysis.svgplot import Plot

    plot = Plot(
        title="Figure 8: train-and-test, fraction of test addresses found",
        x_label="budget per CDN (probes)",
        y_label="fraction of test addresses",
    )
    for curve in curves:
        plot.add(
            f"{curve.algorithm} {curve.cdn}",
            [(p.budget, p.fraction) for p in curve.points],
            dashed=(curve.algorithm == "Entropy/IP"),
        )
    save_plot("fig8_traintest", plot)

    final = {
        (c.cdn, c.algorithm): c.points[-1].fraction for c in curves
    }

    # CDN1: both algorithms fail (paper: Entropy/IP found zero).
    assert final[("CDN1", "6Gen")] < 0.02
    assert final[("CDN1", "Entropy/IP")] < 0.02
    # CDN2: both recover only a small fraction.
    assert final[("CDN2", "6Gen")] < 0.3
    # CDN3: 6Gen clearly ahead (the paper's 1-8x band).
    g6, eip = final[("CDN3", "6Gen")], final[("CDN3", "Entropy/IP")]
    assert g6 > eip
    assert g6 / max(eip, 1e-9) > 1.04
    # CDN4: 6Gen above 99 % (the paper's standout number).
    assert final[("CDN4", "6Gen")] > 0.99
    # CDN4/5: both algorithms above 88 %.
    for cdn in ("CDN4", "CDN5"):
        assert final[(cdn, "6Gen")] > 0.88
        assert final[(cdn, "Entropy/IP")] > 0.88
