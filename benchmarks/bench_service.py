"""Multi-tenant service gate: N interleaved campaigns vs a serial loop.

Runs the same N deterministic campaigns two ways:

1. **serial** — a plain loop of :class:`~repro.campaign.Campaign` runs,
   one after the other (the pre-service workflow);
2. **interleaved** — the same campaigns submitted to one
   :class:`~repro.service.CampaignService` and driven round-robin over
   the shared simnet.

The gate fails (exit 1) unless every interleaved campaign finishes
bit-identical to its serial twin (hits *and* stats) and the scheduler
overhead — extra wall-clock relative to the serial loop — stays within
``--max-overhead`` (default 10%).  Fairness is reported as the largest
observed spread, in probe batches, between the most- and least-advanced
running campaigns mid-flight; with equal quanta it must stay bounded by
the quantum.

Standalone script, not a pytest benchmark — CI runs it with ``--quick``
and fails the build on divergence or runaway overhead:

    python benchmarks/bench_service.py [--quick] [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import experiments as ex  # noqa: E402
from repro.campaign import Campaign, CampaignSpec  # noqa: E402
from repro.scanner.engine import ScanConfig  # noqa: E402
from repro.service import CampaignService, TenantPolicy  # noqa: E402

RNG_SEED = 5
BATCH_SIZE = 256
RETRIES = 1
QUANTUM = 4


def build_specs(budget: int, tenants: int) -> dict[str, CampaignSpec]:
    """One spec per tenant; budgets staggered so jobs finish at
    different times and the rotation actually shrinks mid-run."""
    return {
        f"tenant-{i + 1}": CampaignSpec(
            budget=budget + 200 * i,
            scan_config=ScanConfig(batch_size=BATCH_SIZE, retries=RETRIES),
        )
        for i in range(tenants)
    }


def run_serial(context, specs):
    started = time.perf_counter()
    results = {
        name: Campaign(
            context.internet.truth, context.internet.bgp,
            context.groups, spec,
        ).run()
        for name, spec in specs.items()
    }
    return results, time.perf_counter() - started


def run_interleaved(context, specs):
    service = CampaignService(context.internet.truth, context.internet.bgp)
    jobs = {}
    for name, spec in specs.items():
        service.register_tenant(name, TenantPolicy(quantum=QUANTUM))
        jobs[name] = service.submit(name, context.groups, spec)

    turns = 0
    max_spread = 0
    started = time.perf_counter()
    while service.step():
        turns += 1
        done = [
            job.campaign.execution.batches_done
            for job in service.jobs.values()
            if job.state == "running" and job.campaign.execution is not None
        ]
        if len(done) > 1:
            max_spread = max(max_spread, max(done) - min(done))
    elapsed = time.perf_counter() - started
    results = {name: service.result(job) for name, job in jobs.items()}
    return results, elapsed, turns, max_spread


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller world and fewer tenants (the CI gate configuration)",
    )
    parser.add_argument(
        "--tenants", type=int, default=None, metavar="N",
        help="number of tenants (default: 3 quick, 5 full)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.10, metavar="FRAC",
        help="maximum scheduler overhead vs the serial loop (default 0.10)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, metavar="K",
        help="timing repeats; best-of-K is reported (default 2)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: benchmarks/results/)",
    )
    args = parser.parse_args()

    scale = 0.1 if args.quick else 0.2
    budget = 1_500 if args.quick else 4_000
    tenants = args.tenants or (3 if args.quick else 5)

    context = ex.standard_context(scale)
    specs = build_specs(budget, tenants)
    print(f"world scale={scale}, {tenants} tenants, "
          f"budgets {[s.budget for s in specs.values()]}")

    serial_seconds = float("inf")
    for _ in range(max(1, args.repeats)):
        serial, elapsed = run_serial(context, specs)
        serial_seconds = min(serial_seconds, elapsed)

    service_seconds = float("inf")
    for _ in range(max(1, args.repeats)):
        interleaved, elapsed, turns, max_spread = run_interleaved(
            context, specs
        )
        service_seconds = min(service_seconds, elapsed)

    mismatches = []
    for name in specs:
        a, b = serial[name], interleaved[name]
        if a.raw_hits != b.raw_hits or a.scan.stats != b.scan.stats:
            mismatches.append(name)
        status = "OK" if name not in mismatches else "DIVERGED"
        print(f"  {name:<10} hits={len(b.raw_hits):>6} "
              f"probes={b.probes_sent:>7}  {status}")

    total_probes = sum(r.probes_sent for r in interleaved.values())
    overhead = (service_seconds - serial_seconds) / serial_seconds
    serial_pps = total_probes / serial_seconds
    service_pps = total_probes / service_seconds
    print(f"serial      {serial_seconds:8.3f}s  {serial_pps:12,.0f} probes/s")
    print(f"interleaved {service_seconds:8.3f}s  {service_pps:12,.0f} probes/s"
          f"  ({turns} turns)")
    print(f"scheduler overhead {overhead * 100:+.1f}% "
          f"(gate {args.max_overhead * 100:.0f}%), "
          f"fairness spread {max_spread} batches (quantum {QUANTUM})")

    failures = []
    if mismatches:
        failures.append(f"parity broken for {mismatches}")
    if overhead > args.max_overhead:
        failures.append(
            f"overhead {overhead * 100:.1f}% exceeds "
            f"{args.max_overhead * 100:.0f}%"
        )
    if max_spread > QUANTUM:
        failures.append(
            f"fairness spread {max_spread} exceeds quantum {QUANTUM}"
        )

    report = {
        "benchmark": "service_scheduler",
        "quick": args.quick,
        "scale": scale,
        "tenants": tenants,
        "budgets": [s.budget for s in specs.values()],
        "quantum": QUANTUM,
        "total_probes": total_probes,
        "serial_seconds": round(serial_seconds, 4),
        "service_seconds": round(service_seconds, 4),
        "serial_probes_per_sec": round(serial_pps, 1),
        "service_probes_per_sec": round(service_pps, 1),
        "scheduler_overhead": round(overhead, 4),
        "max_overhead_gate": args.max_overhead,
        "scheduler_turns": turns,
        "fairness_spread_batches": max_spread,
        "parity_mismatches": mismatches,
        "failures": failures,
    }
    out = pathlib.Path(
        args.out
        or REPO_ROOT / "benchmarks" / "results" / "BENCH_service.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {out}")

    if failures:
        print("SERVICE GATE FAILED: " + "; ".join(failures))
        return 1
    print("interleaved campaigns bit-identical to serial, overhead in bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
