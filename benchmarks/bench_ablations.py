"""Ablations of 6Gen's design choices (DESIGN.md §5).

Each ablation measures one of the paper's §5.5 optimizations or §5.2–§5.4
design decisions by disabling/States swapping it and comparing runtime
and/or outcome on the same seed sets.
"""

from repro.analysis import experiments as ex
from repro.core.sixgen import run_6gen
from repro.telemetry.timer import time_call

from conftest import BENCH_SCALE


def _seed_pool(count):
    context = ex.standard_context(BENCH_SCALE)
    return sorted(context.seed_addresses)[:count]


class TestGrowthCachingAblation:
    """§5.5: caching best growths between iterations (the O(N) saving)."""

    def test_cached_runtime(self, benchmark):
        seeds = _seed_pool(250)
        benchmark(lambda: run_6gen(seeds, 3_000, use_growth_cache=True))

    def test_naive_runtime(self, benchmark):
        seeds = _seed_pool(250)
        benchmark.pedantic(
            lambda: run_6gen(seeds, 3_000, use_growth_cache=False),
            rounds=1,
            iterations=1,
        )

    def test_caching_preserves_results(self, save_result):
        seeds = _seed_pool(250)
        cached, t_cached = time_call(
            lambda: run_6gen(seeds, 3_000, use_growth_cache=True)
        )
        naive, t_naive = time_call(
            lambda: run_6gen(seeds, 3_000, use_growth_cache=False)
        )
        assert {c.range for c in cached.clusters} == {c.range for c in naive.clusters}
        save_result(
            "ablation_caching",
            "§5.5 growth-cache ablation (identical output)\n"
            f"cached: {t_cached:.3f}s   naive: {t_naive:.3f}s   "
            f"speedup: {t_naive / max(t_cached, 1e-9):.1f}x",
        )
        assert t_naive >= t_cached * 0.8  # caching never meaningfully slower


class TestSeedMatrixAblation:
    """§5.5 analogue: vectorised candidate search vs pure Python."""

    def test_numpy_runtime(self, benchmark):
        seeds = _seed_pool(200)
        benchmark(lambda: run_6gen(seeds, 2_000, use_seed_matrix=True))

    def test_python_runtime(self, benchmark):
        seeds = _seed_pool(200)
        benchmark.pedantic(
            lambda: run_6gen(seeds, 2_000, use_seed_matrix=False),
            rounds=1,
            iterations=1,
        )

    def test_identical_output(self):
        seeds = _seed_pool(120)
        fast = run_6gen(seeds, 1_000, use_seed_matrix=True)
        slow = run_6gen(seeds, 1_000, use_seed_matrix=False)
        assert {c.range for c in fast.clusters} == {c.range for c in slow.clusters}


class TestBudgetLedgerAblation:
    """§5.4: exact unique-address accounting vs raw range-size sums."""

    def test_exact_ledger_runtime(self, benchmark):
        seeds = _seed_pool(250)
        benchmark(lambda: run_6gen(seeds, 3_000, ledger="exact"))

    def test_range_sum_ledger_runtime(self, benchmark):
        seeds = _seed_pool(250)
        benchmark(lambda: run_6gen(seeds, 3_000, ledger="range-sum"))

    def test_exact_never_generates_more_than_budget(self, save_result):
        seeds = _seed_pool(250)
        exact = run_6gen(seeds, 3_000, ledger="exact")
        rangesum = run_6gen(seeds, 3_000, ledger="range-sum")
        exact_new = len(exact.new_targets(seeds))
        rangesum_new = len(rangesum.new_targets(seeds))
        assert exact_new <= 3_000
        save_result(
            "ablation_ledger",
            "§5.4 budget-ledger ablation\n"
            f"exact ledger: {exact_new} new targets (budget 3000)\n"
            f"range-sum ledger: {rangesum_new} new targets (budget 3000)",
        )


class TestTiebreakAblation:
    """§5.4: density → smaller-range → random tiebreaking determinism."""

    def test_rng_seed_varies_only_true_ties(self, save_result):
        seeds = _seed_pool(150)
        runs = [run_6gen(seeds, 2_000, rng_seed=s) for s in range(3)]
        target_counts = [r.target_count() for r in runs]
        # Different tiebreak draws may pick different equal-density
        # growths, but the amount of budget spent must be identical.
        assert len({r.budget_used for r in runs}) == 1
        save_result(
            "ablation_tiebreak",
            "§5.4 tiebreak ablation: target counts across rng seeds "
            f"{target_counts} (budget_used identical: {runs[0].budget_used})",
        )
