"""Figure 7: dealiased hits per routed prefix, bucketed by seed count.

Paper shape: a positive correlation between seeds and hits per prefix;
most prefixes with more than 10 seeds yield hits.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_fig7_hits_by_seeds(benchmark, save_result):
    def run():
        return ex.fig7_hits_by_seeds(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig7_hits_dist", ex.format_fig7(rows))

    by_bucket = {r.bucket: r for r in rows}
    medians = [r.hit_quartiles[1] for r in rows]
    # Positive correlation: the largest-seed bucket's median hits exceed
    # the smallest bucket's.
    assert medians[-1] > medians[0]
    # Most >=10-seed prefixes have hits (paper: majority).
    for label, row in by_bucket.items():
        if label != "[2; 10)":
            assert row.zero_hit_fraction < 0.5
