"""Kernel benchmark: vectorised 6Gen hot path vs the reference path.

Runs a Figure-2-style seed-count sweep, timing each tier on both the
vectorised kernel (``use_vector_kernel=True``) and the reference
implementation, verifying on every run that the two produce identical
target sets, and writes the medians and speedups to
``benchmarks/results/BENCH_sixgen.json`` (see DESIGN.md "Performance"
for how to read it).

Standalone script, not a pytest benchmark — CI runs it with ``--quick``
and fails the build if the paths ever diverge:

    python benchmarks/bench_kernel.py [--quick] [--out BENCH_sixgen.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import experiments as ex  # noqa: E402
from repro.core.sixgen import run_6gen  # noqa: E402
from repro.telemetry.timer import time_call  # noqa: E402

FULL_TIERS = (30, 100, 300, 1000, 2000)
QUICK_TIERS = (30, 100, 300)
BUDGET = 10_000
SCALE = 0.3


def bench_tier(pool: list[int], n: int, repeats: int) -> dict:
    """Median runtime of both paths on one deterministic n-seed subset."""
    subset = random.Random(1000 * n).sample(pool, n)
    timings: dict[bool, list[float]] = {True: [], False: []}
    identical = True
    for _ in range(repeats):
        results = {}
        for vector in (True, False):
            results[vector], elapsed = time_call(
                lambda v=vector: run_6gen(subset, BUDGET, use_vector_kernel=v)
            )
            timings[vector].append(elapsed)
        if results[True].target_set() != results[False].target_set():
            identical = False
    baseline = statistics.median(timings[False])
    vectorised = statistics.median(timings[True])
    return {
        "seeds": n,
        "baseline_median_s": round(baseline, 4),
        "vector_median_s": round(vectorised, 4),
        "speedup": round(baseline / vectorised, 2) if vectorised else None,
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small tiers / fewer repeats (CI divergence gate)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "benchmarks" / "results" / "BENCH_sixgen.json",
        help="output JSON path (default: benchmarks/results/BENCH_sixgen.json)",
    )
    args = parser.parse_args(argv)
    if not args.out.parent.is_dir():
        parser.error(f"output directory does not exist: {args.out.parent}")

    tiers = QUICK_TIERS if args.quick else FULL_TIERS
    repeats = 2 if args.quick else 3
    pool = sorted(int(a) for a in ex.standard_context(SCALE).seed_addresses)

    rows = []
    for n in tiers:
        row = bench_tier(pool, n, repeats)
        rows.append(row)
        print(
            f"seeds={row['seeds']:>5}  baseline={row['baseline_median_s']:.3f}s  "
            f"vector={row['vector_median_s']:.3f}s  speedup={row['speedup']}x  "
            f"identical={row['identical']}"
        )

    payload = {
        "benchmark": "sixgen_vector_kernel",
        "scale": SCALE,
        "budget": BUDGET,
        "repeats": repeats,
        "quick": args.quick,
        "tiers": rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if not all(row["identical"] for row in rows):
        print("DIVERGENCE: vectorised kernel output differs from reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
