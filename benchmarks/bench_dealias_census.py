"""§6.2: the aliasing census.

Paper numbers: 98 % of responsive /96 prefixes aliased; >98 % of raw
hits inside aliased space at the 1 M budget; aliasing confined to ~1.9 %
of ASes; Cloudflare and Mittwald aliased at /112 (found via AS-level
inspection); Akamai holding over half of aliased hits.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_aliasing_census(benchmark, save_result):
    def run():
        return ex.aliasing_census(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    census = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("dealias_census", ex.format_aliasing_census(census))

    # Aliased hits dominate the raw hit set (grows toward the paper's
    # 98 % as budget rises; at the bench budget it is already dominant).
    assert census.aliased_hit_fraction > 0.7
    # The /112-granularity ASes are exactly the paper's two.
    assert set(census.aliased_asns) == {"Cloudflare", "Mittwald"}
    # Aliased hits concentrate in a handful of ASes.
    assert len(census.top_aliased_shares) <= 5
    assert sum(r.share for r in census.top_aliased_shares) > 0.9


def test_ns_seed_experiment(benchmark, save_result):
    """§6.7.1: NS-only seeds still find hosts, the full set finds multiples more."""

    def run():
        return ex.ns_seed_experiment(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ns_seeds", ex.format_ns_experiment(result))

    # NS seeds alone still discover a meaningful number of hosts...
    assert result.ns_dealiased_hits > 0
    # ...but the full seed set finds several times more (paper: ~5x
    # dealiased, ~19x raw).
    assert result.dealiased_ratio > 2.0
    assert result.raw_ratio > 2.0


def test_churn_analysis(benchmark, save_result):
    """§6.6: some prefixes' hits exceed their inactive seeds (net-new)."""

    def run():
        return ex.churn_analysis(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("churn_analysis", ex.format_churn(analysis))

    # The paper: a quarter of prefixes show net-new discovery, proving
    # hits are not just churned seeds reappearing.
    assert analysis.prefixes_net_positive > 0
    assert analysis.net_positive_fraction > 0.1
    assert analysis.total_inactive_seeds > 0
