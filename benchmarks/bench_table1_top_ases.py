"""Table 1: top-10 ASes for seeds, aliased hits, and dealiased hits.

Paper shape: Akamai and Amazon dominate aliased hits (together >85 %);
hosting providers (Amazon EC2, OVH, Hetzner, …) lead the dealiased
hits; seeds are not heavily skewed toward any single AS.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_table1_top_ases(benchmark, save_result):
    def run():
        return ex.table1_top_ases(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table1_top_ases", ex.format_table1(table))

    # Seeds are broadly distributed: no AS holds more than a quarter.
    assert table.seeds[0].share < 0.25
    # Akamai leads aliased hits (the paper's 52 %); the top two aliased
    # ASes together hold the majority.
    assert table.aliased[0].name == "Akamai"
    assert table.aliased[0].share + table.aliased[1].share > 0.5
    # Dealiased hits are led by hosting providers, not the aliased CDNs.
    clean_names = {row.name for row in table.clean[:5]}
    assert not ({"Akamai", "Cloudflare", "Mittwald"} & clean_names)
