"""§6.3 design decision: tight vs loose cluster ranges.

Paper numbers: loose 56.7 M raw / 1.0 M dealiased vs tight 55.9 M raw /
973 K dealiased — loose wins slightly on both, and becomes the default.
The benchmark asserts the qualitative outcome: the two modes land close
together, with loose at least on par.
"""

from repro.analysis import experiments as ex

from conftest import BENCH_BUDGET, BENCH_SCALE


def test_tight_vs_loose(benchmark, save_result):
    def run():
        return ex.tight_vs_loose(budget=BENCH_BUDGET, scale=BENCH_SCALE)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("tight_vs_loose", ex.format_tight_vs_loose(rows))

    by_mode = {r.mode: r for r in rows}
    loose, tight = by_mode["loose"], by_mode["tight"]
    # On *dealiased* hits — the meaningful metric — loose wins, as in
    # the paper (1.0 M vs 973 K).
    assert loose.dealiased_hits >= tight.dealiased_hits
    # On raw hits the two modes land in the same ballpark; the ordering
    # there is workload-dependent (the paper saw a 1.4 % edge for loose,
    # this simulation's random-low-bit networks can favour tight).
    ratio = loose.raw_hits / tight.raw_hits
    assert 0.5 < ratio < 2.0
