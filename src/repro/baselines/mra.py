"""Multi-Resolution Aggregate density analysis (Plonka & Berger, §3.2).

The paper credits Plonka & Berger (IMC '15) with a visualization metric
over multi-resolution aggregates of an address set, and "a method for
identifying dense network prefixes from the given addresses that can be
leveraged for scanning".  This module implements that idea as a TGA
baseline: aggregate the seeds at every nybble-aligned prefix length,
rank aggregates by seed density, and spend the probe budget filling the
densest prefixes.

The paper's §3.2 note — 6Gen is "similarly density-driven [but]
considers any address space region, beyond just network prefixes" — is
exactly the difference visible in benchmarks: MRA can only emit aligned
power-of-16 blocks, so it wastes budget on half-empty prefixes that a
nybble-range would have excluded.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..ipv6.prefix import Prefix

#: Nybble-aligned aggregation levels (prefix lengths in bits).
AGGREGATION_LEVELS = tuple(range(0, 132, 4))


@dataclass(frozen=True)
class Aggregate:
    """One multi-resolution aggregate: a prefix and its seed count."""

    prefix: Prefix
    seed_count: int

    def density(self) -> float:
        """Seeds per address of the prefix (the MRA density metric)."""
        return self.seed_count / self.prefix.size()


def aggregates_at_level(addrs: Sequence[int], length: int) -> list[Aggregate]:
    """Aggregate an address set at one prefix length."""
    counts: Counter[int] = Counter(
        int(a) >> (128 - length) if length else 0 for a in addrs
    )
    return [
        Aggregate(Prefix(network << (128 - length) if length else 0, length), count)
        for network, count in counts.items()
    ]


def multi_resolution_aggregates(
    addrs: Sequence[int],
    levels: Iterable[int] = AGGREGATION_LEVELS,
) -> dict[int, list[Aggregate]]:
    """The full MRA: aggregates at every requested level."""
    return {length: aggregates_at_level(addrs, length) for length in levels}


def dense_prefixes(
    addrs: Sequence[int],
    *,
    min_seeds: int = 2,
    max_prefix_size: int | None = None,
    levels: Iterable[int] = AGGREGATION_LEVELS,
) -> list[Aggregate]:
    """Dense prefixes worth scanning, best density first.

    Only aggregates holding at least ``min_seeds`` seeds qualify (a
    single seed says nothing about density), and prefixes larger than
    ``max_prefix_size`` are skipped as unfillable.  Aggregates whose
    prefix is contained in an already-selected denser prefix are
    dropped to avoid double-charging the caller.
    """
    candidates = [
        agg
        for length in levels
        for agg in aggregates_at_level(addrs, length)
        if agg.seed_count >= min_seeds
        and (max_prefix_size is None or agg.prefix.size() <= max_prefix_size)
    ]
    candidates.sort(key=lambda a: (-a.density(), a.prefix.size()))
    selected: list[Aggregate] = []
    for agg in candidates:
        if not any(chosen.prefix.contains_prefix(agg.prefix) for chosen in selected):
            selected.append(agg)
    return selected


def run_mra(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    min_seeds: int = 2,
    rng_seed: int | None = 0,
) -> set[int]:
    """Budgeted MRA target generation.

    Fills the densest prefixes first; a prefix that does not fit in the
    remaining budget is sampled to consume the budget exactly (the same
    final-step policy 6Gen uses).  Seeds are excluded from the output.
    """
    seed_list = sorted({int(s) for s in seeds})
    if budget <= 0 or not seed_list:
        return set()
    rng = random.Random(rng_seed)
    seed_set = set(seed_list)
    targets: set[int] = set()
    for agg in dense_prefixes(
        seed_list, min_seeds=min_seeds, max_prefix_size=16 * (budget + len(seed_list))
    ):
        remaining = budget - len(targets)
        if remaining <= 0:
            break
        fresh = [
            a.value
            for a in agg.prefix.addresses()
            if a.value not in seed_set and a.value not in targets
        ] if agg.prefix.size() <= 4 * (remaining + len(seed_set)) else None
        if fresh is None:
            # Large prefix: sample instead of enumerating.
            chosen: set[int] = set()
            while len(chosen) < remaining:
                candidate = agg.prefix.random_address(rng).value
                if candidate not in seed_set and candidate not in targets:
                    chosen.add(candidate)
            targets.update(chosen)
        elif len(fresh) <= remaining:
            targets.update(fresh)
        else:
            targets.update(rng.sample(fresh, remaining))
    return targets
