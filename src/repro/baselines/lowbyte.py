"""RFC 7707 heuristic target generation (paper §3.2).

Predicts neighbours of known addresses using the documented operator
practices: vary the low-order bytes of each seed, and probe the
well-known "easy" interface identifiers (::1, ::2, …, embedded service
ports, common hex words) within each /64 observed to contain a seed.

This is the family of strategies the Ullrich et al. evaluation compared
against; it serves as a simple, pattern-blind baseline here.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Sequence

from ..ipv6.patterns import COMMON_PORTS, HEX_WORDS

_IID_MASK = (1 << 64) - 1


def _well_known_iids() -> list[int]:
    """Interface identifiers worth probing in any network (RFC 7707)."""
    iids = list(range(0, 257))  # ::0 .. ::100
    iids += [int(format(p, "d"), 16) for p in COMMON_PORTS]
    iids += [int(word, 16) for word in HEX_WORDS]
    seen: set[int] = set()
    out = []
    for iid in iids:
        if iid not in seen:
            seen.add(iid)
            out.append(iid)
    return out


_WELL_KNOWN_IIDS = _well_known_iids()


def low_byte_neighbours(seed: int, span: int = 256) -> Iterator[int]:
    """Addresses sharing all but the low byte(s) with the seed.

    Varies the final 8 bits through ``span`` consecutive values starting
    at the seed's low-byte-aligned base.
    """
    base = int(seed) & ~0xFF
    for offset in range(span):
        yield base + offset


def network_guesses(seed: int) -> Iterator[int]:
    """Well-known interface identifiers within the seed's /64."""
    network = int(seed) & ~_IID_MASK
    for iid in _WELL_KNOWN_IIDS:
        yield network | iid


def run_lowbyte(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    rng_seed: int | None = 0,
) -> set[int]:
    """Budgeted RFC 7707-style target generation.

    Interleaves the per-seed generators round-robin so the budget is
    spread across networks instead of exhausting on the first seed.
    Seeds themselves are excluded from the emitted targets.
    """
    seed_list = sorted(set(int(s) for s in seeds))
    if budget <= 0 or not seed_list:
        return set()
    rng = random.Random(rng_seed)
    rng.shuffle(seed_list)
    generators = [
        itertools.chain(network_guesses(s), low_byte_neighbours(s, span=4096))
        for s in seed_list
    ]
    seed_set = set(seed_list)
    targets: set[int] = set()
    active = list(generators)
    while active and len(targets) < budget:
        still_active = []
        for gen in active:
            addr = next(gen, None)
            if addr is None:
                continue
            still_active.append(gen)
            if addr not in seed_set and addr not in targets:
                targets.add(addr)
                if len(targets) >= budget:
                    break
        active = still_active
    return targets
