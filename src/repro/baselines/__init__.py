"""Comparator TGAs: Ullrich recursive, RFC 7707 heuristics, random guessing.

These are the other algorithms the paper situates 6Gen against (§3.3);
each exposes a ``run_*`` function with the common
``(seeds, budget) -> set[int]`` shape.
"""

from .lowbyte import low_byte_neighbours, network_guesses, run_lowbyte
from .mra import Aggregate, dense_prefixes, multi_resolution_aggregates, run_mra
from .random_gen import covering_prefix, run_random
from .ullrich import BitRange, run_ullrich, ullrich_range

__all__ = [
    "Aggregate",
    "BitRange",
    "covering_prefix",
    "dense_prefixes",
    "low_byte_neighbours",
    "multi_resolution_aggregates",
    "network_guesses",
    "run_lowbyte",
    "run_mra",
    "run_random",
    "run_ullrich",
    "ullrich_range",
]
