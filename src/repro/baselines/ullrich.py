"""The Ullrich et al. recursive pattern-based TGA (paper §3.3, ARES '15).

Takes a set of seeds, a starting address range, and a threshold ``n_bits``.
Each recursion level finds the seeds inside the current range, picks the
(undetermined bit, value) pair matched by the most seeds, fixes that
bit, and recurses until only ``n_bits`` bits remain undetermined.  The
final range's addresses are the scan targets.

As the paper notes, this baseline can only output ranges of constant
size (``2**n_bits``) and needs an initial range as input — 6Gen's key
advantages are producing multiple variable-size ranges automatically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..ipv6.prefix import Prefix


@dataclass(frozen=True)
class BitRange:
    """A 128-bit range defined by a mask of fixed bits and their values."""

    fixed_mask: int  # bit set => bit position is determined
    fixed_value: int  # values at determined positions (0 elsewhere)

    def __post_init__(self):
        if self.fixed_value & ~self.fixed_mask:
            raise ValueError("fixed_value has bits outside fixed_mask")

    @property
    def free_bits(self) -> int:
        """Number of undetermined bit positions."""
        return 128 - self.fixed_mask.bit_count()

    def size(self) -> int:
        return 1 << self.free_bits

    def contains(self, addr: int) -> bool:
        return (int(addr) & self.fixed_mask) == self.fixed_value

    def with_bit(self, bit: int, value: int) -> "BitRange":
        """Fix one more bit position (0 = least significant bit)."""
        mask_bit = 1 << bit
        if self.fixed_mask & mask_bit:
            raise ValueError(f"bit {bit} is already fixed")
        return BitRange(self.fixed_mask | mask_bit, self.fixed_value | (value << bit))

    def iter_ints(self) -> Iterator[int]:
        """Iterate all addresses in the range (check free_bits first!)."""
        free_positions = [b for b in range(128) if not (self.fixed_mask >> b) & 1]
        for combo in range(1 << len(free_positions)):
            addr = self.fixed_value
            for i, bit in enumerate(free_positions):
                if (combo >> i) & 1:
                    addr |= 1 << bit
            yield addr

    def sample_ints(self, count: int, rng: random.Random) -> list[int]:
        """``count`` distinct random addresses in the range."""
        if count > self.size():
            raise ValueError(f"cannot sample {count} from range of size {self.size()}")
        free_positions = [b for b in range(128) if not (self.fixed_mask >> b) & 1]
        chosen: set[int] = set()
        while len(chosen) < count:
            addr = self.fixed_value
            for bit in free_positions:
                if rng.getrandbits(1):
                    addr |= 1 << bit
            chosen.add(addr)
        return sorted(chosen)

    @classmethod
    def from_prefix(cls, prefix: Prefix) -> "BitRange":
        mask = ((1 << prefix.length) - 1) << (128 - prefix.length) if prefix.length else 0
        return cls(mask, prefix.network)


def ullrich_range(
    seeds: Sequence[int],
    start: BitRange,
    n_bits: int,
) -> BitRange:
    """Run the recursive bit-fixing algorithm down to ``n_bits`` free bits.

    At each level, the (bit, value) pair matching the largest number of
    in-range seeds is fixed; ties prefer the most significant bit and
    value 0 (deterministic, so results are reproducible).
    """
    if not 0 <= n_bits <= 128:
        raise ValueError(f"n_bits out of range: {n_bits}")
    if start.fixed_mask == 0:
        raise ValueError("the starting range must have at least one bit determined")
    current = start
    in_range = [int(s) for s in seeds if start.contains(s)]
    while current.free_bits > n_bits:
        if not in_range:
            # No seeds left to guide the choice; fix the most significant
            # free bit to zero and continue (degenerates to a prefix walk).
            bit = max(b for b in range(128) if not (current.fixed_mask >> b) & 1)
            current = current.with_bit(bit, 0)
            continue
        best: tuple[int, int, int] | None = None  # (count, bit, value)
        for bit in range(127, -1, -1):
            if (current.fixed_mask >> bit) & 1:
                continue
            ones = sum(1 for s in in_range if (s >> bit) & 1)
            zeros = len(in_range) - ones
            for value, count in ((0, zeros), (1, ones)):
                if best is None or count > best[0]:
                    best = (count, bit, value)
        assert best is not None
        _, bit, value = best
        current = current.with_bit(bit, value)
        in_range = [s for s in in_range if current.contains(s)]
    return current


def run_ullrich(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    start: BitRange | Prefix | None = None,
    rng_seed: int | None = 0,
) -> set[int]:
    """Budgeted target generation with the Ullrich baseline.

    ``n_bits`` is derived from the budget (largest power of two that
    fits); if the final range still exceeds the budget the targets are
    sampled from it.  When no starting range is given, the covering
    prefix of the seeds is used (the paper's requirement of an initial
    range with at least one determined bit).
    """
    seeds = [int(s) for s in seeds]
    if budget <= 0 or not seeds:
        return set()
    if start is None:
        start_range = _covering_bit_range(seeds)
    elif isinstance(start, Prefix):
        start_range = BitRange.from_prefix(start)
    else:
        start_range = start
    n_bits = max(0, budget.bit_length() - 1)  # 2**n_bits <= budget
    n_bits = min(n_bits, start_range.free_bits)
    final = ullrich_range(seeds, start_range, n_bits)
    if final.size() <= budget:
        return set(final.iter_ints())
    rng = random.Random(rng_seed)
    return set(final.sample_ints(budget, rng))


def _covering_bit_range(seeds: Sequence[int]) -> BitRange:
    """The longest common bit prefix of the seeds, as a starting range."""
    common = 128
    first = seeds[0]
    for s in seeds[1:]:
        diff = first ^ s
        common = min(common, 128 - diff.bit_length())
    common = max(common, 1)  # the algorithm needs >= 1 determined bit
    mask = ((1 << common) - 1) << (128 - common)
    return BitRange(mask, first & mask)
