"""Brute-force random target generation (the paper's strawman, §1/§4).

Uniform random guessing inside the covering prefix of the seeds.  In a
space of 2**64 interface identifiers this finds essentially nothing —
the paper's motivation for algorithmic target generation — but it is
the honest zero-intelligence baseline for benchmark floors.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..ipv6.prefix import Prefix


def covering_prefix(seeds: Sequence[int]) -> Prefix:
    """The longest CIDR prefix containing every seed."""
    if not seeds:
        raise ValueError("covering_prefix requires at least one seed")
    first = int(seeds[0])
    common = 128
    for s in seeds[1:]:
        diff = first ^ int(s)
        common = min(common, 128 - diff.bit_length())
    return Prefix.containing(first, common)


def run_random(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    prefix: Prefix | None = None,
    rng_seed: int | None = 0,
) -> set[int]:
    """Generate ``budget`` distinct uniform-random targets.

    Draws from ``prefix`` when given, otherwise from the seeds'
    covering prefix.  Seeds are excluded from the output.
    """
    seed_list = [int(s) for s in seeds]
    if budget <= 0:
        return set()
    if prefix is None:
        prefix = covering_prefix(seed_list)
    seed_set = set(seed_list)
    capacity = prefix.size() - len([s for s in seed_set if prefix.contains(s)])
    if budget > capacity:
        budget = capacity
    rng = random.Random(rng_seed)
    targets: set[int] = set()
    if prefix.size() <= 4 * (budget + len(seed_set)):
        pool = [a.value for a in prefix.addresses() if a.value not in seed_set]
        return set(rng.sample(pool, budget))
    while len(targets) < budget:
        addr = prefix.random_address(rng).value
        if addr not in seed_set:
            targets.add(addr)
    return targets
