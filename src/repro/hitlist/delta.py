"""Delta campaigns: re-probe what decayed, explore with what's left.

A full campaign regenerates and re-probes its entire target list every
epoch; against a slowly churning world most of those probes confirm
what the last scan already established.  :class:`DeltaCampaign` plans
an epoch's probes from a :class:`~repro.hitlist.store.LivingHitlist`
instead:

* **re-probe** — known responders whose decayed score fell below the
  re-probe threshold (recently confirmed addresses are skipped; that
  is the probe saving), and
* **explore** — fresh 6Gen generation seeded by the *currently
  believed-live* addresses, grouped by routed prefix, with a budgeted
  fraction of the campaign budget, minus anything probed within the
  last ``miss_revisit_age`` epochs.

Seeding exploration from the accumulated hitlist (rather than the
static DNS snapshot) is what lets a delta campaign track drift: every
epoch's discoveries widen the next epoch's seed pool, so generation
follows the population as DHCP pools shift and prefixes are
reallocated.

The plan composes with the existing pipeline unchanged: its target
columns feed ``Campaign(targets=...)`` (or
``CampaignService.submit(targets=...)``), and the scan result feeds
back via :meth:`DeltaCampaign.ingest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..campaign.pipeline import Campaign, CampaignSpec
from ..ipv6.addrplane import concat_columns, dedupe_columns, fuse, unpack
from .store import (
    DEFAULT_LIVE_THRESHOLD,
    DEFAULT_MISS_FORGET_AGE,
    DEFAULT_REPROBE_THRESHOLD,
    LivingHitlist,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..campaign.pipeline import CampaignResult
    from ..service.daemon import CampaignService
    from ..telemetry.spans import Telemetry


@dataclass(frozen=True)
class DeltaSpec:
    """Knobs of the delta planner (separate from the campaign knobs).

    ``explore_fraction`` scales the *per-prefix* exploration budget
    relative to ``CampaignSpec.budget``; the re-probe set is whatever
    the decay schedule says is due, so total probe cost adapts to how
    much belief actually decayed.
    """

    explore_fraction: float = 0.5
    live_threshold: float = DEFAULT_LIVE_THRESHOLD
    reprobe_threshold: float = DEFAULT_REPROBE_THRESHOLD
    miss_forget_age: int = DEFAULT_MISS_FORGET_AGE
    #: Exploration targets probed within this many epochs are skipped.
    miss_revisit_age: int = 2


@dataclass
class DeltaPlan:
    """One epoch's planned probes: packed columns plus accounting."""

    epoch: int
    hi: np.ndarray
    lo: np.ndarray
    reprobe_count: int
    explore_count: int
    #: Exploration targets dropped because they were probed recently.
    filtered_recent: int
    seed_count: int

    @property
    def columns(self) -> tuple[np.ndarray, np.ndarray]:
        return self.hi, self.lo

    @property
    def total(self) -> int:
        return len(self.hi)

    @property
    def is_empty(self) -> bool:
        return len(self.hi) == 0


class DeltaCampaign:
    """Plans decay-weighted re-probe + budgeted exploration campaigns.

    Bind it to a store, a BGP table, and the campaign spec once; then
    each epoch: :meth:`plan` → scan the plan's columns (via
    :meth:`campaign`, :meth:`run`, or :meth:`submit`) → :meth:`ingest`
    the result.  Planning is deterministic: the same store state and
    epoch always yield identical target columns.
    """

    def __init__(
        self,
        store: LivingHitlist,
        bgp,
        spec: CampaignSpec,
        *,
        delta: DeltaSpec | None = None,
        telemetry: "Telemetry | None" = None,
    ):
        self.store = store
        self.bgp = bgp
        self.spec = spec
        self.delta = delta if delta is not None else DeltaSpec()
        self.telemetry = telemetry
        from ..telemetry.spans import ensure

        self._tele = ensure(telemetry)

    # -- planning ------------------------------------------------------

    def plan(self, epoch: int, *, extra_seeds=None) -> DeltaPlan:
        """Compute this epoch's target columns from the store's belief.

        ``extra_seeds`` (optional ints) joins the believed-live pool as
        exploration seeds — the hook for an external intake feed (fresh
        DNS snapshots, third-party hitlists).  Seed intake costs no
        probes, but rotated or re-leased addresses are unguessable from
        stale belief alone, so a live feed is what lets exploration
        track identifier churn the way a from-scratch rescan would.
        """
        from ..campaign.generate import generate_per_prefix
        from ..simnet.bgp import group_by_routed_prefix

        delta = self.delta
        with self._tele.span("delta_plan", epoch=int(epoch)):
            rhi, rlo = self.store.due_for_reprobe(
                epoch,
                threshold=delta.reprobe_threshold,
                miss_forget_age=delta.miss_forget_age,
            )
            seeds = unpack(
                *self.store.believed_live(
                    epoch, threshold=delta.live_threshold
                )
            )
            if extra_seeds is not None:
                seeds = sorted(
                    set(seeds).union(int(a) for a in extra_seeds)
                )
            explore_budget = int(self.spec.budget * delta.explore_fraction)
            ehi = elo = None
            filtered = 0
            if seeds and explore_budget > 0:
                groups = group_by_routed_prefix(seeds, self.bgp)
                if groups:
                    run = generate_per_prefix(
                        groups,
                        explore_budget,
                        loose=self.spec.loose,
                        telemetry=self.telemetry,
                        processes=self.spec.gen_workers,
                    )
                    chunks = list(run.iter_target_columns())
                    if chunks:
                        ehi, elo = dedupe_columns(*concat_columns(chunks))
                        # Skip anything checked recently — those probes
                        # would only re-confirm fresh belief.
                        recent = np.sort(
                            self.store.probed_within(
                                epoch, delta.miss_revisit_age
                            )
                        )
                        if len(recent):
                            keep = ~np.isin(fuse(ehi, elo), recent)
                            filtered = int(len(ehi) - keep.sum())
                            ehi, elo = ehi[keep], elo[keep]
            if ehi is None:
                ehi = np.empty(0, dtype=np.uint64)
                elo = np.empty(0, dtype=np.uint64)
            hi, lo = dedupe_columns(
                *concat_columns([(rhi, rlo), (ehi, elo)])
            )
            plan = DeltaPlan(
                epoch=int(epoch),
                hi=hi,
                lo=lo,
                reprobe_count=len(rhi),
                explore_count=len(ehi),
                filtered_recent=filtered,
                seed_count=len(seeds),
            )
        if self._tele.enabled:
            self._tele.gauge("delta.targets", plan.total)
            self._tele.gauge("delta.reprobe", plan.reprobe_count)
            self._tele.gauge("delta.explore", plan.explore_count)
        return plan

    # -- execution -----------------------------------------------------

    def campaign(
        self,
        truth,
        plan: DeltaPlan,
        *,
        checkpoint_path: str | None = None,
        name: str | None = None,
    ) -> Campaign:
        """Wrap a plan in a :class:`Campaign` over explicit targets."""
        return Campaign(
            truth,
            self.bgp,
            {},
            self.spec,
            telemetry=self.telemetry,
            checkpoint_path=checkpoint_path,
            name=name or f"delta-epoch-{plan.epoch}",
            targets=plan.columns,
        )

    def run(
        self, truth, epoch: int, *, extra_seeds=None
    ) -> "tuple[DeltaPlan, CampaignResult | None]":
        """Plan, scan, and ingest one epoch against ``truth``.

        Returns ``(plan, result)``; ``result`` is ``None`` when the
        plan was empty (nothing due, nothing to explore).
        """
        plan = self.plan(epoch, extra_seeds=extra_seeds)
        if plan.is_empty:
            return plan, None
        result = self.campaign(truth, plan).run()
        self.ingest(plan, result)
        return plan, result

    def submit(
        self,
        service: "CampaignService",
        tenant: str,
        plan: DeltaPlan,
        *,
        name: str | None = None,
        checkpoint_path: str | None = None,
    ) -> str:
        """Queue a plan on a multi-tenant service; returns the job id.

        Ingest the job's result (``service.result(job_id)``) with
        :meth:`ingest` once the scheduler finishes it.
        """
        return service.submit(
            tenant,
            {},
            self.spec,
            name=name or f"delta-epoch-{plan.epoch}",
            checkpoint_path=checkpoint_path,
            targets=plan.columns,
        )

    def ingest(self, plan: DeltaPlan, result: "CampaignResult") -> dict:
        """Feed a scan's outcome back into the store at the plan's epoch.

        Dealiased (*clean*) hits are recorded as responders; aliased
        hits count as misses, so aliased regions decay out of the
        belief set instead of accumulating as phantom hosts (§6.2's
        rationale, applied longitudinally).  With ``spec.dealias``
        off, clean hits are simply the raw hits.
        """
        return self.store.observe(plan.epoch, plan.columns, result.clean_hits)
