"""The living hitlist: a persistent, decaying record of responsive addresses.

The paper's hitlists are static snapshots; against a churning Internet
(privacy rotation, DHCP cycling, hosts joining and leaving — see
:mod:`repro.simnet.dynamics`) a snapshot goes stale within a few
epochs.  :class:`LivingHitlist` keeps per-address observation state —
when each address last answered, when it was last probed, and an
exponentially decaying responsiveness score — so a delta campaign
(:mod:`repro.hitlist.delta`) can re-probe only the addresses whose
belief has decayed and spend the rest of its budget exploring.

Layout is column-native, matching the scan plane: parallel numpy
arrays (``hi``/``lo`` uint64 address halves, int64 epochs, float64
scores) kept sorted by the order-preserving ``S16`` fused key from
:func:`repro.ipv6.addrplane.fuse`, so batch updates and membership
tests are ``searchsorted`` passes, never Python loops over boxed
128-bit ints.

Scoring: an address probed at epoch ``e`` updates as
``score <- score * decay**(e - last_probed) + (1 if hit else 0)``.
The stored score is therefore always "as of ``last_probed``"; queries
decay it forward to the asked-about epoch.  With the default
``decay=0.6``, one fresh hit scores 1.0, stays *believed live*
(``>= live_threshold``) for several epochs, and falls *due for
re-probe* (``< reprobe_threshold``) after about two — which is where a
delta campaign's probe savings come from.

Persistence mirrors the scan checkpoint layer: an append-only JSONL
event log (one ``observe`` record per ingested scan, flushed per
line), compacted by ``snapshot`` markers pointing at an ``.npz``
column dump written atomically via temp-file + rename.  Loading reads
the last snapshot and replays the tail, so a crash mid-run loses at
most one partial trailing line.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..ipv6.addrplane import fuse, pack, unpack
from ..telemetry.sinks import JsonlSink, read_jsonl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.spans import Telemetry

#: Per-epoch multiplicative score decay.
DEFAULT_DECAY = 0.6
#: Decayed score at or above which an address is believed live.
DEFAULT_LIVE_THRESHOLD = 0.1
#: Decayed score below which a known responder is due for re-probe.
DEFAULT_REPROBE_THRESHOLD = 0.45
#: Epochs after the last response before a silent address is abandoned.
DEFAULT_MISS_FORGET_AGE = 8

_FORMAT = "repro-hitlist"
_VERSION = 1


def _as_columns(targets) -> tuple[np.ndarray, np.ndarray]:
    """Coerce an address source to packed ``(hi, lo)`` columns."""
    if isinstance(targets, tuple) and len(targets) == 2:
        return targets
    return pack(sorted(int(a) for a in targets))


class LivingHitlist:
    """Per-address observation state with exponential score decay.

    Build empty (optionally bound to a ``path`` for persistence) or via
    :meth:`open` to reload an existing store.  Feed scan outcomes with
    :meth:`observe`; plan re-probes with :meth:`due_for_reprobe` and
    read the current belief with :meth:`believed_live`.
    """

    def __init__(
        self,
        *,
        decay: float = DEFAULT_DECAY,
        path: str | os.PathLike | None = None,
        telemetry: "Telemetry | None" = None,
    ):
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1): {decay}")
        self.decay = float(decay)
        self.path = os.fspath(path) if path is not None else None
        self._keys = np.empty(0, dtype="S16")
        self._hi = np.empty(0, dtype=np.uint64)
        self._lo = np.empty(0, dtype=np.uint64)
        self._last_seen = np.empty(0, dtype=np.int64)
        self._last_probed = np.empty(0, dtype=np.int64)
        self._score = np.empty(0, dtype=np.float64)
        #: Highest epoch any observation has been recorded at.
        self.latest_epoch = -1
        #: Events appended since the last snapshot (compaction trigger).
        self.events_since_snapshot = 0
        from ..telemetry.spans import ensure

        self._tele = ensure(telemetry)
        self._sink: JsonlSink | None = None
        if self.path is not None:
            self._sink = JsonlSink(self.path)

    # -- construction --------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        *,
        decay: float = DEFAULT_DECAY,
        telemetry: "Telemetry | None" = None,
    ) -> "LivingHitlist":
        """Reload a store from its event log (last snapshot + tail).

        Missing files yield an empty store bound to ``path`` — opening
        is how a longitudinal run bootstraps its first epoch.
        """
        path = os.fspath(path)
        events: list[dict] = []
        if os.path.exists(path):
            events = read_jsonl(path)
        store = cls.__new__(cls)
        # Re-run __init__ without the sink so replay does not re-log.
        LivingHitlist.__init__(store, decay=decay, telemetry=telemetry)
        store.path = path
        # Find the last usable snapshot marker and replay from there.
        start = 0
        for index, event in enumerate(events):
            if event.get("kind") != "snapshot":
                continue
            snap_path = os.path.join(
                os.path.dirname(path) or ".", event["file"]
            )
            if os.path.exists(snap_path):
                start = index + 1
                store._load_snapshot(snap_path)
        for event in events[start:]:
            if event.get("kind") == "observe":
                store._replay(event)
        store._sink = JsonlSink(path)
        return store

    def _load_snapshot(self, snap_path: str) -> None:
        with np.load(snap_path) as data:
            self._hi = data["hi"].astype(np.uint64)
            self._lo = data["lo"].astype(np.uint64)
            self._last_seen = data["last_seen"].astype(np.int64)
            self._last_probed = data["last_probed"].astype(np.int64)
            self._score = data["score"].astype(np.float64)
            self.latest_epoch = int(data["latest_epoch"])
        self._keys = fuse(self._hi, self._lo)
        self.events_since_snapshot = 0

    def _replay(self, event: dict) -> None:
        epoch = int(event["epoch"])
        hits = [int(a, 16) for a in event.get("hits", ())]
        misses = [int(a, 16) for a in event.get("misses", ())]
        self._apply(epoch, hits, misses)
        self.events_since_snapshot += 1

    # -- ingestion -----------------------------------------------------

    def observe(
        self,
        epoch: int,
        probed,
        hits: "Iterable[int] | set[int]",
    ) -> dict:
        """Record one scan's outcome: every probed address, hit or miss.

        ``probed`` is the scan's deduplicated target source (packed
        columns or ints); ``hits`` the responsive subset.  Addresses
        never seen before are admitted; known addresses get their score
        decayed to ``epoch`` and bumped (hit) or left to fade (miss).
        Returns a small summary dict (``hits``/``misses``/``new``).
        """
        epoch = int(epoch)
        if epoch < self.latest_epoch:
            raise ValueError(
                f"observations must be epoch-ordered: got {epoch} after "
                f"{self.latest_epoch}"
            )
        hit_set = {int(a) for a in hits}
        phi, plo = _as_columns(probed)
        probed_ints = unpack(phi, plo)
        hit_list = sorted(a for a in probed_ints if a in hit_set)
        miss_list = sorted(a for a in probed_ints if a not in hit_set)
        # Hits outside the probed set (e.g. retries of earlier targets)
        # still count as observations.
        extra = sorted(hit_set.difference(probed_ints))
        hit_list = sorted(set(hit_list).union(extra))
        before = len(self._keys)
        self._apply(epoch, hit_list, miss_list)
        summary = {
            "hits": len(hit_list),
            "misses": len(miss_list),
            "new": len(self._keys) - before,
        }
        if self._sink is not None:
            self._sink.emit(
                {
                    "kind": "observe",
                    "epoch": epoch,
                    "hits": [f"{a:x}" for a in hit_list],
                    "misses": [f"{a:x}" for a in miss_list],
                }
            )
            self.events_since_snapshot += 1
        if self._tele.enabled:
            self._tele.count("hitlist.observed", len(hit_list) + len(miss_list))
            self._tele.gauge("hitlist.size", len(self._keys))
        return summary

    def _apply(self, epoch: int, hit_list: list[int], miss_list: list[int]) -> None:
        if not hit_list and not miss_list:
            self.latest_epoch = max(self.latest_epoch, epoch)
            return
        uhi, ulo = pack(hit_list + miss_list)
        flags = np.zeros(len(uhi), dtype=np.float64)
        flags[: len(hit_list)] = 1.0
        keys = fuse(uhi, ulo)
        # Updates may repeat an address (hit + miss lists are disjoint,
        # but defensive dedupe keeps replay robust); keep the hit.
        order = np.argsort(keys, kind="stable")
        keys, uhi, ulo, flags = keys[order], uhi[order], ulo[order], flags[order]
        if len(keys) > 1:
            distinct = np.empty(len(keys), dtype=bool)
            distinct[0] = True
            np.not_equal(keys[1:], keys[:-1], out=distinct[1:])
            if not distinct.all():
                group = np.cumsum(distinct) - 1
                agg = np.zeros(int(group[-1]) + 1, dtype=np.float64)
                np.maximum.at(agg, group, flags)
                keys, uhi, ulo = keys[distinct], uhi[distinct], ulo[distinct]
                flags = agg
        n = len(self._keys)
        pos = np.searchsorted(self._keys, keys)
        found = np.zeros(len(keys), dtype=bool)
        if n:
            inside = pos < n
            found[inside] = self._keys[pos[inside]] == keys[inside]
        # Known addresses: decay the stored score to `epoch`, add the
        # outcome, stamp the probe (and the sighting on a hit).
        idx = pos[found]
        if len(idx):
            dt = np.maximum(epoch - self._last_probed[idx], 0)
            self._score[idx] = (
                self._score[idx] * self.decay ** dt + flags[found]
            )
            self._last_probed[idx] = epoch
            hit_idx = idx[flags[found] > 0]
            self._last_seen[hit_idx] = epoch
        # New addresses: append, then restore sorted order in one pass.
        fresh = ~found
        if fresh.any():
            f_hi, f_lo, f_flags = uhi[fresh], ulo[fresh], flags[fresh]
            f_seen = np.where(f_flags > 0, epoch, -1).astype(np.int64)
            self._hi = np.concatenate([self._hi, f_hi])
            self._lo = np.concatenate([self._lo, f_lo])
            self._last_seen = np.concatenate([self._last_seen, f_seen])
            self._last_probed = np.concatenate(
                [self._last_probed, np.full(len(f_hi), epoch, dtype=np.int64)]
            )
            self._score = np.concatenate([self._score, f_flags])
            self._keys = np.concatenate([self._keys, keys[fresh]])
            order = np.argsort(self._keys, kind="stable")
            self._keys = self._keys[order]
            self._hi = self._hi[order]
            self._lo = self._lo[order]
            self._last_seen = self._last_seen[order]
            self._last_probed = self._last_probed[order]
            self._score = self._score[order]
        self.latest_epoch = max(self.latest_epoch, epoch)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def decayed_scores(self, epoch: int) -> np.ndarray:
        """Every entry's score decayed forward to ``epoch``."""
        dt = np.maximum(int(epoch) - self._last_probed, 0)
        return self._score * self.decay ** dt

    def believed_live(
        self, epoch: int, *, threshold: float = DEFAULT_LIVE_THRESHOLD
    ) -> tuple[np.ndarray, np.ndarray]:
        """Addresses believed responsive at ``epoch`` (packed columns)."""
        mask = (self._last_seen >= 0) & (
            self.decayed_scores(epoch) >= threshold
        )
        return self._hi[mask].copy(), self._lo[mask].copy()

    def due_for_reprobe(
        self,
        epoch: int,
        *,
        threshold: float = DEFAULT_REPROBE_THRESHOLD,
        miss_forget_age: int = DEFAULT_MISS_FORGET_AGE,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Known responders whose belief has decayed below ``threshold``.

        Addresses silent for more than ``miss_forget_age`` epochs since
        their last response are abandoned (exploration can rediscover
        them); addresses probed recently enough to still score above
        ``threshold`` are skipped — the delta campaign's probe savings.
        """
        decayed = self.decayed_scores(epoch)
        mask = (
            (self._last_seen >= 0)
            & (decayed < threshold)
            & (int(epoch) - self._last_seen <= miss_forget_age)
        )
        return self._hi[mask].copy(), self._lo[mask].copy()

    def probed_within(self, epoch: int, age: int) -> np.ndarray:
        """Fused S16 keys of entries probed in the last ``age`` epochs.

        The delta planner's exploration filter: freshly generated
        targets matching these keys were checked recently and are not
        worth re-spending probes on this epoch.
        """
        mask = (int(epoch) - self._last_probed) < age
        return self._keys[mask]

    def summary(self, epoch: int | None = None) -> dict:
        """Counts and score aggregates (for the CLI and the bench)."""
        epoch = self.latest_epoch if epoch is None else int(epoch)
        decayed = self.decayed_scores(epoch)
        responders = self._last_seen >= 0
        believed = responders & (decayed >= DEFAULT_LIVE_THRESHOLD)
        due = (
            responders
            & (decayed < DEFAULT_REPROBE_THRESHOLD)
            & (epoch - self._last_seen <= DEFAULT_MISS_FORGET_AGE)
        )
        return {
            "epoch": epoch,
            "entries": len(self._keys),
            "responders": int(responders.sum()),
            "believed_live": int(believed.sum()),
            "due_for_reprobe": int(due.sum()),
            "mean_score": float(decayed[responders].mean())
            if responders.any()
            else 0.0,
        }

    def freshness(
        self, epoch: int, live: tuple[np.ndarray, np.ndarray]
    ) -> dict:
        """Belief quality against ground-truth ``live`` columns.

        ``freshness`` is the fraction of truly live addresses the store
        currently believes live (recall); ``staleness`` the fraction of
        believed-live addresses that are actually gone (belief rot).
        """
        bhi, blo = self.believed_live(epoch)
        believed_keys = fuse(bhi, blo)
        live_keys = np.sort(fuse(*live))
        overlap = int(np.isin(believed_keys, live_keys).sum())
        return {
            "epoch": int(epoch),
            "live": len(live_keys),
            "believed": len(believed_keys),
            "overlap": overlap,
            "freshness": overlap / len(live_keys) if len(live_keys) else 1.0,
            "staleness": (
                (len(believed_keys) - overlap) / len(believed_keys)
                if len(believed_keys)
                else 0.0
            ),
        }

    # -- persistence ---------------------------------------------------

    def snapshot(self) -> str:
        """Compact: dump columns to ``.npz`` and mark the event log.

        The dump is written next to the log via temp-file + atomic
        rename, then a ``snapshot`` marker is appended; a crash between
        the two leaves the previous snapshot + full tail, which replays
        to the identical state.
        """
        if self.path is None:
            raise ValueError("snapshot() requires a store opened with a path")
        snap_name = os.path.basename(self.path) + ".snap.npz"
        directory = os.path.dirname(self.path) or "."
        final = os.path.join(directory, snap_name)
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            np.savez(
                handle,
                format=_FORMAT,
                version=_VERSION,
                hi=self._hi,
                lo=self._lo,
                last_seen=self._last_seen,
                last_probed=self._last_probed,
                score=self._score,
                latest_epoch=self.latest_epoch,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        if self._sink is not None:
            self._sink.emit(
                {
                    "kind": "snapshot",
                    "epoch": self.latest_epoch,
                    "file": snap_name,
                    "count": len(self._keys),
                }
            )
        self.events_since_snapshot = 0
        return final

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "LivingHitlist":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- interop -------------------------------------------------------

    def addresses(self) -> list[int]:
        """All tracked addresses as Python ints (ascending)."""
        return unpack(self._hi, self._lo)

    def known_responders(self) -> tuple[np.ndarray, np.ndarray]:
        """Every address that ever answered, as packed columns."""
        mask = self._last_seen >= 0
        return self._hi[mask].copy(), self._lo[mask].copy()

    def state_digest(self) -> str:
        """Order-sensitive digest of the full column state (parity tests)."""
        import hashlib

        digest = hashlib.sha256()
        for arr in (
            self._hi, self._lo, self._last_seen, self._last_probed,
        ):
            digest.update(np.ascontiguousarray(arr).tobytes())
        digest.update(
            np.ascontiguousarray(self._score).astype("<f8").tobytes()
        )
        digest.update(str(self.latest_epoch).encode())
        return digest.hexdigest()
