"""Living hitlists and delta campaigns for a churning simulated Internet.

:mod:`repro.hitlist.store` keeps a persistent, decaying record of every
address a campaign has ever probed; :mod:`repro.hitlist.delta` turns
that record into epoch-by-epoch scan plans that re-probe only decayed
belief and spend the saved probes on exploration.
"""

from .delta import DeltaCampaign, DeltaPlan, DeltaSpec
from .store import (
    DEFAULT_DECAY,
    DEFAULT_LIVE_THRESHOLD,
    DEFAULT_MISS_FORGET_AGE,
    DEFAULT_REPROBE_THRESHOLD,
    LivingHitlist,
)

__all__ = [
    "DEFAULT_DECAY",
    "DEFAULT_LIVE_THRESHOLD",
    "DEFAULT_MISS_FORGET_AGE",
    "DEFAULT_REPROBE_THRESHOLD",
    "DeltaCampaign",
    "DeltaPlan",
    "DeltaSpec",
    "LivingHitlist",
]
