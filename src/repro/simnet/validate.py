"""Validation for custom world specs.

Custom worlds (``examples/custom_world.py``, world files) are easy to
get subtly wrong: duplicate routed prefixes abort assembly late, and an
aliased region placed over a host subnet silently turns real hosts into
aliased responders.  :func:`validate_specs` checks a spec list before
assembly and returns human-readable problems, split into hard errors
(assembly would fail or the ground truth would be incoherent) and
warnings (legal but probably unintended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ipv6.prefix import Prefix
from .allocation import POLICY_CLASSES
from .ground_truth import NetworkSpec


@dataclass(frozen=True)
class Problem:
    """One validation finding."""

    severity: str  # "error" | "warning"
    spec_index: int
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] spec {self.spec_index}: {self.message}"


def validate_specs(specs: Sequence[NetworkSpec]) -> list[Problem]:
    """Check a spec list; returns problems (empty list = all good)."""
    problems: list[Problem] = []
    seen_prefixes: dict[Prefix, int] = {}

    for i, spec in enumerate(specs):
        def err(message: str) -> None:
            problems.append(Problem("error", i, message))

        def warn(message: str) -> None:
            problems.append(Problem("warning", i, message))

        # Routed prefix uniqueness (BgpTable.add would raise later).
        if spec.routed_prefix in seen_prefixes:
            err(
                f"duplicate routed prefix {spec.routed_prefix} "
                f"(first used by spec {seen_prefixes[spec.routed_prefix]})"
            )
        else:
            seen_prefixes[spec.routed_prefix] = i

        # Policy must exist.
        if spec.policy_name not in POLICY_CLASSES:
            err(f"unknown policy {spec.policy_name!r}")
        else:
            try:
                POLICY_CLASSES[spec.policy_name](**spec.policy_kwargs)
            except TypeError as exc:
                err(f"bad policy kwargs for {spec.policy_name!r}: {exc}")

        # Subnet geometry.
        if spec.subnet_length < spec.routed_prefix.length:
            err(
                f"subnet length /{spec.subnet_length} shorter than routed "
                f"prefix {spec.routed_prefix}"
            )
        if spec.host_count <= 0:
            err(f"host_count must be positive: {spec.host_count}")
        if spec.subnet_count <= 0:
            err(f"subnet_count must be positive: {spec.subnet_count}")

        # Rates.
        for name, rate in (
            ("seed_rate", spec.seed_rate),
            ("churn_rate", spec.churn_rate),
            ("ns_rate", spec.ns_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                err(f"{name} out of [0, 1]: {rate}")

        # Aliased regions.
        for length in spec.aliased_lengths:
            if length <= spec.routed_prefix.length:
                err(
                    f"aliased region /{length} not inside routed prefix "
                    f"{spec.routed_prefix}"
                )
        if spec.aliased_seed_count and not spec.aliased_lengths:
            warn("aliased_seed_count set but no aliased regions declared")
        if spec.aliased_lengths and not spec.aliased_seed_count:
            warn(
                "aliased regions declared without aliased seeds — no TGA "
                "will ever steer budget into them"
            )

    # Cross-spec: routed prefixes nested inside other specs' prefixes
    # are legal (LPM handles them) but usually unintended in a custom
    # world; flag as warnings.
    for i, spec in enumerate(specs):
        for j, other in enumerate(specs):
            if i == j:
                continue
            if (
                spec.routed_prefix != other.routed_prefix
                and other.routed_prefix.contains_prefix(spec.routed_prefix)
                and spec.asn != other.asn
            ):
                problems.append(
                    Problem(
                        "warning",
                        i,
                        f"routed prefix {spec.routed_prefix} (AS{spec.asn}) is "
                        f"nested inside {other.routed_prefix} "
                        f"(AS{other.asn}, spec {j})",
                    )
                )
    return problems


def errors(problems: Sequence[Problem]) -> list[Problem]:
    """Only the hard errors from a validation result."""
    return [p for p in problems if p.severity == "error"]
