"""Simulated DNS seed collection (paper §6.1's Rapid7 FDNS stand-in).

The paper's seeds are AAAA records extracted from a Forward-DNS ANY
snapshot: a biased sample of active (and recently active) hosts, plus
CDN customer hostnames that resolve into aliased address space.  This
module fabricates the same kind of snapshot from the simulated ground
truth:

* each active host appears with its network's ``seed_rate``
  probability (DNS visibility differs per network);
* *retired* hosts appear at a reduced rate — DNS records outlive hosts,
  producing the inactive seeds §6.6 analyses;
* aliased networks contribute hostnames resolving to random addresses
  inside their aliased regions;
* a fraction of visible hosts also carry NS records, enabling the
  name-server-seed experiment (§6.7.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..ipv6.prefix import Prefix
from .ground_truth import BuiltNetwork, SimInternet


@dataclass(frozen=True)
class DnsRecord:
    """One forward-DNS record: hostname, record type, and target address."""

    name: str
    rtype: str  # "AAAA" or "NS" (an NS host also has an AAAA record)
    addr: int

    def __str__(self) -> str:
        from ..ipv6.address import format_address_int

        return f"{self.name} {self.rtype} {format_address_int(self.addr)}"


@dataclass
class SeedCollection:
    """A fabricated FDNS snapshot: records plus convenient address views."""

    records: list[DnsRecord] = field(default_factory=list)

    def addresses(self) -> list[int]:
        """All unique seed addresses (the paper's 6Gen input)."""
        return sorted({r.addr for r in self.records})

    def ns_addresses(self) -> list[int]:
        """Unique addresses carrying NS records (§6.7.1 seed subset)."""
        return sorted({r.addr for r in self.records if r.rtype == "NS"})

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DnsRecord]:
        return iter(self.records)

    def downsample(self, fraction: float, rng_seed: int = 0) -> "SeedCollection":
        """Random record-level downsample (Table 2's 1 %/10 %/25 % inputs)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        rng = random.Random(rng_seed)
        count = max(1, int(len(self.records) * fraction))
        return SeedCollection(records=rng.sample(self.records, count))


def collect_network_seeds(
    network: BuiltNetwork, rng: random.Random, start_index: int = 0
) -> list[DnsRecord]:
    """FDNS records contributed by one network."""
    spec = network.spec
    records: list[DnsRecord] = []
    index = start_index

    def hostname(i: int) -> str:
        return f"host{i}.as{spec.asn}.example"

    for addr in sorted(network.active_hosts):
        if rng.random() < spec.seed_rate:
            name = hostname(index)
            index += 1
            records.append(DnsRecord(name, "AAAA", addr))
            if rng.random() < spec.ns_rate:
                records.append(DnsRecord(name, "NS", addr))
    # Stale DNS entries for retired hosts (reduced visibility).
    for addr in sorted(network.retired_hosts):
        if rng.random() < spec.seed_rate * 0.6:
            records.append(DnsRecord(hostname(index), "AAAA", addr))
            index += 1
    # CDN customer hostnames inside aliased regions.  These resolve to
    # *structured* addresses (per-customer chunks with varying low
    # bits), which is what lets a density-driven TGA pour budget into
    # aliased space — the effect behind the paper's 98 % aliased hits.
    if spec.aliased_seed_count and network.aliased_regions:
        per_region = max(1, spec.aliased_seed_count // len(network.aliased_regions))
        for region in network.aliased_regions:
            chunk_len = max(region.prefix.length + 8, 120)
            chunk_count = max(1, min(8, region.prefix.size() >> (128 - chunk_len)))
            chunks = [
                Prefix.containing(region.prefix.random_address(rng).value, chunk_len)
                for _ in range(chunk_count)
            ]
            for i in range(per_region):
                chunk = chunks[i % len(chunks)]
                low_bits = min(8, 128 - chunk.length)
                addr = chunk.network | rng.getrandbits(low_bits)
                records.append(DnsRecord(hostname(index), "AAAA", addr))
                index += 1
    return records


def collect_seeds(internet: SimInternet, rng_seed: int = 7) -> SeedCollection:
    """Fabricate the full FDNS snapshot for a simulated Internet.

    Besides the per-network AAAA/NS records, hosts that run SMTP
    (TCP/25 in the ground truth) may carry MX records — giving the
    §6.7.1-style host-type experiments a second record type to slice
    on.
    """
    rng = random.Random(rng_seed)
    records: list[DnsRecord] = []
    for network in internet.networks:
        records.extend(collect_network_seeds(network, rng, start_index=len(records)))
    smtp_hosts = internet.truth.hosts(25)
    if smtp_hosts:
        seen = {r.addr for r in records}
        for i, addr in enumerate(sorted(smtp_hosts & seen)):
            if rng.random() < 0.5:
                records.append(DnsRecord(f"mail{i}.example", "MX", addr))
    return SeedCollection(records=records)


def seeds_of_type(
    collection: SeedCollection, rtypes: Sequence[str]
) -> list[int]:
    """Unique addresses appearing in records of the given types."""
    wanted = set(rtypes)
    return sorted({r.addr for r in collection.records if r.rtype in wanted})
