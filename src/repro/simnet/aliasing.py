"""Aliased-region model (paper §6.2).

The paper's key measurement finding: in several large networks *every*
address of an enormous prefix answers TCP/80 probes — e.g. a fully
responsive Akamai /56 — so responsive addresses stop corresponding to
distinct hosts.  An :class:`AliasedRegion` models one such prefix: all
of its addresses respond on the configured ports regardless of any host
list.  The set type gives the ground truth (and the dealiasing tests)
fast membership checks via per-length indexing, like the BGP table.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..ipv6.prefix import Prefix, network_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..ipv6.addrplane import PrefixMaskTable


@dataclass(frozen=True)
class AliasedRegion:
    """A fully responsive prefix: every contained address answers."""

    prefix: Prefix
    ports: frozenset[int] = frozenset({80})

    def responds(self, addr: int, port: int) -> bool:
        return port in self.ports and self.prefix.contains(addr)

    def __str__(self) -> str:
        ports = ",".join(str(p) for p in sorted(self.ports))
        return f"AliasedRegion({self.prefix}, ports={ports})"


#: Entries kept in the per-/64 decision cache before it is reset.
_CACHE_LIMIT = 1 << 16


@dataclass
class AliasedRegionSet:
    """Indexed collection of aliased regions for fast membership tests.

    Lengths are checked shortest-first, so :meth:`find` returns the
    *shortest* containing region when regions nest (e.g. an aliased /56
    carved around an aliased /96).  The batched lookups
    (:meth:`find_many` / :meth:`responds_many`) additionally cache the
    ≤/64 part of each decision per /64 block: target streams from 6Gen
    are locality-heavy (cluster ranges vary low nybbles), so successive
    addresses usually share a /64 and skip the per-length walk.
    """

    _by_length: dict[int, dict[int, AliasedRegion]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    _lengths: list[int] = field(default_factory=list)
    #: /64 network -> tuple of containing regions with length <= 64
    #: (shortest first); invalidated on every mutation.
    _short_cache: dict[int, tuple[AliasedRegion, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: port (or ``None`` for "any port") -> frozen mask table for the
    #: array scan plane; invalidated on every mutation.
    _frozen_tables: dict = field(default_factory=dict, repr=False, compare=False)
    #: Monotone mutation counter (see ``GroundTruth.world_version``).
    _version: int = field(default=0, repr=False, compare=False)

    @property
    def version(self) -> int:
        return self._version

    def _invalidate(self) -> None:
        self._short_cache.clear()
        self._frozen_tables.clear()
        self._version += 1

    def add(self, region: AliasedRegion) -> None:
        bucket = self._by_length[region.prefix.length]
        if region.prefix.network in bucket:
            raise ValueError(f"duplicate aliased region {region.prefix}")
        bucket[region.prefix.network] = region
        if region.prefix.length not in self._lengths:
            self._lengths.append(region.prefix.length)
            self._lengths.sort()
        self._invalidate()

    def remove(self, region: AliasedRegion) -> None:
        """Delete a region (an aliased prefix going dark under churn).

        Invalidates the per-/64 decision cache and the frozen mask
        tables like :meth:`add` — the two memos that would otherwise
        keep answering for a region that no longer exists.
        """
        bucket = self._by_length.get(region.prefix.length)
        if bucket is None or region.prefix.network not in bucket:
            raise KeyError(f"no aliased region {region.prefix}")
        del bucket[region.prefix.network]
        if not bucket:
            del self._by_length[region.prefix.length]
            self._lengths.remove(region.prefix.length)
        self._invalidate()

    def add_prefix(self, prefix: Prefix, ports: Iterable[int] = (80,)) -> AliasedRegion:
        region = AliasedRegion(prefix, frozenset(ports))
        self.add(region)
        return region

    def find(self, addr: int) -> AliasedRegion | None:
        """The (shortest-prefix) aliased region containing the address."""
        value = int(addr)
        for length in self._lengths:
            network = value & network_mask(length)
            region = self._by_length[length].get(network)
            if region is not None:
                return region
        return None

    def responds(self, addr: int, port: int) -> bool:
        value = int(addr)
        for length in self._lengths:
            network = value & network_mask(length)
            region = self._by_length[length].get(network)
            if region is not None and port in region.ports:
                return True
        return False

    # -- batched lookups ----------------------------------------------------
    def _short_regions(self, value: int) -> tuple[AliasedRegion, ...]:
        """All ≤/64 regions containing ``value``, cached per /64 block."""
        key = value >> 64
        cached = self._short_cache.get(key)
        if cached is None:
            found = []
            for length in self._lengths:
                if length > 64:
                    break
                region = self._by_length[length].get(value & network_mask(length))
                if region is not None:
                    found.append(region)
            if len(self._short_cache) >= _CACHE_LIMIT:
                self._short_cache.clear()
            cached = tuple(found)
            self._short_cache[key] = cached
        return cached

    def _long_index(self) -> list[tuple[int, dict[int, AliasedRegion]]]:
        return [
            (network_mask(length), self._by_length[length])
            for length in self._lengths
            if length > 64
        ]

    def find_many(self, addrs: Iterable[int]) -> list[AliasedRegion | None]:
        """Batched :meth:`find` (same shortest-prefix contract)."""
        addrs = [int(a) for a in addrs]
        if not self._lengths:
            return [None] * len(addrs)
        long_index = self._long_index()
        out: list[AliasedRegion | None] = []
        for value in addrs:
            shorts = self._short_regions(value)
            if shorts:
                out.append(shorts[0])
                continue
            found = None
            for mask, bucket in long_index:
                found = bucket.get(value & mask)
                if found is not None:
                    break
            out.append(found)
        return out

    def responds_many(self, addrs: Iterable[int], port: int) -> list[bool]:
        """Batched :meth:`responds` for the chunked scan path."""
        addrs = [int(a) for a in addrs]
        if not self._lengths:
            return [False] * len(addrs)
        long_index = self._long_index()
        out = []
        for value in addrs:
            hit = any(port in r.ports for r in self._short_regions(value))
            if not hit:
                for mask, bucket in long_index:
                    region = bucket.get(value & mask)
                    if region is not None and port in region.ports:
                        hit = True
                        break
            out.append(hit)
        return out

    # -- array plane --------------------------------------------------------
    def frozen_table(self, port: int | None = None) -> "PrefixMaskTable | None":
        """Regions answering ``port`` as a frozen mask table.

        ``port=None`` means "any port" (the ICMPv6 / :meth:`find`
        contract: a region matches regardless of its port set).  Tables
        are memoised per port until the next :meth:`add`; ``None`` is
        returned when no region qualifies.
        """
        key = None if port is None else int(port)
        if key in self._frozen_tables:
            return self._frozen_tables[key]
        networks: dict[int, list[int]] = {}
        for length in self._lengths:
            matching = [
                network
                for network, region in self._by_length[length].items()
                if key is None or key in region.ports
            ]
            if matching:
                networks[length] = matching
        if networks:
            from ..ipv6.addrplane import PrefixMaskTable

            table = PrefixMaskTable.from_networks(networks)
        else:
            table = None
        self._frozen_tables[key] = table
        return table

    def responds_arr(
        self, hi: "np.ndarray", lo: "np.ndarray", port: int
    ) -> "np.ndarray":
        """Array-native :meth:`responds_many` over hi/lo uint64 columns."""
        table = self.frozen_table(port)
        if table is None:
            import numpy as np

            return np.zeros(len(hi), dtype=bool)
        return table.match_any(hi, lo)

    def contains_arr(self, hi: "np.ndarray", lo: "np.ndarray") -> "np.ndarray":
        """True where *any* region (any port) contains the address."""
        table = self.frozen_table(None)
        if table is None:
            import numpy as np

            return np.zeros(len(hi), dtype=bool)
        return table.match_any(hi, lo)

    def __iter__(self) -> Iterator[AliasedRegion]:
        for length in self._lengths:
            yield from self._by_length[length].values()

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_length.values())

    def __bool__(self) -> bool:
        return len(self) > 0
