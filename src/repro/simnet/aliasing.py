"""Aliased-region model (paper §6.2).

The paper's key measurement finding: in several large networks *every*
address of an enormous prefix answers TCP/80 probes — e.g. a fully
responsive Akamai /56 — so responsive addresses stop corresponding to
distinct hosts.  An :class:`AliasedRegion` models one such prefix: all
of its addresses respond on the configured ports regardless of any host
list.  The set type gives the ground truth (and the dealiasing tests)
fast membership checks via per-length indexing, like the BGP table.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..ipv6.prefix import Prefix, network_mask


@dataclass(frozen=True)
class AliasedRegion:
    """A fully responsive prefix: every contained address answers."""

    prefix: Prefix
    ports: frozenset[int] = frozenset({80})

    def responds(self, addr: int, port: int) -> bool:
        return port in self.ports and self.prefix.contains(addr)

    def __str__(self) -> str:
        ports = ",".join(str(p) for p in sorted(self.ports))
        return f"AliasedRegion({self.prefix}, ports={ports})"


@dataclass
class AliasedRegionSet:
    """Indexed collection of aliased regions for fast membership tests."""

    _by_length: dict[int, dict[int, AliasedRegion]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    _lengths: list[int] = field(default_factory=list)

    def add(self, region: AliasedRegion) -> None:
        bucket = self._by_length[region.prefix.length]
        if region.prefix.network in bucket:
            raise ValueError(f"duplicate aliased region {region.prefix}")
        bucket[region.prefix.network] = region
        if region.prefix.length not in self._lengths:
            self._lengths.append(region.prefix.length)
            self._lengths.sort()

    def add_prefix(self, prefix: Prefix, ports: Iterable[int] = (80,)) -> AliasedRegion:
        region = AliasedRegion(prefix, frozenset(ports))
        self.add(region)
        return region

    def find(self, addr: int) -> AliasedRegion | None:
        """The (shortest-prefix) aliased region containing the address."""
        value = int(addr)
        for length in self._lengths:
            network = value & network_mask(length)
            region = self._by_length[length].get(network)
            if region is not None:
                return region
        return None

    def responds(self, addr: int, port: int) -> bool:
        value = int(addr)
        for length in self._lengths:
            network = value & network_mask(length)
            region = self._by_length[length].get(network)
            if region is not None and port in region.ports:
                return True
        return False

    def __iter__(self) -> Iterator[AliasedRegion]:
        for length in self._lengths:
            yield from self._by_length[length].values()

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_length.values())

    def __bool__(self) -> bool:
        return len(self) > 0
