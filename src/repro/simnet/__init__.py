"""Simulated IPv6 Internet: the measurement substrate for every experiment.

Replaces the live Internet + RouteViews + Rapid7 FDNS data the paper
used (see DESIGN.md's substitution table): ASes, routed prefixes,
allocation policies, aliased regions, ground-truth responsiveness, and
a fabricated DNS seed snapshot.
"""

from .aliasing import AliasedRegion, AliasedRegionSet
from .allocation import (
    POLICY_CLASSES,
    AllocationPolicy,
    EUI64Policy,
    HexWordPolicy,
    IPv4EmbeddedPolicy,
    LowBytePolicy,
    PortEmbedPolicy,
    PrivacyRandomPolicy,
    SequentialPolicy,
    allocate_subnets,
    make_policy,
)
from .asn import WELL_KNOWN_ASES, AsRegistry, AutonomousSystem
from .bgp import BgpTable, Route, group_by_asn, group_by_routed_prefix
from .dns import DnsRecord, SeedCollection, collect_seeds, seeds_of_type
from .validate import Problem, validate_specs
from .worldfile import WorldFileError, load_world, save_internet, save_world
from .ground_truth import (
    ICMPV6,
    BuiltNetwork,
    GroundTruth,
    NetworkSpec,
    SimInternet,
    assemble_internet,
    build_network,
    default_internet,
)
from .dynamics import (
    ChurnConfig,
    ChurnModel,
    DynamicWorld,
    world_at,
)

__all__ = [
    "AliasedRegion",
    "AliasedRegionSet",
    "AllocationPolicy",
    "AsRegistry",
    "AutonomousSystem",
    "BgpTable",
    "BuiltNetwork",
    "ChurnConfig",
    "ChurnModel",
    "DnsRecord",
    "DynamicWorld",
    "EUI64Policy",
    "GroundTruth",
    "ICMPV6",
    "HexWordPolicy",
    "IPv4EmbeddedPolicy",
    "LowBytePolicy",
    "NetworkSpec",
    "POLICY_CLASSES",
    "PortEmbedPolicy",
    "PrivacyRandomPolicy",
    "Route",
    "SeedCollection",
    "SequentialPolicy",
    "SimInternet",
    "WELL_KNOWN_ASES",
    "allocate_subnets",
    "assemble_internet",
    "build_network",
    "Problem",
    "WorldFileError",
    "collect_seeds",
    "default_internet",
    "load_world",
    "save_internet",
    "save_world",
    "group_by_asn",
    "group_by_routed_prefix",
    "make_policy",
    "seeds_of_type",
    "validate_specs",
    "world_at",
]
