"""BGP routing-table substrate: routed prefixes and longest-prefix match.

Stands in for the CAIDA RouteViews prefix-to-AS mapping the paper uses
to group seeds "by BGP origin routed prefix" (§6.1).  Lookups are
longest-prefix match over a per-length hash index, so a full-table
lookup costs one dictionary probe per distinct prefix length present.

The paper notes (§4.2) that some routed prefixes are longer than
64 bits despite RFC 4291; the table imposes no such limit.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..ipv6.prefix import Prefix, network_mask


@dataclass(frozen=True)
class Route:
    """One routing-table entry: a routed prefix originated by an AS."""

    prefix: Prefix
    asn: int

    def __str__(self) -> str:
        return f"{self.prefix} -> AS{self.asn}"


class BgpTable:
    """Longest-prefix-match table from prefixes to origin ASNs."""

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        # _index[length][network_int] = Route
        self._index: dict[int, dict[int, Route]] = defaultdict(dict)
        self._lengths: list[int] = []  # descending, maintained on insert
        self._count = 0
        for route in routes:
            self.add(route)

    def add(self, route: Route) -> None:
        """Insert a route; replacing an existing identical prefix is an error."""
        bucket = self._index[route.prefix.length]
        if route.prefix.network in bucket:
            raise ValueError(f"duplicate route for {route.prefix}")
        bucket[route.prefix.network] = route
        self._count += 1
        if route.prefix.length not in self._lengths:
            self._lengths.append(route.prefix.length)
            self._lengths.sort(reverse=True)

    def add_route(self, prefix: Prefix, asn: int) -> Route:
        route = Route(prefix, asn)
        self.add(route)
        return route

    def lookup(self, addr: int) -> Route | None:
        """Longest-prefix match for an address, or ``None`` if unrouted."""
        value = int(addr)
        for length in self._lengths:
            network = value & network_mask(length)
            route = self._index[length].get(network)
            if route is not None:
                return route
        return None

    def origin_asn(self, addr: int) -> int | None:
        route = self.lookup(addr)
        return route.asn if route else None

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Route]:
        for length in self._lengths:
            yield from self._index[length].values()

    def routes(self) -> list[Route]:
        return sorted(self, key=lambda r: (r.prefix.network, r.prefix.length))

    def asns(self) -> set[int]:
        return {route.asn for route in self}


def group_by_routed_prefix(
    addrs: Sequence[int] | Iterable[int], table: BgpTable
) -> dict[Prefix, list[int]]:
    """Group addresses by their routed prefix (paper §6.1 grouping).

    Addresses that match no route are dropped, mirroring the paper's
    restriction to seeds inside routed space.
    """
    groups: dict[Prefix, list[int]] = defaultdict(list)
    for addr in addrs:
        route = table.lookup(int(addr))
        if route is not None:
            groups[route.prefix].append(int(addr))
    return dict(groups)


def group_by_asn(
    addrs: Sequence[int] | Iterable[int], table: BgpTable
) -> dict[int, list[int]]:
    """Group addresses by origin AS (used for Table 1 / Figure 3)."""
    groups: dict[int, list[int]] = defaultdict(list)
    for addr in addrs:
        asn = table.origin_asn(int(addr))
        if asn is not None:
            groups[asn].append(int(addr))
    return dict(groups)
