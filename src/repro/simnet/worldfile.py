"""World-file serialization: save and reload simulated Internets.

A *world file* is a JSON document capturing everything needed to
recreate a :class:`~repro.simnet.ground_truth.SimInternet` exactly:
the network specs, the RNG seed, and the service-port rates.  Because
the builder is deterministic, storing the recipe (not the realised
hosts) keeps files small while guaranteeing bit-identical worlds —
the property the CLI relies on when `scan` and `dealias` run as
separate processes.

Format (version 1)::

    {
      "format": "repro-world",
      "version": 1,
      "rng_seed": 42,
      "port_rates": {"443": 0.6, "25": 0.12, "22": 0.3},
      "specs": [ {NetworkSpec fields...}, ... ]
    }
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..ipv6.prefix import Prefix
from .asn import AsRegistry
from .ground_truth import (
    DEFAULT_PORT_RATES,
    NetworkSpec,
    SimInternet,
    assemble_internet,
)

FORMAT_NAME = "repro-world"
FORMAT_VERSION = 1


class WorldFileError(ValueError):
    """Raised for malformed or unsupported world files."""


def spec_to_dict(spec: NetworkSpec) -> dict[str, Any]:
    """JSON-serialisable form of one network spec."""
    return {
        "asn": spec.asn,
        "routed_prefix": str(spec.routed_prefix),
        "policy_name": spec.policy_name,
        "policy_kwargs": dict(spec.policy_kwargs),
        "host_count": spec.host_count,
        "subnet_count": spec.subnet_count,
        "subnet_length": spec.subnet_length,
        "sequential_subnets": spec.sequential_subnets,
        "aliased_lengths": list(spec.aliased_lengths),
        "aliased_seed_count": spec.aliased_seed_count,
        "seed_rate": spec.seed_rate,
        "churn_rate": spec.churn_rate,
        "ns_rate": spec.ns_rate,
    }


def spec_from_dict(data: dict[str, Any]) -> NetworkSpec:
    """Rebuild a network spec from its JSON form."""
    try:
        return NetworkSpec(
            asn=int(data["asn"]),
            routed_prefix=Prefix.parse(data["routed_prefix"]),
            policy_name=data.get("policy_name", "low-byte"),
            policy_kwargs=dict(data.get("policy_kwargs", {})),
            host_count=int(data.get("host_count", 100)),
            subnet_count=int(data.get("subnet_count", 4)),
            subnet_length=int(data.get("subnet_length", 64)),
            sequential_subnets=bool(data.get("sequential_subnets", True)),
            aliased_lengths=tuple(int(x) for x in data.get("aliased_lengths", ())),
            aliased_seed_count=int(data.get("aliased_seed_count", 0)),
            seed_rate=float(data.get("seed_rate", 0.3)),
            churn_rate=float(data.get("churn_rate", 0.05)),
            ns_rate=float(data.get("ns_rate", 0.02)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorldFileError(f"invalid network spec: {exc}") from exc


def save_world(
    path: str | os.PathLike,
    specs: list[NetworkSpec],
    *,
    rng_seed: int = 42,
    port_rates: dict[int, float] | None = None,
) -> None:
    """Write a world file describing the given network specs."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "rng_seed": rng_seed,
        "port_rates": {
            str(port): rate
            for port, rate in (port_rates or DEFAULT_PORT_RATES).items()
        },
        "specs": [spec_to_dict(spec) for spec in specs],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def save_internet(path: str | os.PathLike, internet: SimInternet) -> None:
    """Write a world file that reproduces an assembled internet."""
    save_world(
        path,
        [network.spec for network in internet.networks],
        rng_seed=internet.rng_seed,
        port_rates=internet.port_rates or None,
    )


def load_world(path: str | os.PathLike) -> SimInternet:
    """Rebuild a simulated Internet from a world file.

    The build is deterministic: loading the same file always yields the
    identical ground truth.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise WorldFileError(f"not a JSON world file: {exc}") from exc
    if document.get("format") != FORMAT_NAME:
        raise WorldFileError(f"not a {FORMAT_NAME} file: {path}")
    if document.get("version") != FORMAT_VERSION:
        raise WorldFileError(
            f"unsupported world-file version: {document.get('version')}"
        )
    specs = [spec_from_dict(d) for d in document.get("specs", [])]
    if not specs:
        raise WorldFileError("world file contains no network specs")
    from .validate import errors, validate_specs

    bad = errors(validate_specs(specs))
    if bad:
        raise WorldFileError(
            "world file failed validation: " + "; ".join(str(p) for p in bad)
        )
    port_rates = {
        int(port): float(rate)
        for port, rate in document.get("port_rates", {}).items()
    }
    return assemble_internet(
        specs,
        AsRegistry.with_well_known(),
        rng_seed=int(document.get("rng_seed", 42)),
        extra_ports=port_rates or None,
    )
