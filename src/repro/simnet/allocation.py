"""Address-allocation policies for the simulated Internet.

Each policy fabricates active host addresses inside a subnet, following
one of the practices documented in RFC 7707 and measured by Czyz et al.
(paper §3.2): low-byte assignment, sequential DHCPv6 leases, SLAAC
EUI-64 identifiers, privacy-extension random identifiers, embedded
service ports, embedded IPv4 addresses, and human-readable hex words.

Discoverability varies by design: low-byte and sequential hosts are
easy for any density-driven TGA; EUI-64 hosts share a vendor OUI but
spread across 2**24 values; privacy-random hosts are essentially
undiscoverable — together they produce the hit-rate diversity the
paper observes across networks.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Sequence

from ..ipv6.patterns import COMMON_PORTS, HEX_WORDS, eui64_iid_from_mac
from ..ipv6.prefix import Prefix


class AllocationPolicy(abc.ABC):
    """Fabricates active addresses within a subnet."""

    #: Short machine-readable policy name (used in specs and reports).
    name: str = "abstract"

    @abc.abstractmethod
    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        """Up to ``count`` distinct addresses inside ``subnet``."""

    @staticmethod
    def _fit(subnet: Prefix, iid: int) -> int:
        """Clamp an interface identifier into the subnet's host bits."""
        host_bits = 128 - subnet.length
        return subnet.network | (iid & ((1 << host_bits) - 1))


@dataclass
class LowBytePolicy(AllocationPolicy):
    """Hosts at ``::1, ::2, …`` — non-zero only in the low byte(s).

    ``sequential`` packs hosts densely from ``start``; otherwise values
    are drawn at random from the low ``bits`` bits.
    """

    bits: int = 8
    start: int = 1
    sequential: bool = True
    name: str = "low-byte"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        space = 1 << self.bits
        count = min(count, space - self.start)
        if self.sequential:
            iids = range(self.start, self.start + count)
            return {self._fit(subnet, iid) for iid in iids}
        chosen: set[int] = set()
        while len(chosen) < count:
            chosen.add(self._fit(subnet, rng.randrange(self.start, space)))
        return chosen


@dataclass
class SequentialPolicy(AllocationPolicy):
    """DHCPv6-style sequential leases from a pool base (e.g. ``::1000``)."""

    pool_base: int = 0x1000
    stride: int = 1
    name: str = "dhcpv6-sequential"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        return {
            self._fit(subnet, self.pool_base + i * self.stride) for i in range(count)
        }


@dataclass
class EUI64Policy(AllocationPolicy):
    """SLAAC addresses derived from MACs sharing a vendor OUI.

    The 24-bit NIC-specific half is random, so hosts scatter across a
    2**24 space — visible structure (the OUI and ``ff:fe`` filler) but
    poor probe-ability, as the paper's related work discusses.
    """

    oui: int = 0x00163E
    name: str = "slaac-eui64"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        chosen: set[int] = set()
        while len(chosen) < min(count, 1 << 24):
            mac = (self.oui << 24) | rng.getrandbits(24)
            chosen.add(self._fit(subnet, eui64_iid_from_mac(mac)))
        return chosen


@dataclass
class PrivacyRandomPolicy(AllocationPolicy):
    """RFC 4941 privacy extensions: uniform-random 64-bit identifiers."""

    name: str = "privacy-random"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        host_bits = 128 - subnet.length
        chosen: set[int] = set()
        while len(chosen) < count:
            chosen.add(self._fit(subnet, rng.getrandbits(min(host_bits, 64))))
        return chosen


@dataclass
class PortEmbedPolicy(AllocationPolicy):
    """One host per embedded service port (``::80``, ``::443``, …)."""

    ports: Sequence[int] = COMMON_PORTS
    name: str = "port-embed"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        iids = [int(format(p, "d"), 16) for p in self.ports[:count]]
        return {self._fit(subnet, iid) for iid in iids}


@dataclass
class HexWordPolicy(AllocationPolicy):
    """Human-readable identifiers: ``::dead:beef:0:N`` and friends."""

    words: Sequence[str] = HEX_WORDS[:4]
    name: str = "hex-word"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        chosen: set[int] = set()
        per_word = max(1, count // max(1, len(self.words)))
        for word in self.words:
            word_value = int(word, 16)
            for i in range(per_word):
                if len(chosen) >= count:
                    break
                iid = (word_value << 32) | i
                chosen.add(self._fit(subnet, iid))
        return chosen


@dataclass
class IPv4EmbeddedPolicy(AllocationPolicy):
    """Dual-stack hosts embedding their IPv4 address in the low 32 bits."""

    v4_base: int = (10 << 24) | (0 << 16) | (0 << 8) | 1  # 10.0.0.1
    name: str = "ipv4-embed"

    def allocate(self, subnet: Prefix, count: int, rng: random.Random) -> set[int]:
        return {self._fit(subnet, self.v4_base + i) for i in range(count)}


#: Policy classes by name, for spec-driven construction.
POLICY_CLASSES = {
    cls.name: cls
    for cls in (
        LowBytePolicy,
        SequentialPolicy,
        EUI64Policy,
        PrivacyRandomPolicy,
        PortEmbedPolicy,
        HexWordPolicy,
        IPv4EmbeddedPolicy,
    )
}


def make_policy(name: str, **kwargs) -> AllocationPolicy:
    """Instantiate a policy by its registered name."""
    try:
        cls = POLICY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICY_CLASSES)}"
        ) from None
    return cls(**kwargs)


def allocate_subnets(
    routed_prefix: Prefix,
    policy: AllocationPolicy,
    host_count: int,
    subnet_count: int,
    rng: random.Random,
    *,
    subnet_length: int = 64,
    sequential_subnets: bool = True,
) -> set[int]:
    """Spread ``host_count`` hosts across subnets of a routed prefix.

    Subnet identifiers are either the first ``subnet_count`` values
    (sequential, the common operational layout) or sparse random picks;
    hosts are split evenly across the chosen subnets.
    """
    if subnet_length < routed_prefix.length:
        raise ValueError(
            f"subnet length {subnet_length} shorter than routed prefix "
            f"{routed_prefix.length}"
        )
    subnet_bits = subnet_length - routed_prefix.length
    max_subnets = 1 << min(subnet_bits, 24)
    subnet_count = max(1, min(subnet_count, max_subnets))
    if sequential_subnets:
        subnet_ids = range(subnet_count)
    else:
        subnet_ids = rng.sample(range(max_subnets), subnet_count)
    hosts: set[int] = set()
    per_subnet = max(1, host_count // subnet_count)
    shift = 128 - subnet_length
    for sid in subnet_ids:
        subnet = Prefix(routed_prefix.network | (sid << shift), subnet_length)
        hosts.update(policy.allocate(subnet, per_subnet, rng))
        if len(hosts) >= host_count:
            break
    return hosts
