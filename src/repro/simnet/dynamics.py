"""Time dimension for the simulated Internet: deterministic churn.

The hitlist literature (Gasser et al. 2016, 2018) shows that a target
list's value lies in how it is *maintained*: addresses rotate, DHCP
pools cycle, hosts come and go, prefixes change hands, aliased regions
appear and disappear.  This module gives :class:`~repro.simnet.
ground_truth.SimInternet` that time axis as a deterministic epoch
clock:

* :class:`ChurnModel` — the event processes, every draw a PRF of
  ``(churn_seed, network, host, epoch)``, never sequential RNG state;
* :class:`DynamicWorld` — wraps an assembled internet and mutates it in
  place via :meth:`DynamicWorld.advance_to`, routing every change
  through the ground truth's ``add_host`` / ``remove_host`` and the
  aliased set's ``add`` / ``remove`` cache-invalidation hooks.

Determinism contract: the state at epoch ``E`` is a pure function of
``(worldfile, churn_seed, E)``.  Epoch 0 is the pristine build; a step
from epoch ``e-1`` to ``e`` is a pure function of the epoch-``e-1``
state and ``e``; and :meth:`advance_to` always replays steps from the
last cached epoch (or from 0 on rewind), so *any* path of calls —
``advance_to(5)`` directly, ``1, 2, …, 5`` stepwise, or ``7`` then back
to ``5`` — lands on the bit-identical world.  Two independent processes
loading the same world file therefore agree on every
``all_active_hosts`` column and every scan verdict at any epoch.

Event processes (all rates are per epoch; an epoch nominally models one
day):

* **privacy rotation** — hosts in ``privacy-random`` networks draw a
  new interface identifier with probability ``1 - 0.5**(1/half_life)``;
* **DHCP pool cycling** — ``dhcpv6-sequential`` networks shift every
  lease by ``dhcp_pool_shift`` each ``dhcp_cycle_epochs``;
* **join/leave** — hosts leave (and new hosts join, with
  policy-appropriate addresses) at base rates scaled by a
  per-allocation-policy turnover factor;
* **prefix reallocation** — with small probability a routed prefix
  changes hands: its host population is rebuilt wholesale from the
  spec under a generation-keyed RNG;
* **alias flips** — each aliased region (plus one latent region per
  aliased network, absent at epoch 0) toggles between present and
  dark.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..ipv6.prefix import Prefix, network_mask
from ..telemetry.spans import Telemetry, ensure
from .aliasing import AliasedRegion
from .ground_truth import BuiltNetwork, NetworkSpec, SimInternet, build_network

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

_M64 = (1 << 64) - 1
_TWO64 = float(1 << 64)


def mix64(x: int) -> int:
    """The splitmix64 finaliser (same function as the scan stack's).

    Defined locally rather than imported from
    :mod:`repro.scanner.schedule` — the scanner imports this package's
    BGP table, so importing back would be circular.
    """
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)

# Domain-separation salts: each churn question gets its own constant so
# e.g. "does this host leave" and "does this host rotate" are
# independent draws (mirrors repro.faults.models).
_SALT_LEAVE = 0x9E3779B97F4A7C15
_SALT_JOIN = 0xC2B2AE3D27D4EB4F
_SALT_JOIN_ID = 0x165667B19E3779F9
_SALT_JOIN_SUBNET = 0x27D4EB2F165667C5
_SALT_ROTATE = 0x85EBCA77C2B2AE63
_SALT_ROTATE_IID = 0xFF51AFD7ED558CCD
_SALT_REALLOC = 0xC4CEB9FE1A85EC53
_SALT_REBUILD = 0x2545F4914F6CDD1D
_SALT_ALIAS = 0x9D8A7B6C5D4E3F21
_SALT_PORT = 0x6C62272E07BB0142


def _prf_bits(seed: int, salt: int, *parts: int) -> int:
    """64-bit PRF of a seed, a salt, and integer parts (128-bit safe)."""
    h = mix64((seed ^ salt) & _M64)
    for part in parts:
        part = int(part)
        h = mix64(h ^ (part & _M64))
        high = part >> 64
        if high:
            h = mix64(h ^ (high & _M64))
    return h


def _prf_unit(seed: int, salt: int, *parts: int) -> float:
    """Uniform-in-[0, 1) PRF over the same key material."""
    return _prf_bits(seed, salt, *parts) / _TWO64


#: Per-allocation-policy turnover multipliers applied to the base
#: join/leave rates: statically addressed server farms are stable,
#: leased pools cycle tenants, client networks are the most transient.
DEFAULT_POLICY_TURNOVER: dict[str, float] = {
    "low-byte": 0.5,
    "dhcpv6-sequential": 1.5,
    "slaac-eui64": 1.0,
    "privacy-random": 2.0,
    "port-embed": 0.5,
    "hex-word": 0.5,
    "ipv4-embed": 0.5,
}


@dataclass(frozen=True)
class ChurnConfig:
    """Rates for the churn event processes (all per epoch ≈ per day)."""

    #: Epochs until half of a privacy network's hosts have rotated
    #: their interface identifier (<= 0 disables rotation).
    privacy_half_life: float = 2.0
    #: DHCP networks re-lease their pool every this many epochs
    #: (0 disables cycling).
    dhcp_cycle_epochs: int = 4
    #: Low-bits offset applied to every lease at a pool cycle.
    dhcp_pool_shift: int = 0x200
    #: Base per-host probability of leaving per epoch.
    leave_rate: float = 0.02
    #: Base joins per epoch, as a fraction of the spec's host count.
    join_rate: float = 0.02
    #: Per-network probability of prefix reallocation per epoch.
    realloc_rate: float = 0.004
    #: Per-region probability of toggling present/dark per epoch.
    alias_flip_rate: float = 0.02
    #: Policy-name -> multiplier on the join/leave base rates.
    policy_turnover: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_POLICY_TURNOVER)
    )

    def turnover(self, policy_name: str) -> float:
        return self.policy_turnover.get(policy_name, 1.0)

    @property
    def rotation_probability(self) -> float:
        if self.privacy_half_life <= 0:
            return 0.0
        return 1.0 - 0.5 ** (1.0 / self.privacy_half_life)


def _latent_region(spec: NetworkSpec) -> AliasedRegion | None:
    """One extra aliased region per aliased network, dark at epoch 0.

    Placed by the same high-end scheme as
    :func:`~repro.simnet.ground_truth.build_network`, at the next free
    region index of the spec's first aliased length, so a latent region
    that flips on never collides with a built one.
    """
    if not spec.aliased_lengths:
        return None
    length = spec.aliased_lengths[0]
    region_bits = min(length - spec.routed_prefix.length, 24)
    index = sum(1 for have in spec.aliased_lengths if have == length)
    if index >= (1 << region_bits):
        return None
    region_id = (1 << region_bits) - 1 - index
    network = spec.routed_prefix.network | (region_id << (128 - length))
    return AliasedRegion(Prefix.containing(network, length), frozenset({80, 443}))


@dataclass(frozen=True)
class _BaseNetwork:
    """Immutable epoch-0 snapshot of one network (the walk's origin)."""

    spec: NetworkSpec
    hosts: tuple[int, ...]
    regions: tuple[AliasedRegion, ...]
    latent: AliasedRegion | None
    subnets: tuple[int, ...]

    @property
    def all_regions(self) -> tuple[AliasedRegion, ...]:
        if self.latent is None:
            return self.regions
        return self.regions + (self.latent,)

    @classmethod
    def snapshot(cls, network: BuiltNetwork) -> "_BaseNetwork":
        spec = network.spec
        hosts = tuple(sorted(network.active_hosts))
        mask = network_mask(spec.subnet_length)
        subnets = tuple(sorted({addr & mask for addr in hosts}))
        return cls(
            spec=spec,
            hosts=hosts,
            regions=tuple(network.aliased_regions),
            latent=_latent_region(spec),
            subnets=subnets,
        )


@dataclass
class NetworkEpochState:
    """One network's churned state at some epoch (walk cursor)."""

    epoch: int
    generation: int
    #: stable host identity -> current address.  Identities are the
    #: original address for epoch-0 hosts and a PRF id for joiners, so
    #: rotation/cycling move a host without forgetting who it is.
    hosts: dict[int, int]
    #: presence flag per entry of ``base.all_regions``.
    present: list[bool]

    def addresses(self) -> set[int]:
        return set(self.hosts.values())

    def copy(self) -> "NetworkEpochState":
        return NetworkEpochState(
            epoch=self.epoch,
            generation=self.generation,
            hosts=dict(self.hosts),
            present=list(self.present),
        )


class ChurnModel:
    """The churn event processes as pure functions of the epoch.

    Every Bernoulli draw is a PRF of ``(seed, salt, network, host,
    epoch, …)`` — no sequential RNG state — so a walk replayed from any
    starting point produces the identical trajectory.
    """

    def __init__(self, seed: int, config: ChurnConfig | None = None):
        self.seed = int(seed)
        self.config = config or ChurnConfig()

    # -- one epoch step (pure in (state, e)) ---------------------------

    def step(self, index: int, base: _BaseNetwork, state: NetworkEpochState) -> None:
        """Advance one network's state from epoch ``e-1`` to ``e`` in place."""
        cfg = self.config
        spec = base.spec
        e = state.epoch + 1
        seed = self.seed
        sub_mask = network_mask(spec.subnet_length)
        host_mask = (1 << (128 - spec.subnet_length)) - 1

        if cfg.realloc_rate and _prf_unit(seed, _SALT_REALLOC, index, e) < cfg.realloc_rate:
            # The prefix changed hands: a new tenant's population is
            # rebuilt wholesale from the spec under a generation-keyed
            # RNG (deterministic, independent of the walk path).
            state.generation += 1
            rng = random.Random(
                _prf_bits(seed, _SALT_REBUILD, index, state.generation)
            )
            rebuilt = build_network(spec, rng)
            state.hosts = {addr: addr for addr in sorted(rebuilt.active_hosts)}
        else:
            turnover = cfg.turnover(spec.policy_name)
            gen = state.generation
            leave_rate = cfg.leave_rate * turnover
            if leave_rate:
                state.hosts = {
                    hid: addr
                    for hid, addr in state.hosts.items()
                    if _prf_unit(seed, _SALT_LEAVE, index, gen, hid, e) >= leave_rate
                }
            join_rate = cfg.join_rate * turnover
            if join_rate and base.subnets:
                expected = join_rate * spec.host_count
                count = int(expected)
                if _prf_unit(seed, _SALT_JOIN, index, gen, e) < expected - count:
                    count += 1
                for j in range(count):
                    hid = _prf_bits(seed, _SALT_JOIN_ID, index, gen, e, j)
                    pick = _prf_bits(seed, _SALT_JOIN_SUBNET, index, gen, e, j)
                    subnet = base.subnets[pick % len(base.subnets)]
                    state.hosts[hid] = subnet | self._join_iid(spec, hid, host_mask)
            if spec.policy_name == "privacy-random":
                p_rotate = cfg.rotation_probability
                if p_rotate:
                    for hid in list(state.hosts):
                        if _prf_unit(seed, _SALT_ROTATE, index, gen, hid, e) < p_rotate:
                            iid = _prf_bits(
                                seed, _SALT_ROTATE_IID, index, gen, hid, e
                            ) & host_mask
                            state.hosts[hid] = (state.hosts[hid] & sub_mask) | iid
            if (
                spec.policy_name == "dhcpv6-sequential"
                and cfg.dhcp_cycle_epochs
                and e % cfg.dhcp_cycle_epochs == 0
            ):
                shift = cfg.dhcp_pool_shift
                state.hosts = {
                    hid: (addr & sub_mask) | ((addr + shift) & host_mask)
                    for hid, addr in state.hosts.items()
                }

        if cfg.alias_flip_rate:
            for j in range(len(state.present)):
                if _prf_unit(seed, _SALT_ALIAS, index, j, e) < cfg.alias_flip_rate:
                    state.present[j] = not state.present[j]
        state.epoch = e

    def network_state(
        self,
        index: int,
        base: _BaseNetwork,
        epoch: int,
        resume: NetworkEpochState | None = None,
    ) -> NetworkEpochState:
        """The network's state at ``epoch``, replayed deterministically.

        ``resume`` (a state at an epoch <= the target) is a pure
        optimisation: the walk continues from it instead of epoch 0
        and lands on the identical state.
        """
        if resume is not None and resume.epoch <= epoch:
            state = resume.copy()
        else:
            state = NetworkEpochState(
                epoch=0,
                generation=0,
                hosts={addr: addr for addr in base.hosts},
                present=[True] * len(base.regions)
                + ([False] if base.latent is not None else []),
            )
        while state.epoch < epoch:
            self.step(index, base, state)
        return state

    @staticmethod
    def _join_iid(spec: NetworkSpec, hid: int, host_mask: int) -> int:
        """A policy-plausible interface identifier for a joining host."""
        name = spec.policy_name
        if name == "low-byte":
            bits = int(spec.policy_kwargs.get("bits", 8))
            span = max(1, (1 << bits) - 1)
            return 1 + (hid % span)
        if name == "dhcpv6-sequential":
            pool_base = int(spec.policy_kwargs.get("pool_base", 0x1000))
            span = max(1, 4 * spec.host_count)
            return (pool_base + spec.host_count + (hid % span)) & host_mask
        if name in ("port-embed", "hex-word", "ipv4-embed"):
            return 1 + (hid % 0xFFFF)
        # slaac-eui64 / privacy-random / unknown: opaque identifier.
        return hid & host_mask


class DynamicWorld:
    """A :class:`SimInternet` with a deterministic epoch clock.

    Wrap a *freshly built* internet (its state is adopted as epoch 0)
    and call :meth:`advance_to` to move the clock.  All mutations run
    through the ground truth's ``add_host`` / ``remove_host`` and the
    aliased set's ``add`` / ``remove`` hooks, so every memoised table
    (merged ping targets, frozen host keys, per-/64 alias decisions,
    frozen mask tables, the internet-level active-host union)
    invalidates, and the truth's ``world_version`` token advances —
    which is what makes stale :class:`~repro.scanner.plane.ScanPlane`
    reuse raise instead of probing an old world.
    """

    def __init__(
        self,
        internet: SimInternet,
        churn_seed: int = 0,
        config: ChurnConfig | None = None,
        *,
        telemetry: Telemetry | None = None,
    ):
        self.internet = internet
        self.model = ChurnModel(churn_seed, config)
        self.epoch = 0
        self.telemetry = telemetry
        self._tele = ensure(telemetry)
        self._base = [
            _BaseNetwork.snapshot(network) for network in internet.networks
        ]
        # Original extra-port membership for every epoch-0 address
        # (hosts with no extra services map to the empty tuple), so a
        # rewind — or a rejoining epoch-0 host — restores the exact
        # build-time service mix instead of drawing a fresh one.
        self._base_ports: dict[int, tuple[int, ...]] = {
            addr: ()
            for base in self._base
            for addr in base.hosts
        }
        for port in sorted(internet.truth.ports()):
            if port == 80:
                continue
            for addr in internet.truth.hosts(port):
                if addr in self._base_ports:
                    self._base_ports[addr] = self._base_ports[addr] + (port,)
        self._states: dict[int, NetworkEpochState] = {}

    @property
    def churn_seed(self) -> int:
        return self.model.seed

    def _ports_for(self, addr: int) -> tuple[int, ...]:
        """Which ports a (re)appearing host listens on.

        Epoch-0 hosts restore their build-time services; churn-created
        addresses draw theirs from a PRF of the address, so the
        service mix matches the world's ``port_rates`` without any
        order-dependent RNG.
        """
        base = self._base_ports.get(addr)
        if base is not None:
            return (80,) + base
        ports = [80]
        for port, rate in sorted(self.internet.port_rates.items()):
            if _prf_unit(self.model.seed, _SALT_PORT, addr, port) < rate:
                ports.append(port)
        return tuple(ports)

    def advance_to(self, epoch: int) -> "DynamicWorld":
        """Mutate the internet in place to its state at ``epoch``.

        Idempotent per epoch and path-independent: any sequence of
        calls (forward, skipping, or rewinding) lands on the
        bit-identical world for ``(world, churn_seed, epoch)``.
        Advancing to the *current* epoch is a no-op and leaves the
        ``world_version`` token untouched; any actual move bumps it.
        """
        epoch = int(epoch)
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0: {epoch}")
        if epoch == self.epoch:
            return self
        internet = self.internet
        truth = internet.truth
        hosts_added = hosts_removed = 0
        regions_added = regions_removed = 0
        with self._tele.span(
            "epoch_advance", start=self.epoch, epoch=epoch
        ):
            all_ports = sorted(truth.ports())
            for i, network in enumerate(internet.networks):
                base = self._base[i]
                state = self.model.network_state(
                    i, base, epoch, resume=self._states.get(i)
                )
                self._states[i] = state
                target = state.addresses()
                current = network.active_hosts
                for addr in sorted(current - target):
                    for port in all_ports:
                        truth.remove_host(addr, port)
                    hosts_removed += 1
                for addr in sorted(target - current):
                    for port in self._ports_for(addr):
                        truth.add_host(addr, port)
                    hosts_added += 1
                network.active_hosts = target
                want = {
                    region
                    for region, flag in zip(base.all_regions, state.present)
                    if flag
                }
                have = set(network.aliased_regions)
                for region in base.all_regions:
                    if region in have and region not in want:
                        truth.aliased.remove(region)
                        regions_removed += 1
                    elif region in want and region not in have:
                        truth.aliased.add(region)
                        regions_added += 1
                network.aliased_regions = [
                    region for region in base.all_regions if region in want
                ]
            # Bumps the truth's version token even for a no-change
            # epoch move: the clock advanced, and frozen snapshots of
            # the old epoch must not be silently reused.
            internet.invalidate_caches()
            self.epoch = epoch
            if self._tele.enabled:
                self._tele.count("dynamics.hosts_added", hosts_added)
                self._tele.count("dynamics.hosts_removed", hosts_removed)
                self._tele.count("dynamics.regions_added", regions_added)
                self._tele.count("dynamics.regions_removed", regions_removed)
                self._tele.gauge("dynamics.epoch", epoch)
                self._tele.gauge(
                    "dynamics.active_hosts", len(internet.all_active_hosts())
                )
        return self

    def active_host_columns(self) -> "tuple[np.ndarray, np.ndarray]":
        """The live population as sorted packed ``(hi, lo)`` columns.

        The canonical bit-comparable digest of the world's state: two
        processes at the same ``(worldfile, churn_seed, epoch)`` get
        byte-identical arrays.
        """
        from ..ipv6.addrplane import pack

        return pack(sorted(self.internet.all_active_hosts()))


def world_at(
    world: "SimInternet | str | os.PathLike",
    churn_seed: int,
    epoch: int,
    config: ChurnConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
) -> DynamicWorld:
    """The ``(worldfile, churn_seed, epoch)`` triple as one call.

    ``world`` is a world-file path (loaded and rebuilt
    deterministically) or an already-assembled pristine internet.
    """
    if isinstance(world, (str, os.PathLike)):
        from .worldfile import load_world

        world = load_world(world)
    dyn = DynamicWorld(world, churn_seed, config, telemetry=telemetry)
    dyn.advance_to(epoch)
    return dyn
