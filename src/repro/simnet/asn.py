"""Autonomous-system registry for the simulated Internet.

The simulation reuses the AS names and numbers that appear in the
paper's Table 1 (Linode, Amazon, Akamai, Cloudflare, …) as synthetic
stand-ins, so reproduced tables read like the originals.  Additional
filler ASes are generated on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: its number, display name, and simulation role tags."""

    asn: int
    name: str
    #: Free-form tags, e.g. "cdn", "hosting", "isp"; used by the builder.
    tags: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.name})"


#: ASes named in the paper's Table 1, with their real-world numbers.
WELL_KNOWN_ASES = (
    AutonomousSystem(63949, "Linode", ("hosting",)),
    AutonomousSystem(16509, "Amazon", ("cloud", "aliased")),
    AutonomousSystem(14618, "Amazon", ("cloud",)),
    AutonomousSystem(20773, "HostEurope", ("hosting",)),
    AutonomousSystem(3320, "DTAG ISP", ("isp",)),
    AutonomousSystem(12824, "home.pl", ("hosting",)),
    AutonomousSystem(25532, "Masterhost", ("hosting",)),
    AutonomousSystem(6939, "Hurricane", ("transit",)),
    AutonomousSystem(13335, "Cloudflare", ("cdn", "aliased")),
    AutonomousSystem(47490, "TuxBox", ("hosting",)),
    AutonomousSystem(8560, "OneAndOne", ("hosting",)),
    AutonomousSystem(20940, "Akamai", ("cdn", "aliased")),
    AutonomousSystem(209, "CenturyLink", ("isp",)),
    AutonomousSystem(3257, "GTT", ("transit",)),
    AutonomousSystem(54113, "Fastly", ("cdn",)),
    AutonomousSystem(15169, "Google", ("cloud",)),
    AutonomousSystem(2828, "XO Comms", ("isp",)),
    AutonomousSystem(13189, "Lidero", ("hosting",)),
    AutonomousSystem(16276, "OVH", ("hosting",)),
    AutonomousSystem(24940, "Hetzner", ("hosting",)),
    AutonomousSystem(25560, "RH-TEC", ("hosting",)),
    AutonomousSystem(25234, "Globe", ("hosting",)),
    AutonomousSystem(26496, "GoDaddy", ("hosting",)),
    AutonomousSystem(58010, "Uvensys", ("hosting",)),
    AutonomousSystem(14061, "DigitalOcean", ("hosting",)),
    AutonomousSystem(15817, "Mittwald", ("hosting", "aliased")),
)


@dataclass
class AsRegistry:
    """Lookup table of ASes by number."""

    _by_asn: dict[int, AutonomousSystem] = field(default_factory=dict)

    def add(self, as_: AutonomousSystem) -> AutonomousSystem:
        if as_.asn in self._by_asn:
            raise ValueError(f"duplicate ASN: {as_.asn}")
        self._by_asn[as_.asn] = as_
        return as_

    def get(self, asn: int) -> AutonomousSystem | None:
        return self._by_asn.get(asn)

    def name_of(self, asn: int) -> str:
        as_ = self._by_asn.get(asn)
        return as_.name if as_ else f"AS{asn}"

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(self._by_asn.values())

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    @classmethod
    def with_well_known(cls) -> "AsRegistry":
        registry = cls()
        for as_ in WELL_KNOWN_ASES:
            registry.add(as_)
        return registry

    def add_filler(self, count: int, start_asn: int = 200_000) -> list[AutonomousSystem]:
        """Add ``count`` generic ASes with sequential private-range numbers."""
        added = []
        asn = start_asn
        while len(added) < count:
            if asn not in self._by_asn:
                added.append(self.add(AutonomousSystem(asn, f"Network-{asn}", ("generic",))))
            asn += 1
        return added
