"""Ground-truth synthetic IPv6 Internet (the paper's measurement substrate).

Builds a deterministic, configurable model of the responsive IPv6
Internet: ASes originating routed prefixes, per-network allocation
policies placing active hosts, large aliased regions in a few CDN-like
ASes, and a fraction of *retired* hosts (seeds that no longer respond —
the churn discussed in §6.6).

The default build (:func:`default_internet`) reproduces the qualitative
skews the paper measures:

* seeds spread broadly over many hosting/ISP ASes (Table 1a);
* aliasing concentrated in very few ASes, led by an Akamai-like /56
  and Amazon-like /96 regions, plus /112-granularity aliasing at
  Cloudflare/Mittwald that /96 probing cannot see (§6.2);
* non-aliased hits concentrated in hosting providers (Table 1c).

Everything is scaled down from the real Internet (the paper's run used
2.96 M seeds over 10,038 prefixes and a 5.8 B-probe scan) so the full
experiment pipeline executes in minutes; the ``scale`` knob trades
fidelity for runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..ipv6.prefix import Prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..ipv6.addrplane import FrozenKeySet
from .aliasing import AliasedRegion, AliasedRegionSet
from .allocation import allocate_subnets, make_policy
from .asn import AsRegistry, AutonomousSystem
from .bgp import BgpTable, Route


@dataclass
class NetworkSpec:
    """Recipe for one routed network in the simulation."""

    asn: int
    routed_prefix: Prefix
    policy_name: str = "low-byte"
    policy_kwargs: dict = field(default_factory=dict)
    host_count: int = 100
    subnet_count: int = 4
    subnet_length: int = 64
    sequential_subnets: bool = True
    #: Prefix lengths of aliased regions carved from this network
    #: (one region per entry, placed in successive subnets).
    aliased_lengths: tuple[int, ...] = ()
    #: Random in-aliased-region addresses that appear in DNS (CDN
    #: customer hostnames resolve into aliased space).
    aliased_seed_count: int = 0
    #: Probability that an active host appears in the FDNS seed set.
    seed_rate: float = 0.3
    #: Fraction of generated hosts that are retired (seed-visible but
    #: no longer responsive) — models address churn (§6.6).
    churn_rate: float = 0.05
    #: Probability that a seed-visible host also has an NS record.
    ns_rate: float = 0.02


@dataclass
class BuiltNetwork:
    """One realised network: its spec plus the fabricated ground truth."""

    spec: NetworkSpec
    active_hosts: set[int]
    retired_hosts: set[int]
    aliased_regions: list[AliasedRegion]


#: Pseudo-port for ICMPv6 echo probes (the Entropy/IP authors' probe
#: type).  Every active host answers pings regardless of its services.
ICMPV6 = 0


class GroundTruth:
    """Oracle answering "would this probe get a response?".

    An address responds on a port if it is an active host listening on
    that port, or if it falls inside an aliased region for that port.
    The pseudo-port :data:`ICMPV6` (0) models ping: every active host
    responds, as do aliased regions that answer any TCP port.
    """

    def __init__(
        self,
        hosts_by_port: dict[int, set[int]],
        aliased: AliasedRegionSet,
    ):
        self._hosts_by_port = hosts_by_port
        self.aliased = aliased
        self._all_hosts: set[int] | None = None
        self._frozen_hosts: "dict[int, FrozenKeySet]" = {}
        self._version = 0

    @property
    def world_version(self) -> tuple[int, int]:
        """A monotone token identifying this truth's mutation state.

        Bumped by every host mutation (:meth:`add_host` /
        :meth:`remove_host` / :meth:`invalidate`) and by every aliased
        region mutation; frozen snapshots (:class:`~repro.scanner.plane.
        ScanPlane`) record it at build time so stale reuse after the
        world advanced raises instead of silently probing old tables.
        """
        return (self._version, self.aliased.version)

    def invalidate(self) -> None:
        """Drop memoised host tables and bump the mutation token.

        Call after mutating ``hosts_by_port`` in place outside
        :meth:`add_host` / :meth:`remove_host`; the churn layer routes
        its bulk mutations through the add/remove hooks, which call
        this themselves.
        """
        self._all_hosts = None
        self._frozen_hosts.clear()
        self._version += 1

    def _ping_targets(self) -> set[int]:
        """All hosts on any port, memoised until the next mutation.

        The merged set is shared — treat it as read-only; mutate hosts
        only through :meth:`add_host` / :meth:`remove_host` so the
        cache invalidates.
        """
        if self._all_hosts is None:
            merged: set[int] = set()
            for hosts in self._hosts_by_port.values():
                merged |= hosts
            self._all_hosts = merged
        return self._all_hosts

    def add_host(self, addr: int, port: int = 80) -> None:
        """Add an active host (invalidates the merged-host cache)."""
        self._hosts_by_port.setdefault(port, set()).add(int(addr))
        self.invalidate()

    def remove_host(self, addr: int, port: int = 80) -> None:
        """Retire a host from a port (invalidates the merged-host cache)."""
        hosts = self._hosts_by_port.get(port)
        if hosts is not None:
            hosts.discard(int(addr))
        self.invalidate()

    def is_responsive(self, addr: int, port: int = 80, attempt: int = 0) -> bool:
        """Would one probe to ``addr``/``port`` get a response?

        ``attempt`` is the retransmission number.  The pristine ground
        truth ignores it (a host either exists or it does not); fault
        overlays (:class:`repro.faults.FaultyGroundTruth`) key
        per-probe drop decisions on it.
        """
        value = int(addr)
        if port == ICMPV6:
            if value in self._ping_targets():
                return True
            return self.aliased.find(value) is not None
        hosts = self._hosts_by_port.get(port)
        if hosts is not None and value in hosts:
            return True
        return self.aliased.responds(value, port)

    def responsive_many(
        self, addrs: Iterable[int], port: int = 80, attempt: int = 0
    ) -> list[bool]:
        """Batched :meth:`is_responsive` over a chunk of addresses.

        Host membership is resolved with one set intersection for the
        whole chunk; only the misses fall through to the aliased-region
        batch lookup (which caches recent /64 decisions).  Returns one
        flag per address, in input order.  ``attempt`` is ignored here
        and honoured by fault overlays, as in :meth:`is_responsive`.
        """
        addrs = [int(a) for a in addrs]
        if port == ICMPV6:
            hosts: set[int] = self._ping_targets()
        else:
            hosts = self._hosts_by_port.get(port) or set()
        present = hosts.intersection(addrs) if hosts else hosts
        flags = [a in present for a in addrs]
        if self.aliased:
            pending = [i for i, flag in enumerate(flags) if not flag]
            if pending:
                chunk = [addrs[i] for i in pending]
                if port == ICMPV6:
                    found = [r is not None for r in self.aliased.find_many(chunk)]
                else:
                    found = self.aliased.responds_many(chunk, port)
                for i, flag in zip(pending, found):
                    if flag:
                        flags[i] = True
        return flags

    def frozen_hosts(self, port: int = 80) -> "FrozenKeySet":
        """The port's host set as a frozen sorted-key table, memoised.

        Invalidated by :meth:`add_host` / :meth:`remove_host`; the
        backing array is an immutable snapshot suitable for sharing
        with scan workers.
        """
        table = self._frozen_hosts.get(port)
        if table is None:
            from ..ipv6.addrplane import FrozenKeySet

            if port == ICMPV6:
                hosts: Iterable[int] = self._ping_targets()
            else:
                hosts = self._hosts_by_port.get(port) or ()
            table = FrozenKeySet.from_ints(hosts)
            self._frozen_hosts[port] = table
        return table

    def responsive_many_arr(
        self,
        hi: "np.ndarray",
        lo: "np.ndarray",
        port: int = 80,
        attempt: int = 0,
    ) -> "np.ndarray":
        """Array-native :meth:`responsive_many` over hi/lo uint64 columns.

        Same verdicts as the scalar batch: frozen-host membership via one
        ``searchsorted``, aliased-region fallthrough only for the misses.
        """
        flags = self.frozen_hosts(port).member(hi, lo)
        if self.aliased:
            miss = ~flags
            if miss.any():
                mhi, mlo = hi[miss], lo[miss]
                if port == ICMPV6:
                    found = self.aliased.contains_arr(mhi, mlo)
                else:
                    found = self.aliased.responds_arr(mhi, mlo, port)
                flags[miss] = found
        return flags

    def is_aliased(self, addr: int, port: int = 80) -> bool:
        """True if the address responds only because of region aliasing."""
        if port == ICMPV6:
            return self.aliased.find(int(addr)) is not None
        return self.aliased.responds(int(addr), port)

    def hosts(self, port: int = 80) -> set[int]:
        """The distinct real hosts on a port (aliased space excluded)."""
        if port == ICMPV6:
            return self._ping_targets()
        return self._hosts_by_port.get(port, set())

    def host_count(self, port: int = 80) -> int:
        return len(self.hosts(port))

    def ports(self) -> set[int]:
        return set(self._hosts_by_port)


@dataclass
class SimInternet:
    """The assembled simulation: registry + routing table + ground truth."""

    registry: AsRegistry
    bgp: BgpTable
    truth: GroundTruth
    networks: list[BuiltNetwork]
    rng_seed: int
    #: Per-port rates the extra services were drawn with at assembly;
    #: retained so churn-added hosts and world-file round-trips can
    #: reproduce the same service mix.
    port_rates: dict[int, float] = field(default_factory=dict)
    _active_hosts_cache: set[int] | None = field(
        default=None, repr=False, compare=False
    )

    def as_name(self, asn: int) -> str:
        return self.registry.name_of(asn)

    def network_for_asn(self, asn: int) -> list[BuiltNetwork]:
        return [n for n in self.networks if n.spec.asn == asn]

    def all_active_hosts(self) -> set[int]:
        """Union of active hosts across networks, memoised.

        The returned set is shared — treat it as read-only.  Mutate the
        network list through :meth:`add_network` (or call
        :meth:`invalidate_caches` after editing it in place) so the
        memo stays consistent.
        """
        if self._active_hosts_cache is None:
            hosts: set[int] = set()
            for network in self.networks:
                hosts.update(network.active_hosts)
            self._active_hosts_cache = hosts
        return self._active_hosts_cache

    def add_network(self, network: BuiltNetwork) -> None:
        """Append a realised network and invalidate derived caches."""
        self.networks.append(network)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop memoised host sets after an in-place mutation.

        Also invalidates the ground truth's memoised merged/frozen
        host tables (and bumps its mutation token): every mutation
        path that edits ``networks[*].active_hosts`` in place is
        expected to have touched the truth as well, and a stale
        frozen-host snapshot is the silent-wrong-answer failure mode
        the churn layer must never hit.
        """
        self._active_hosts_cache = None
        self.truth.invalidate()

    def routed_prefixes(self) -> list[Prefix]:
        return [route.prefix for route in self.bgp]


def build_network(spec: NetworkSpec, rng: random.Random) -> BuiltNetwork:
    """Realise one network spec into hosts and aliased regions."""
    policy = make_policy(spec.policy_name, **spec.policy_kwargs)
    hosts = allocate_subnets(
        spec.routed_prefix,
        policy,
        spec.host_count,
        spec.subnet_count,
        rng,
        subnet_length=spec.subnet_length,
        sequential_subnets=spec.sequential_subnets,
    )
    retired: set[int] = set()
    if spec.churn_rate > 0 and hosts:
        retired_count = int(len(hosts) * spec.churn_rate)
        retired = set(rng.sample(sorted(hosts), retired_count))
        hosts -= retired

    regions: list[AliasedRegion] = []
    region_counters: dict[int, int] = {}
    for length in spec.aliased_lengths:
        if length <= spec.routed_prefix.length:
            raise ValueError(
                f"aliased region /{length} not inside routed prefix "
                f"{spec.routed_prefix}"
            )
        # Place regions at the high end of the routed prefix, one region
        # index per granularity, so they stay disjoint from each other
        # and from the low sequential subnets holding real hosts.
        region_bits = min(length - spec.routed_prefix.length, 24)
        index = region_counters.get(length, 0)
        region_counters[length] = index + 1
        if index >= (1 << region_bits):
            raise ValueError(
                f"too many aliased /{length} regions for {spec.routed_prefix}"
            )
        region_id = (1 << region_bits) - 1 - index
        network = spec.routed_prefix.network | (region_id << (128 - length))
        region_prefix = Prefix.containing(network, length)
        regions.append(AliasedRegion(region_prefix, frozenset({80, 443})))
    return BuiltNetwork(
        spec=spec, active_hosts=hosts, retired_hosts=retired, aliased_regions=regions
    )


#: Default share of TCP/80 hosts that also run each additional service.
DEFAULT_PORT_RATES: dict[int, float] = {443: 0.6, 25: 0.12, 22: 0.3}


def assemble_internet(
    specs: Sequence[NetworkSpec],
    registry: AsRegistry,
    rng_seed: int = 42,
    extra_ports: Mapping[int, float] | Iterable[int] | None = None,
) -> SimInternet:
    """Build the full simulation from network specs.

    Hosts respond on TCP/80; each also runs the extra services with the
    given per-port probability (dual-stack web servers usually serve
    HTTPS, fewer run SSH, few run SMTP), enabling the §8 cross-protocol
    experiments.  ``extra_ports`` accepts a ``{port: rate}`` mapping or
    a bare iterable of ports (rate 0.6 each).
    """
    if extra_ports is None:
        port_rates = dict(DEFAULT_PORT_RATES)
    elif isinstance(extra_ports, Mapping):
        port_rates = dict(extra_ports)
    else:
        port_rates = {port: 0.6 for port in extra_ports}

    rng = random.Random(rng_seed)
    bgp = BgpTable()
    aliased = AliasedRegionSet()
    networks: list[BuiltNetwork] = []
    hosts_80: set[int] = set()
    hosts_extra: dict[int, set[int]] = {port: set() for port in port_rates}

    for spec in specs:
        if spec.asn not in registry:
            registry.add(AutonomousSystem(spec.asn, f"AS{spec.asn}", ("generic",)))
        bgp.add(Route(spec.routed_prefix, spec.asn))
        network = build_network(spec, rng)
        networks.append(network)
        hosts_80.update(network.active_hosts)
        for port, rate in port_rates.items():
            for host in network.active_hosts:
                if rng.random() < rate:
                    hosts_extra[port].add(host)
        for region in network.aliased_regions:
            aliased.add(region)

    hosts_by_port = {80: hosts_80, **hosts_extra}
    truth = GroundTruth(hosts_by_port, aliased)
    return SimInternet(
        registry=registry,
        bgp=bgp,
        truth=truth,
        networks=networks,
        rng_seed=rng_seed,
        port_rates=port_rates,
    )


def default_internet(scale: float = 1.0, rng_seed: int = 42) -> SimInternet:
    """The standard simulation used by the experiment harness.

    ``scale`` multiplies host counts and the number of generic filler
    ASes; 1.0 yields roughly 120 routed prefixes and ~40 K real hosts,
    enough for every figure's qualitative shape while keeping the full
    pipeline fast.
    """
    rng = random.Random(rng_seed ^ 0x6E67)
    registry = AsRegistry.with_well_known()
    specs: list[NetworkSpec] = []

    def scaled(n: int) -> int:
        return max(1, int(n * scale))

    # --- CDN-like aliased giants (paper Table 1b) -------------------------
    # Akamai: the paper's fully responsive /56; dominates aliased hits.
    # Akamai's real infrastructure hosts sit in small dense subnets so
    # the bulk of its per-prefix budget flows into the aliased regions
    # (matching the paper, where Akamai holds >half of aliased hits).
    specs.append(
        NetworkSpec(
            asn=20940,
            routed_prefix=Prefix.parse("2600:1400::/32"),
            policy_name="low-byte",
            policy_kwargs={"bits": 8},
            host_count=scaled(200),
            subnet_count=8,
            aliased_lengths=(56, 56, 64),
            aliased_seed_count=scaled(260),
            seed_rate=0.35,
        )
    )
    # Akamai originates many routed prefixes; several carry aliased
    # regions, which is why it dominates the paper's aliased hits.
    for i, extra in enumerate(("2600:1401::/32", "2600:1402::/32", "2600:1403::/32")):
        specs.append(
            NetworkSpec(
                asn=20940,
                routed_prefix=Prefix.parse(extra),
                policy_name="low-byte",
                policy_kwargs={"bits": 8},
                host_count=scaled(100),
                subnet_count=4,
                aliased_lengths=(56, 64),
                aliased_seed_count=scaled(160),
                seed_rate=0.35,
            )
        )
    # Amazon 16509: both aliased and non-aliased subnets (§6.6 notes this).
    specs.append(
        NetworkSpec(
            asn=16509,
            routed_prefix=Prefix.parse("2600:9000::/32"),
            policy_name="low-byte",
            policy_kwargs={"bits": 12},
            host_count=scaled(500),
            subnet_count=12,
            aliased_lengths=(96, 96, 96, 64),
            aliased_seed_count=scaled(180),
            seed_rate=0.35,
        )
    )
    # A second aliased Amazon prefix keeps it ahead of the /112 CDNs.
    specs.append(
        NetworkSpec(
            asn=16509,
            routed_prefix=Prefix.parse("2600:9001::/32"),
            policy_name="low-byte",
            policy_kwargs={"bits": 12},
            host_count=scaled(200),
            subnet_count=6,
            aliased_lengths=(96, 96, 64),
            aliased_seed_count=scaled(120),
            seed_rate=0.35,
        )
    )
    # Amazon 14618 (EC2 classic): mostly real hosts, top non-aliased AS.
    specs.append(
        NetworkSpec(
            asn=14618,
            routed_prefix=Prefix.parse("2406:da00::/40"),
            policy_name="low-byte",
            policy_kwargs={"bits": 12, "sequential": True},
            host_count=scaled(1100),
            subnet_count=10,
            seed_rate=0.3,
        )
    )
    # Cloudflare & Mittwald: aliased at /112 — invisible to /96 probing,
    # caught only by the paper's manual AS-level inspection.
    specs.append(
        NetworkSpec(
            asn=13335,
            routed_prefix=Prefix.parse("2606:4700::/32"),
            policy_name="low-byte",
            policy_kwargs={"bits": 8},
            host_count=scaled(250),
            subnet_count=6,
            aliased_lengths=(112,) * 4,
            aliased_seed_count=scaled(90),
            seed_rate=0.3,
        )
    )
    specs.append(
        NetworkSpec(
            asn=15817,
            routed_prefix=Prefix.parse("2a00:1158::/32"),
            policy_name="low-byte",
            policy_kwargs={"bits": 8},
            host_count=scaled(150),
            subnet_count=4,
            aliased_lengths=(112,) * 3,
            aliased_seed_count=scaled(60),
            seed_rate=0.3,
        )
    )

    # --- Large hosting providers: dense, discoverable (Tables 1a/1c) ------
    hosting = [
        (63949, "2600:3c00::/32", "low-byte", {"bits": 12, "sequential": True}, 1500, 14),
        (16276, "2001:41d0::/32", "low-byte", {"bits": 16, "sequential": True}, 1200, 12),
        (24940, "2a01:4f8::/32", "dhcpv6-sequential", {"pool_base": 0x2000}, 1000, 10),
        (20773, "2a00:1169::/32", "low-byte", {"bits": 12}, 950, 10),
        (25560, "2a00:11c0::/35", "dhcpv6-sequential", {}, 800, 8),
        (25234, "2a02:160::/32", "low-byte", {"bits": 8}, 700, 8),
        (26496, "2603:5::/40", "low-byte", {"bits": 12}, 650, 8),
        (58010, "2a00:6800::/38", "dhcpv6-sequential", {"pool_base": 0x100}, 600, 6),
        (14061, "2604:a880::/32", "low-byte", {"bits": 16}, 600, 8),
        (12824, "2001:4c80::/32", "low-byte", {"bits": 12}, 800, 8),
        (25532, "2a00:15f8::/32", "dhcpv6-sequential", {}, 780, 8),
        (8560, "2001:8d8::/32", "low-byte", {"bits": 12}, 500, 6),
        (47490, "2a02:2b88::/32", "low-byte", {"bits": 8}, 450, 6),
        (13189, "2a02:7aa0::/33", "low-byte", {"bits": 8}, 300, 4),
    ]
    for asn, prefix, policy, kwargs, hosts, subnets in hosting:
        specs.append(
            NetworkSpec(
                asn=asn,
                routed_prefix=Prefix.parse(prefix),
                policy_name=policy,
                policy_kwargs=dict(kwargs),
                host_count=scaled(hosts),
                subnet_count=subnets,
                seed_rate=0.4,
            )
        )

    # --- ISPs and transit: SLAAC / privacy addresses, hard to predict -----
    isps = [
        (3320, "2003::/19", "slaac-eui64", {}, 900, 10),
        (6939, "2001:470::/32", "privacy-random", {}, 700, 8),
        (209, "2602::/24", "slaac-eui64", {}, 500, 8),
        (3257, "2a02:20c0::/32", "privacy-random", {}, 350, 6),
        (2828, "2610:18::/32", "slaac-eui64", {}, 300, 4),
    ]
    for asn, prefix, policy, kwargs, hosts, subnets in isps:
        specs.append(
            NetworkSpec(
                asn=asn,
                routed_prefix=Prefix.parse(prefix),
                policy_name=policy,
                policy_kwargs=dict(kwargs),
                host_count=scaled(hosts),
                subnet_count=subnets,
                seed_rate=0.25,
            )
        )

    # --- Specialised practice networks (pattern diversity for Fig. 6) -----
    specs.append(
        NetworkSpec(
            asn=15169,
            routed_prefix=Prefix.parse("2607:f8b0::/32"),
            policy_name="port-embed",
            host_count=scaled(200),
            subnet_count=24,
            seed_rate=0.5,
        )
    )
    specs.append(
        NetworkSpec(
            asn=54113,
            routed_prefix=Prefix.parse("2a04:4e40::/32"),
            policy_name="hex-word",
            host_count=scaled(300),
            subnet_count=6,
            seed_rate=0.45,
        )
    )
    specs.append(
        NetworkSpec(
            asn=13189 + 1_000_000,  # synthetic: dual-stack embedder
            routed_prefix=Prefix.parse("2a0a:e5c0::/32"),
            policy_name="ipv4-embed",
            host_count=scaled(350),
            subnet_count=4,
            seed_rate=0.4,
        )
    )

    # --- Generic filler ASes: the long tail of Figure 3 -------------------
    filler_count = scaled(85)
    filler_ases = registry.add_filler(filler_count)
    policy_mix = [
        ("low-byte", {"bits": 8}, 0.45),
        ("dhcpv6-sequential", {}, 0.2),
        ("slaac-eui64", {}, 0.15),
        ("privacy-random", {}, 0.1),
        ("low-byte", {"bits": 16, "sequential": False}, 0.1),
    ]
    for i, as_ in enumerate(filler_ases):
        # Deterministic pseudo-random prefix in documentation-adjacent space.
        net = (0x2A0B << 112) | (i << 96)
        r = rng.random()
        cumulative = 0.0
        for policy, kwargs, weight in policy_mix:
            cumulative += weight
            if r <= cumulative:
                break
        host_count = scaled(int(10 ** rng.uniform(1.0, 2.6)))
        # A quarter of filler networks use >64-bit routed prefixes,
        # mirroring the paper's RouteViews observation (§4.2).
        length = 80 if i % 4 == 0 else 48
        prefix = Prefix.containing(net, length)
        specs.append(
            NetworkSpec(
                asn=as_.asn,
                routed_prefix=prefix,
                policy_name=policy,
                policy_kwargs=dict(kwargs),
                host_count=host_count,
                subnet_count=max(1, min(6, host_count // 20)),
                subnet_length=max(96, length) if length > 64 else 64,
                seed_rate=rng.uniform(0.15, 0.5),
            )
        )

    return assemble_internet(specs, registry, rng_seed=rng_seed)
