"""Address segmentation (Entropy/IP stage 2).

Entropy/IP groups *adjacent nybbles whose values have similar levels of
entropy* into segments (paper §3.3).  A new segment starts whenever the
entropy steps by more than a threshold relative to the running segment,
or when the current segment reaches a maximum width (wide segments make
the downstream value model too sparse to estimate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ipv6.nybble import NYBBLE_COUNT
from .entropy import nybble_entropies


@dataclass(frozen=True)
class Segment:
    """A run of adjacent nybble positions treated as one model variable."""

    start: int  # first nybble index (inclusive)
    end: int  # last nybble index (exclusive)
    mean_entropy: float

    @property
    def width(self) -> int:
        """Number of nybbles in the segment."""
        return self.end - self.start

    def extract(self, addr: int) -> int:
        """The segment's value within an address, as an integer."""
        value = int(addr)
        shift = 4 * (NYBBLE_COUNT - self.end)
        return (value >> shift) & ((1 << (4 * self.width)) - 1)

    def insert(self, addr: int, segment_value: int) -> int:
        """Return ``addr`` with this segment's nybbles set to ``segment_value``."""
        width_mask = (1 << (4 * self.width)) - 1
        if not 0 <= segment_value <= width_mask:
            raise ValueError(
                f"segment value {segment_value:#x} out of range for width {self.width}"
            )
        shift = 4 * (NYBBLE_COUNT - self.end)
        return (int(addr) & ~(width_mask << shift)) | (segment_value << shift)

    def __str__(self) -> str:
        return f"Segment[{self.start}:{self.end}] H={self.mean_entropy:.3f}"


def segment_positions(
    entropies: Sequence[float],
    threshold: float = 0.1,
    max_width: int = 4,
) -> list[Segment]:
    """Split the 32 nybble positions into entropy-homogeneous segments.

    A segment grows while each next position's entropy stays within
    ``threshold`` of the segment's running mean and the segment is
    narrower than ``max_width`` nybbles.
    """
    if len(entropies) != NYBBLE_COUNT:
        raise ValueError(f"expected {NYBBLE_COUNT} entropies, got {len(entropies)}")
    if max_width < 1:
        raise ValueError(f"max_width must be positive: {max_width}")
    segments: list[Segment] = []
    start = 0
    total = entropies[0]
    for i in range(1, NYBBLE_COUNT):
        width = i - start
        mean = total / width
        if abs(entropies[i] - mean) > threshold or width >= max_width:
            segments.append(Segment(start, i, mean))
            start = i
            total = entropies[i]
        else:
            total += entropies[i]
    segments.append(Segment(start, NYBBLE_COUNT, total / (NYBBLE_COUNT - start)))
    return segments


def segment_addresses(seeds: Sequence[int], **kwargs) -> list[Segment]:
    """Convenience: entropy analysis + segmentation in one call."""
    return segment_positions(nybble_entropies(seeds), **kwargs)
