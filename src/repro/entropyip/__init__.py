"""Entropy/IP baseline TGA (Foremski et al., IMC 2016; paper §3.3 & §7).

Pipeline: per-nybble entropy → segmentation → per-segment value mining
→ chain Bayesian network → budgeted target generation.  Public entry
points: :func:`run_entropy_ip` and :func:`fit_entropy_ip`.
"""

from .bayes import BayesChain, BayesNetwork
from .budgeted import (
    PatternRegion,
    generate_budget_aware,
    pattern_regions,
    run_budget_aware_entropy_ip,
)
from .entropy import nybble_entropies, nybble_value_counts, shannon_entropy
from .generator import EntropyIPConfig, EntropyIPModel, fit_entropy_ip, run_entropy_ip
from .mining import SegmentModel, ValueAtom, mine_segment_values
from .segments import Segment, segment_addresses, segment_positions

__all__ = [
    "BayesChain",
    "BayesNetwork",
    "PatternRegion",
    "generate_budget_aware",
    "pattern_regions",
    "run_budget_aware_entropy_ip",
    "EntropyIPConfig",
    "EntropyIPModel",
    "Segment",
    "SegmentModel",
    "ValueAtom",
    "fit_entropy_ip",
    "mine_segment_values",
    "nybble_entropies",
    "nybble_value_counts",
    "run_entropy_ip",
    "segment_addresses",
    "segment_positions",
    "shannon_entropy",
]
