"""Per-nybble entropy analysis (Entropy/IP stage 1).

Entropy/IP (Foremski et al., IMC 2016 — the paper's comparison TGA)
starts by measuring, for each of the 32 nybble positions, the Shannon
entropy of the values observed across the seed set, normalised to
``[0, 1]`` by the 4-bit maximum.  Flat positions (entropy ≈ 0) are
structural constants; high-entropy positions look random; mid-range
positions carry the learnable structure.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from ..ipv6.nybble import NYBBLE_COUNT


def nybble_value_counts(seeds: Sequence[int]) -> list[Counter]:
    """Per-position histograms of nybble values across the seed set."""
    counters: list[Counter] = [Counter() for _ in range(NYBBLE_COUNT)]
    for seed in seeds:
        value = int(seed)
        for i in range(NYBBLE_COUNT - 1, -1, -1):
            counters[i][value & 0xF] += 1
            value >>= 4
    return counters


def shannon_entropy(counts: Counter) -> float:
    """Shannon entropy in bits of a value histogram."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def nybble_entropies(seeds: Sequence[int]) -> list[float]:
    """Normalised per-nybble entropies (0 = constant, 1 = uniform random).

    This is the curve Entropy/IP plots and segments; 4 bits of entropy
    normalises to 1.0.
    """
    if not seeds:
        raise ValueError("entropy analysis requires at least one seed")
    return [shannon_entropy(c) / 4.0 for c in nybble_value_counts(seeds)]


def nybble_entropies_columns(hi, lo) -> list[float]:
    """Column-native :func:`nybble_entropies` over packed ``(hi, lo)``.

    Takes the scan path's uint64 column pair directly — one vectorised
    shift/mask/bincount per nybble position — so the predictive feature
    extractor never boxes a 128-bit int.  Values match the scalar path
    exactly (both reduce to the same histograms).
    """
    import numpy as np

    n = len(hi)
    if n == 0:
        raise ValueError("entropy analysis requires at least one seed")
    out: list[float] = []
    for column in (hi, lo):
        for j in range(NYBBLE_COUNT // 2):
            shift = np.uint64(4 * (NYBBLE_COUNT // 2 - 1 - j))
            values = ((column >> shift) & np.uint64(0xF)).astype(np.intp)
            counts = np.bincount(values, minlength=16)
            p = counts[counts > 0] / n
            out.append(float(-(p * np.log2(p)).sum()) / 4.0)
    return out
