"""Per-segment value mining (Entropy/IP stage 3).

For each segment, Entropy/IP clusters the observed values "along
several metrics" (paper §3.3): heavy-hitter single values become atoms
of their own, and the remaining long tail is grouped into contiguous
value *ranges* (a one-dimensional density clustering, equivalent to
splitting the sorted values at large gaps).  Each atom carries its
empirical probability; range atoms model their interior uniformly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import random

from .segments import Segment


@dataclass(frozen=True)
class ValueAtom:
    """One modelled outcome for a segment: an exact value or a value range.

    ``low == high`` encodes an exact frequent value; otherwise the atom
    is a range and concrete values are drawn uniformly from
    ``[low, high]`` at generation time.
    """

    low: int
    high: int

    @property
    def is_exact(self) -> bool:
        return self.low == self.high

    @property
    def span(self) -> int:
        """Number of concrete values the atom can produce."""
        return self.high - self.low + 1

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    def sample(self, rng: random.Random) -> int:
        return self.low if self.is_exact else rng.randint(self.low, self.high)

    def __str__(self) -> str:
        if self.is_exact:
            return f"{self.low:x}"
        return f"[{self.low:x}-{self.high:x}]"


@dataclass
class SegmentModel:
    """Mined value model for one segment: atoms plus their probabilities."""

    segment: Segment
    atoms: list[ValueAtom]
    probabilities: list[float]

    def atom_index(self, value: int) -> int:
        """Index of the atom covering a segment value.

        Exact atoms take precedence over range atoms.  Values seen at
        model time are always covered; unseen values fall back to the
        nearest range atom, or to the overall nearest atom if the model
        has no ranges (Laplace-style escape used when scoring new
        addresses).
        """
        best_range = -1
        for i, atom in enumerate(self.atoms):
            if atom.is_exact:
                if atom.low == value:
                    return i
            elif atom.contains(value):
                best_range = i
        if best_range >= 0:
            return best_range
        # Fallback: nearest atom by value distance.
        return min(
            range(len(self.atoms)),
            key=lambda i: min(
                abs(value - self.atoms[i].low), abs(value - self.atoms[i].high)
            ),
        )


def mine_segment_values(
    segment: Segment,
    seeds: Sequence[int],
    *,
    heavy_hitter_fraction: float = 0.05,
    max_exact_values: int = 16,
    gap_factor: float = 8.0,
    split_mode: str = "gap",
) -> SegmentModel:
    """Build the value model for one segment from the seed set.

    Values whose empirical probability is at least
    ``heavy_hitter_fraction`` (capped at ``max_exact_values`` of them)
    become exact atoms.  The remaining values are sorted and split into
    contiguous ranges wherever the gap between neighbours exceeds
    ``gap_factor`` times the median gap (with a minimum absolute gap of
    2), mimicking Entropy/IP's density-based grouping.

    ``split_mode="nybble"`` additionally splits range atoms at the
    segment's top-nybble boundaries, so values sharing a high nybble
    form their own atoms.  This finer granularity lets the Bayesian
    network condition on sub-segment structure (e.g. an interface
    identifier whose top nybble correlates with the subnet) at the cost
    of more atoms to estimate — the ``bench_mining_granularity``
    ablation measures the tradeoff.
    """
    if split_mode not in ("gap", "nybble"):
        raise ValueError(f"unknown split_mode: {split_mode!r}")
    counts = Counter(segment.extract(seed) for seed in seeds)
    total = sum(counts.values())
    if total == 0:
        raise ValueError("cannot mine a segment model from zero seeds")

    frequent = [
        (value, count)
        for value, count in counts.most_common()
        if count / total >= heavy_hitter_fraction
    ][:max_exact_values]
    exact_values = {value for value, _ in frequent}

    atoms: list[ValueAtom] = [ValueAtom(v, v) for v, _ in frequent]
    weights: list[float] = [c / total for _, c in frequent]

    tail = sorted(v for v in counts if v not in exact_values)
    if tail:
        gaps = [b - a for a, b in zip(tail, tail[1:])]
        if gaps:
            median_gap = sorted(gaps)[len(gaps) // 2]
            split_gap = max(2, int(gap_factor * max(1, median_gap)))
        else:
            split_gap = 2
        # In nybble mode, a boundary between top-nybble groups also
        # splits runs (only meaningful for segments wider than 1 nybble).
        nybble_shift = 4 * (segment.width - 1) if segment.width > 1 else None

        def boundary(a: int, b: int) -> bool:
            if b - a > split_gap:
                return True
            if split_mode == "nybble" and nybble_shift is not None:
                return (a >> nybble_shift) != (b >> nybble_shift)
            return False

        run_start = tail[0]
        prev = tail[0]
        run_count = counts[tail[0]]
        for value in tail[1:]:
            if boundary(prev, value):
                atoms.append(ValueAtom(run_start, prev))
                weights.append(run_count / total)
                run_start = value
                run_count = 0
            run_count += counts[value]
            prev = value
        atoms.append(ValueAtom(run_start, prev))
        weights.append(run_count / total)

    norm = sum(weights)
    probabilities = [w / norm for w in weights]
    return SegmentModel(segment=segment, atoms=atoms, probabilities=probabilities)
