"""Budget-aware Entropy/IP (the paper's §7.1 improvement proposal).

The paper observes that Entropy/IP "uses the budget only to adjust the
number of targets generated, while 6Gen also uses the budget to
determine the regions of address space it selects", and suggests that
"factoring in a budget when identifying probable address patterns may
enhance its applicability to Internet-wide scanning".

This module implements that proposal.  Instead of sampling addresses
from the Bayesian chain until the budget fills, it treats each atom
vector (a concrete pattern of segment atoms) as a *region* with

* a probability mass ``p`` (from the chain), and
* a size ``n`` (product of atom spans),

and greedily commits whole regions in order of *probability density*
``p / n`` — the exact analogue of 6Gen's density-first region
selection — until the budget is consumed, sampling the final region
partially.  High-probability small patterns are exhausted first; diffuse
mass is only explored with leftover budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from .generator import EntropyIPConfig, EntropyIPModel, fit_entropy_ip


@dataclass(frozen=True)
class PatternRegion:
    """One atom vector viewed as a scannable region."""

    atoms: tuple[int, ...]
    probability: float
    size: int

    @property
    def density(self) -> float:
        """Probability mass per address — the selection key."""
        return self.probability / self.size


def pattern_regions(
    model: EntropyIPModel, max_regions: int = 100_000
) -> Iterable[PatternRegion]:
    """Atom-vector regions in descending probability order."""
    for count, (probability, atoms) in enumerate(
        model.chain.iter_vectors_by_probability()
    ):
        if count >= max_regions:
            return
        size = 1
        for seg_model, atom_idx in zip(model.segment_models, atoms):
            size *= seg_model.atoms[atom_idx].span
        yield PatternRegion(atoms=atoms, probability=probability, size=size)


def generate_budget_aware(
    model: EntropyIPModel,
    budget: int,
    *,
    exclude: Iterable[int] = (),
    rng_seed: int | None = 0,
    density_pool: int = 4096,
) -> set[int]:
    """Generate targets by density-first region commitment.

    Collects up to ``density_pool`` highest-probability regions, sorts
    them by probability density, and fills them whole until the budget
    runs out; the last region is sampled partially, consuming the
    budget exactly (when the model's support allows).
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative: {budget}")
    rng = random.Random(rng_seed)
    excluded = set(int(a) for a in exclude)
    regions = sorted(
        pattern_regions(model, max_regions=density_pool),
        key=lambda r: (-r.density, r.size),
    )
    targets: set[int] = set()
    for region in regions:
        remaining = budget - len(targets)
        if remaining <= 0:
            break
        addrs = _expand_region(model, region, rng)
        fresh = [a for a in addrs if a not in excluded and a not in targets]
        if len(fresh) <= remaining:
            targets.update(fresh)
        else:
            targets.update(rng.sample(fresh, remaining))
    return targets


def _expand_region(
    model: EntropyIPModel, region: PatternRegion, rng: random.Random
) -> list[int]:
    """All concrete addresses of one atom-vector region.

    Regions are bounded by the caller's budget logic; truly enormous
    regions (beyond 1 M addresses) are sampled instead of enumerated.
    """
    if region.size > 1_000_000:
        out: set[int] = set()
        while len(out) < 1_000_000:
            addr = 0
            for seg_model, atom_idx in zip(model.segment_models, region.atoms):
                value = seg_model.atoms[atom_idx].sample(rng)
                addr = seg_model.segment.insert(addr, value)
            out.add(addr)
        return sorted(out)

    out_list: list[int] = [0]
    for seg_model, atom_idx in zip(model.segment_models, region.atoms):
        atom = seg_model.atoms[atom_idx]
        segment = seg_model.segment
        out_list = [
            segment.insert(addr, value)
            for addr in out_list
            for value in range(atom.low, atom.high + 1)
        ]
    return out_list


def run_budget_aware_entropy_ip(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    config: EntropyIPConfig | None = None,
    rng_seed: int | None = 0,
) -> set[int]:
    """Fit Entropy/IP and generate with density-first region selection.

    Drop-in comparable to :func:`repro.entropyip.run_entropy_ip` and
    :func:`repro.core.run_6gen`.
    """
    model = fit_entropy_ip([int(s) for s in seeds], config)
    return generate_budget_aware(model, budget, rng_seed=rng_seed)
