"""Bayesian network over segment atoms (Entropy/IP stage 4).

Entropy/IP "utilizes a Bayesian network to model the statistical
dependencies between values of different segments" (paper §3.3).  Two
structures are provided:

* **chain** — segments conditioned left to right (most- to
  least-significant).  Simple and robust on 1 K-seed training sets, but
  provably unable to carry a dependency across an intervening segment.
* **tree** — Chow-Liu structure learning: pairwise mutual information
  between segment atom variables, maximum spanning tree, edges directed
  away from the most significant segment.  This matches the original
  Entropy/IP tool more closely (it learns its network structure) and
  recovers correlations the chain loses — the ``bench_bayes_structure``
  ablation quantifies the difference.

Both support ancestral sampling, exact joint probabilities, and
best-first enumeration of atom vectors in descending probability.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .mining import SegmentModel


@dataclass
class _Cpt:
    """Conditional distribution over one node's atoms per parent atom.

    For the root, there is a single row (no parent).
    """

    probabilities: list[list[float]]
    cumulative: list[list[float]]


def _mutual_information(xs: Sequence[int], ys: Sequence[int]) -> float:
    """Empirical mutual information between two discrete variables."""
    n = len(xs)
    joint = Counter(zip(xs, ys))
    px = Counter(xs)
    py = Counter(ys)
    mi = 0.0
    for (x, y), count in joint.items():
        pxy = count / n
        mi += pxy * math.log2(pxy * n * n / (px[x] * py[y]))
    return max(mi, 0.0)


def _chow_liu_parents(atom_columns: list[list[int]]) -> list[int | None]:
    """Maximum-MI spanning tree, rooted at node 0, as a parent array."""
    k = len(atom_columns)
    if k == 1:
        return [None]
    # Prim's algorithm over the complete MI graph.
    in_tree = {0}
    parents: list[int | None] = [None] * k
    best_edge: dict[int, tuple[float, int]] = {}
    for j in range(1, k):
        best_edge[j] = (_mutual_information(atom_columns[0], atom_columns[j]), 0)
    while len(in_tree) < k:
        j = max(best_edge, key=lambda node: best_edge[node][0])
        weight, parent = best_edge.pop(j)
        parents[j] = parent
        in_tree.add(j)
        for other in list(best_edge):
            mi = _mutual_information(atom_columns[j], atom_columns[other])
            if mi > best_edge[other][0]:
                best_edge[other] = (mi, j)
    return parents


class BayesNetwork:
    """Tree-structured Bayesian network over segment atom indices."""

    def __init__(
        self,
        models: Sequence[SegmentModel],
        seeds: Sequence[int],
        alpha: float = 0.5,
        structure: str = "chain",
    ):
        if not models:
            raise ValueError("BayesNetwork requires at least one segment model")
        if structure not in ("chain", "tree"):
            raise ValueError(f"unknown structure: {structure!r}")
        self.models = list(models)
        self.alpha = alpha
        self.structure = structure

        atom_vectors = [
            tuple(m.atom_index(m.segment.extract(seed)) for m in self.models)
            for seed in seeds
        ]
        if not atom_vectors:
            raise ValueError("BayesNetwork requires at least one seed")

        k = len(self.models)
        if structure == "chain":
            self.parents: list[int | None] = [None] + list(range(k - 1))
        else:
            columns = [[vec[i] for vec in atom_vectors] for i in range(k)]
            self.parents = _chow_liu_parents(columns)

        # Topological order: parents precede children (root(s) first).
        self.order: list[int] = []
        placed = [False] * k
        while len(self.order) < k:
            for i in range(k):
                if placed[i]:
                    continue
                parent = self.parents[i]
                if parent is None or placed[parent]:
                    self.order.append(i)
                    placed[i] = True

        self._fit(atom_vectors)

    # -- estimation ---------------------------------------------------------
    def _fit(self, atom_vectors: Sequence[tuple[int, ...]]) -> None:
        self.cpts: list[_Cpt] = []
        for i, model in enumerate(self.models):
            size = len(model.atoms)
            parent = self.parents[i]
            parent_size = 1 if parent is None else len(self.models[parent].atoms)
            counts = [[self.alpha] * size for _ in range(parent_size)]
            for vec in atom_vectors:
                row = 0 if parent is None else vec[parent]
                counts[row][vec[i]] += 1
            probabilities = []
            cumulative = []
            for row in counts:
                total = sum(row)
                probs = [c / total for c in row]
                probabilities.append(probs)
                cumulative.append(list(itertools.accumulate(probs)))
            self.cpts.append(_Cpt(probabilities=probabilities, cumulative=cumulative))

    # -- convenience (chain-compatible surface) --------------------------------
    @property
    def root_probs(self) -> list[float]:
        """Marginal of the first topological node (chain: segment 0)."""
        return self.cpts[self.order[0]].probabilities[0]

    # -- sampling ----------------------------------------------------------
    def sample_atoms(self, rng: random.Random) -> tuple[int, ...]:
        """Draw one atom-index vector (in segment order) from the joint."""
        assignment: list[int] = [0] * len(self.models)
        for node in self.order:
            parent = self.parents[node]
            row = 0 if parent is None else assignment[parent]
            assignment[node] = self._draw(self.cpts[node].cumulative[row], rng)
        return tuple(assignment)

    @staticmethod
    def _draw(cumulative: list[float], rng: random.Random) -> int:
        x = rng.random() * cumulative[-1]
        return min(bisect.bisect_left(cumulative, x), len(cumulative) - 1)

    def sample_address(self, rng: random.Random) -> int:
        """Draw one full address: sample atoms, then values within atoms."""
        addr = 0
        for model, atom_idx in zip(self.models, self.sample_atoms(rng)):
            value = model.atoms[atom_idx].sample(rng)
            addr = model.segment.insert(addr, value)
        return addr

    def sample_atoms_arr(self, u: np.ndarray) -> np.ndarray:
        """Batched ancestral sampling from explicit uniform draws.

        ``u`` is a ``(count, k)`` float64 array of uniforms in [0, 1);
        column ``d`` feeds the node at topological depth ``d``.  Returns
        a ``(count, k)`` int64 atom-index matrix in *segment* order.

        Each draw is ``searchsorted(cumulative_row, u * total)`` — the
        same float64 comparisons as the scalar :meth:`_draw`'s
        ``bisect_left``, so for identical uniforms the verdicts are
        bit-identical.  Conditioned nodes group rows by the parent's
        sampled atom and search each CPT row's cumulative vector once
        per present parent value.
        """
        count = len(u)
        assignment = np.zeros((count, len(self.models)), dtype=np.int64)
        for depth, node in enumerate(self.order):
            cpt = self.cpts[node]
            x = u[:, depth]
            parent = self.parents[node]
            if parent is None:
                cum = np.asarray(cpt.cumulative[0])
                drawn = np.minimum(
                    np.searchsorted(cum, x * cum[-1], side="left"),
                    len(cum) - 1,
                )
                assignment[:, node] = drawn
                continue
            rows = assignment[:, parent]
            out = np.zeros(count, dtype=np.int64)
            for row in np.unique(rows):
                mask = rows == row
                cum = np.asarray(cpt.cumulative[row])
                out[mask] = np.minimum(
                    np.searchsorted(cum, x[mask] * cum[-1], side="left"),
                    len(cum) - 1,
                )
            assignment[:, node] = out
        return assignment

    # -- probabilities -------------------------------------------------------
    def vector_probability(self, atoms: Sequence[int]) -> float:
        """Joint probability of an atom vector.

        Accepts either a full vector in *segment* order, or a prefix of
        the *topological* order (used internally by the enumerator; for
        chain structure the two coincide).
        """
        if len(atoms) == len(self.models):
            p = 1.0
            for node in self.order:
                parent = self.parents[node]
                row = 0 if parent is None else atoms[parent]
                p *= self.cpts[node].probabilities[row][atoms[node]]
            return p
        return self._prefix_probability(atoms)

    def _prefix_probability(self, prefix: Sequence[int]) -> float:
        """Probability of a partial assignment over ``order[:len(prefix)]``."""
        assigned: dict[int, int] = {}
        p = 1.0
        for node, atom in zip(self.order, prefix):
            parent = self.parents[node]
            row = 0 if parent is None else assigned[parent]
            p *= self.cpts[node].probabilities[row][atom]
            assigned[node] = atom
        return p

    def iter_vectors_by_probability(self) -> Iterator[tuple[float, tuple[int, ...]]]:
        """Yield atom vectors (segment order) in descending joint probability.

        Best-first search over partial assignments in topological order;
        the admissible bound multiplies each unassigned node's maximum
        conditional probability.
        """
        k = len(self.models)
        max_tail = [1.0] * (k + 1)
        for depth in range(k - 1, -1, -1):
            node = self.order[depth]
            best = max(max(row) for row in self.cpts[node].probabilities)
            max_tail[depth] = best * max_tail[depth + 1]

        heap: list[tuple[float, tuple[int, ...]]] = []

        def push(prefix: tuple[int, ...]) -> None:
            p = self._prefix_probability(prefix) * max_tail[len(prefix)]
            heapq.heappush(heap, (-p, prefix))

        root_node = self.order[0]
        for atom in range(len(self.models[root_node].atoms)):
            push((atom,))
        while heap:
            _, prefix = heapq.heappop(heap)
            depth = len(prefix)
            if depth == k:
                # Reorder from topological to segment order.
                vector = [0] * k
                for node, atom in zip(self.order, prefix):
                    vector[node] = atom
                yield self.vector_probability(tuple(vector)), tuple(vector)
                continue
            node = self.order[depth]
            for atom in range(len(self.models[node].atoms)):
                push(prefix + (atom,))

    def atoms_to_ranges(self, atoms: Sequence[int]) -> list[tuple[int, int]]:
        """Concrete (low, high) value bounds per segment for an atom vector."""
        bounds = []
        for model, atom_idx in zip(self.models, atoms):
            atom = model.atoms[atom_idx]
            bounds.append((atom.low, atom.high))
        return bounds


class BayesChain(BayesNetwork):
    """Chain-structured network (the historical default)."""

    def __init__(
        self,
        models: Sequence[SegmentModel],
        seeds: Sequence[int],
        alpha: float = 0.5,
    ):
        super().__init__(models, seeds, alpha=alpha, structure="chain")
