"""Entropy/IP model fitting and budgeted target generation (stage 5).

Ties the pipeline together: entropy analysis → segmentation → value
mining → Bayesian network → address generation.  Matches the usage in
both papers' evaluations: fit on a seed sample, then generate a target
list of a given size.

Entropy/IP, unlike 6Gen, uses the budget only to decide *how many*
targets to emit — it does not let the budget steer which regions are
modelled (the 6Gen paper highlights exactly this difference in §7.1).
"""

from __future__ import annotations

import bisect
import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..ipv6.addrplane import (
    ColumnDeduper,
    FrozenKeySet,
    concat_columns,
    pack,
)
from ..ipv6.nybble import NYBBLE_COUNT
from ..telemetry.spans import Telemetry, ensure
from .bayes import BayesNetwork
from .entropy import nybble_entropies
from .mining import SegmentModel, mine_segment_values
from .segments import Segment, segment_positions

#: Draw granularity of the vectorised sampler (amortises numpy call
#: overhead without over-drawing small budgets by much).
_SAMPLE_CHUNK = 16_384


@dataclass
class EntropyIPConfig:
    """Tuning knobs for the Entropy/IP pipeline."""

    segment_threshold: float = 0.1
    segment_max_width: int = 4
    heavy_hitter_fraction: float = 0.05
    max_exact_values: int = 16
    gap_factor: float = 8.0
    laplace_alpha: float = 0.5
    #: Bayesian-network structure: "chain" (fixed left-to-right) or
    #: "tree" (Chow-Liu structure learning, like the original tool).
    bayes_structure: str = "chain"
    #: Value-mining granularity: "gap" (density splits only) or
    #: "nybble" (additionally split at top-nybble boundaries).
    mining_split_mode: str = "gap"
    rng_seed: int | None = 0
    #: Give up generating once this many consecutive samples are duplicates;
    #: the model's support may be smaller than the requested budget.
    max_stale_draws: int = 200_000


@dataclass
class EntropyIPModel:
    """A fitted Entropy/IP model for one seed set."""

    entropies: list[float]
    segments: list[Segment]
    segment_models: list[SegmentModel]
    chain: BayesNetwork
    config: EntropyIPConfig
    seed_count: int
    _rng: random.Random = field(repr=False, default_factory=random.Random)

    # -- generation ---------------------------------------------------------
    def generate(self, budget: int, *, exclude: Iterable[int] = ()) -> set[int]:
        """Generate up to ``budget`` distinct target addresses by sampling.

        ``exclude`` addresses (typically the training seeds) are never
        emitted but also never charged against the budget.  Generation
        stops early if the model keeps producing duplicates — its
        support may simply be smaller than the budget.
        """
        if budget < 0:
            raise ValueError(f"budget must be non-negative: {budget}")
        excluded = set(int(a) for a in exclude)
        # When the model's entire support fits in the budget, exhaustive
        # enumeration is both exact and far cheaper than sampling into
        # ever-increasing duplicate rates.
        support = self.support_size()
        if support <= budget:
            return set(self.generate_ordered(budget, exclude=exclude))
        targets: set[int] = set()
        stale = 0
        while len(targets) < budget and stale < self.config.max_stale_draws:
            addr = self.chain.sample_address(self._rng)
            if addr in targets or addr in excluded:
                stale += 1
                continue
            stale = 0
            targets.add(addr)
        return targets

    def sample_columns(
        self, u: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised address assembly from explicit uniform draws.

        ``u`` and ``v`` are ``(count, k)`` float64 uniforms (``k`` =
        number of segments): ``u`` drives the Bayes-network atom draws
        (one column per topological depth), ``v`` picks the value inside
        each chosen atom via ``low + floor(v * span)``.  Returns packed
        ``(hi, lo)`` columns.  :meth:`sample_addresses_reference`
        consumes the same arrays through the scalar code path and is the
        parity baseline: for identical inputs the outputs are
        bit-identical.
        """
        if any(m.segment.width > 16 for m in self.segment_models):
            raise ValueError(
                "sample_columns requires segment widths <= 16 nybbles"
            )
        atoms = self.chain.sample_atoms_arr(u)
        count = len(u)
        hi = np.zeros(count, dtype=np.uint64)
        lo = np.zeros(count, dtype=np.uint64)
        for i, model in enumerate(self.segment_models):
            lows = np.array([a.low for a in model.atoms], dtype=np.uint64)
            spans = np.array([a.span for a in model.atoms], dtype=np.float64)
            chosen = atoms[:, i]
            # floor(v * span) < span always (span <= 2**64 is exact in
            # float64 here: spans are at most 16**width <= 2**64 and
            # v < 1), and uint64 truncation == the scalar int() floor.
            value = lows[chosen] + (v[:, i] * spans[chosen]).astype(np.uint64)
            seg = model.segment
            shift = 4 * (NYBBLE_COUNT - seg.end)
            width_bits = 4 * seg.width
            if shift >= 64:
                hi |= value << np.uint64(shift - 64)
            else:
                # Straddling the /64 half boundary: the low-column shift
                # wraps mod 2**64 (numpy uint64 semantics), keeping the
                # in-range bits; the overflowed bits land in hi.
                lo |= value << np.uint64(shift)
                if shift + width_bits > 64:
                    hi |= value >> np.uint64(64 - shift)
        return hi, lo

    def sample_addresses_reference(
        self, u: np.ndarray, v: np.ndarray
    ) -> list[int]:
        """Scalar reference of :meth:`sample_columns` (same draws).

        A per-address Python loop over the identical uniform arrays:
        atom via the network's bisect draw, value via
        ``low + int(v * span)``, assembled with ``Segment.insert``.
        Exists solely as the parity baseline for the vectorised path.
        """
        order = self.chain.order
        parents = self.chain.parents
        cpts = self.chain.cpts
        out: list[int] = []
        for j in range(len(u)):
            assignment = [0] * len(self.segment_models)
            for depth, node in enumerate(order):
                parent = parents[node]
                row = 0 if parent is None else assignment[parent]
                cumulative = cpts[node].cumulative[row]
                x = float(u[j, depth]) * cumulative[-1]
                assignment[node] = min(
                    bisect.bisect_left(cumulative, x), len(cumulative) - 1
                )
            addr = 0
            for i, model in enumerate(self.segment_models):
                atom = model.atoms[assignment[i]]
                value = atom.low + int(float(v[j, i]) * atom.span)
                addr = model.segment.insert(addr, value)
            out.append(addr)
        return out

    def generate_columns(
        self,
        budget: int,
        *,
        exclude: Iterable[int] = (),
        telemetry: Telemetry | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Column-native :meth:`generate`: packed ``(hi, lo)`` targets.

        Same contract (up to ``budget`` distinct addresses, ``exclude``
        never emitted and never charged, stop early when the model keeps
        producing duplicates) but the sampling loop runs in vectorised
        chunks from an independent ``numpy`` RNG stream seeded with the
        config's ``rng_seed``.  The draw stream differs from the scalar
        :meth:`generate` (which consumes ``random.Random`` with a
        data-dependent number of ``getrandbits`` per address), so the
        two methods emit equally-distributed but not identical sets;
        the exhaustive small-support path is shared and identical.
        Staleness is accounted per chunk: a chunk with no fresh address
        counts its whole size toward ``max_stale_draws``.
        """
        if budget < 0:
            raise ValueError(f"budget must be non-negative: {budget}")
        tele = ensure(telemetry)
        start = time.perf_counter()
        with tele.span("generate.entropy_ip", budget=budget):
            support = self.support_size()
            if support <= budget:
                columns = pack(
                    self.generate_ordered(budget, exclude=exclude)
                )
            else:
                columns = self._sample_budget(budget, exclude)
        if tele.enabled:
            tele.count("generate.targets_total", len(columns[0]))
            elapsed = time.perf_counter() - start
            if elapsed > 0:
                tele.gauge(
                    "generate.targets_per_sec", len(columns[0]) / elapsed
                )
        return columns

    def _sample_budget(
        self, budget: int, exclude: Iterable[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chunked rejection sampling until budget or staleness."""
        excluded = FrozenKeySet.from_ints(int(a) for a in exclude)
        rng = np.random.default_rng(self.config.rng_seed)
        k = len(self.segment_models)
        dedupe = ColumnDeduper()
        chunks: list[tuple[np.ndarray, np.ndarray]] = []
        got = 0
        stale = 0
        while got < budget and stale < self.config.max_stale_draws:
            size = min(_SAMPLE_CHUNK, max(budget - got, 1024))
            u = rng.random((size, k))
            v = rng.random((size, k))
            hi, lo = dedupe.add(*self.sample_columns(u, v))
            if len(excluded) and len(hi):
                keep = ~excluded.member(hi, lo)
                hi, lo = hi[keep], lo[keep]
            if not len(hi):
                stale += size
                continue
            stale = 0
            if got + len(hi) > budget:
                hi, lo = hi[: budget - got], lo[: budget - got]
            chunks.append((hi, lo))
            got += len(hi)
        return concat_columns(chunks)

    def support_size(self) -> int:
        """Upper bound on distinct addresses the model can generate.

        The product over segments of the summed atom spans; an upper
        bound because chain transitions may zero out combinations.
        """
        support = 1
        for model in self.segment_models:
            support *= sum(atom.span for atom in model.atoms)
            if support > 1 << 80:  # avoid pointless huge arithmetic
                return support
        return support

    def generate_ordered(self, budget: int, *, exclude: Iterable[int] = ()) -> list[int]:
        """Generate up to ``budget`` targets in descending model probability.

        Enumerates atom vectors best-first; within each vector, exact
        atoms contribute their value and range atoms are expanded in
        ascending value order (their interior is modelled uniform, so
        any order is probability-consistent).
        """
        if budget < 0:
            raise ValueError(f"budget must be non-negative: {budget}")
        excluded = set(int(a) for a in exclude)
        targets: list[int] = []
        emitted: set[int] = set()
        for _, vec in self.chain.iter_vectors_by_probability():
            bounds = self.chain.atoms_to_ranges(vec)
            for addr in self._expand(bounds, budget - len(targets), emitted, excluded):
                targets.append(addr)
                emitted.add(addr)
            if len(targets) >= budget:
                break
        return targets

    def _expand(
        self,
        bounds: list[tuple[int, int]],
        limit: int,
        emitted: set[int],
        excluded: set[int],
    ) -> list[int]:
        """Concrete addresses for one atom vector, capped at ``limit``."""
        if limit <= 0:
            return []
        out: list[int] = []
        out_set: set[int] = set()

        def rec(index: int, addr: int) -> None:
            if len(out) >= limit:
                return
            if index == len(self.segment_models):
                if addr not in emitted and addr not in excluded and addr not in out_set:
                    out.append(addr)
                    out_set.add(addr)
                return
            model = self.segment_models[index]
            low, high = bounds[index]
            for value in range(low, high + 1):
                if len(out) >= limit:
                    return
                rec(index + 1, model.segment.insert(addr, value))

        rec(0, 0)
        return out

    def score(self, addr: int) -> float:
        """Joint model probability of an address's atom vector."""
        vec = tuple(
            m.atom_index(m.segment.extract(addr)) for m in self.segment_models
        )
        return self.chain.vector_probability(vec)

    def describe(self) -> str:
        """Human-readable structure report (the original tool's output).

        Entropy/IP is "foremost an analysis tool for identifying
        patterns in IPv6 addresses" (paper §7); this renders the fitted
        model the way the original's reports do: the entropy profile,
        each segment with its mined atoms and probabilities, and the
        learned inter-segment dependencies.
        """
        lines = [f"Entropy/IP model ({self.seed_count} seeds)"]
        lines.append("")
        lines.append("per-nybble entropy (digits 0-9 ~ 0.0-1.0):")
        lines.append(
            "  " + "".join(str(min(9, int(e * 10))) for e in self.entropies)
        )
        lines.append("")
        lines.append("segments and mined values:")
        for i, model in enumerate(self.segment_models):
            seg = model.segment
            parent = self.chain.parents[i]
            dep = f" <- segment {parent + 1}" if parent is not None else " (root)"
            lines.append(
                f"  segment {i + 1}: nybbles {seg.start + 1}-{seg.end} "
                f"(H={seg.mean_entropy:.2f}){dep}"
            )
            shown = sorted(
                zip(model.atoms, model.probabilities),
                key=lambda ap: -ap[1],
            )[:6]
            for atom, probability in shown:
                lines.append(f"      {str(atom):<16} p={probability:.3f}")
            if len(model.atoms) > 6:
                lines.append(f"      ... {len(model.atoms) - 6} more atoms")
        return "\n".join(lines)


def fit_entropy_ip(
    seeds: Sequence[int], config: EntropyIPConfig | None = None
) -> EntropyIPModel:
    """Fit the full Entropy/IP pipeline on a seed set."""
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("Entropy/IP requires at least one seed")
    config = config or EntropyIPConfig()
    entropies = nybble_entropies(seeds)
    segments = segment_positions(
        entropies,
        threshold=config.segment_threshold,
        max_width=config.segment_max_width,
    )
    segment_models = [
        mine_segment_values(
            seg,
            seeds,
            heavy_hitter_fraction=config.heavy_hitter_fraction,
            max_exact_values=config.max_exact_values,
            gap_factor=config.gap_factor,
            split_mode=config.mining_split_mode,
        )
        for seg in segments
    ]
    chain = BayesNetwork(
        segment_models,
        seeds,
        alpha=config.laplace_alpha,
        structure=config.bayes_structure,
    )
    return EntropyIPModel(
        entropies=entropies,
        segments=segments,
        segment_models=segment_models,
        chain=chain,
        config=config,
        seed_count=len(seeds),
        _rng=random.Random(config.rng_seed),
    )


def run_entropy_ip(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    config: EntropyIPConfig | None = None,
    exclude_seeds: bool = False,
    telemetry: Telemetry | None = None,
) -> set[int]:
    """Fit Entropy/IP on ``seeds`` and generate ``budget`` targets.

    The counterpart of :func:`repro.core.run_6gen` for head-to-head
    comparisons (paper §7).  ``telemetry`` (optional) records the
    ``generate.targets_total`` counter and ``generate.targets_per_sec``
    gauge, mirroring the 6Gen run metrics.
    """
    seeds = [int(s) for s in seeds]
    model = fit_entropy_ip(seeds, config)
    exclude = seeds if exclude_seeds else ()
    tele = ensure(telemetry)
    start = time.perf_counter()
    with tele.span("generate.entropy_ip", budget=budget, seeds=len(seeds)):
        targets = model.generate(budget, exclude=exclude)
    if tele.enabled:
        tele.count("generate.targets_total", len(targets))
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            tele.gauge("generate.targets_per_sec", len(targets) / elapsed)
    return targets


def run_entropy_ip_columns(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    config: EntropyIPConfig | None = None,
    exclude_seeds: bool = False,
    telemetry: Telemetry | None = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Column-native :func:`run_entropy_ip` (packed ``(hi, lo)``)."""
    seeds = [int(s) for s in seeds]
    model = fit_entropy_ip(seeds, config)
    exclude = seeds if exclude_seeds else ()
    return model.generate_columns(budget, exclude=exclude, telemetry=telemetry)
