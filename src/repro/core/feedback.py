"""Scanner-integrated adaptive target generation (paper §8, future work).

The paper closes by arguing for "tight integration between the target
generation and the scanning processes": feed scan results back into the
generator, early-terminate regions that yield few hosts, test
high-hit-rate regions for aliasing mid-scan, and reallocate the freed
budget to promising networks.  This module implements that loop:

1. 6Gen proposes candidate regions (clusters) ranked by seed density;
2. the scanner probes each region in batches, tracking per-region hit
   rates;
3. a region is **early-terminated** when its hit rate stays below a
   floor after a trial quota, and **alias-halted** when its rate is
   near-perfect and the region's covering prefix answers random probes
   (the §6.2 test applied mid-scan);
4. unused budget flows to the next regions, and discovered hits can
   seed another generation round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ipv6.prefix import Prefix
from ..ipv6.range_ import NybbleRange
from ..scanner.engine import Scanner
from .sixgen import run_6gen


@dataclass
class AdaptiveConfig:
    """Tuning knobs for the feedback loop."""

    total_budget: int
    #: Probes sent to a region between hit-rate evaluations.
    batch_size: int = 128
    #: Probes a region gets before it can be early-terminated.
    trial_quota: int = 128
    #: Regions with a hit rate below this floor after the trial quota
    #: are abandoned (the §8 early-termination).
    low_rate_floor: float = 0.02
    #: Regions with a hit rate above this ceiling are alias-tested.
    alias_rate_ceiling: float = 0.95
    #: Number of generation→scan rounds (hits re-seed the next round).
    rounds: int = 2
    #: Per-round 6Gen budget cap as a multiple of remaining scan budget.
    generation_headroom: float = 1.0
    port: int = 80
    rng_seed: int | None = 0


@dataclass
class RegionOutcome:
    """What happened to one candidate region during the scan."""

    range: NybbleRange
    probes: int = 0
    hits: int = 0
    status: str = "pending"  # completed | early-terminated | alias-halted | budget-exhausted

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


@dataclass
class AdaptiveResult:
    """Outcome of a full adaptive scan."""

    hits: set[int] = field(default_factory=set)
    probes_used: int = 0
    regions: list[RegionOutcome] = field(default_factory=list)
    aliased_regions: list[NybbleRange] = field(default_factory=list)
    rounds_run: int = 0

    @property
    def hit_rate(self) -> float:
        return len(self.hits) / self.probes_used if self.probes_used else 0.0

    def regions_with_status(self, status: str) -> list[RegionOutcome]:
        return [r for r in self.regions if r.status == status]


def covering_prefix_of_range(range_: NybbleRange) -> Prefix:
    """The CIDR prefix spanned by a range's fixed leading nybbles."""
    fixed_count = 0
    value = 0
    for mask in range_.masks:
        if mask.bit_count() != 1:
            break
        value = (value << 4) | mask.bit_length() - 1
        fixed_count += 1
    length = 4 * fixed_count
    network = value << (128 - length) if length else 0
    return Prefix(network, length)


class AdaptiveScanner:
    """The §8 feedback loop: generate → scan → adapt → re-seed."""

    def __init__(self, scanner: Scanner, config: AdaptiveConfig):
        if config.total_budget < 0:
            raise ValueError(f"budget must be non-negative: {config.total_budget}")
        self.scanner = scanner
        self.config = config
        self.rng = random.Random(config.rng_seed)

    # -- alias testing --------------------------------------------------------
    def _charged_probe(self, addr: int, result: AdaptiveResult) -> bool | None:
        """One probe charged against the campaign budget.

        Returns the probe verdict, or ``None`` when the budget is
        already spent — every probe the adaptive loop sends, including
        the §6.2 alias-test probes, must land in ``probes_used`` or the
        run can silently exceed ``total_budget``.
        """
        if result.probes_used >= self.config.total_budget:
            return None
        result.probes_used += 1
        return self.scanner.probe(addr, self.config.port)

    def _region_is_aliased(
        self, range_: NybbleRange, result: AdaptiveResult
    ) -> bool:
        """The §6.2 random-probe test applied around a suspicious region.

        Probes random addresses *outside* the already-scanned range but
        inside a slightly wider prefix (one nybble up from the range's
        covering prefix).  A dense block of genuine hosts is silent out
        there; an aliased prefix answers everywhere.  Regions whose
        widened prefix would be shorter than /64 are never classified
        aliased — at that width the test would probe unrelated networks.

        Every probe is charged to ``result.probes_used``; if the budget
        runs out mid-test the verdict is inconclusive (``False``) so the
        run never exceeds its budget.
        """
        prefix = covering_prefix_of_range(range_).supernet(
            max(covering_prefix_of_range(range_).length - 4, 0)
        )
        if prefix.length < 64:
            return False
        for _ in range(3):
            probe_addr = None
            for _ in range(64):  # rejection-sample outside the range
                candidate = prefix.random_address(self.rng).value
                if not range_.contains(candidate):
                    probe_addr = candidate
                    break
            if probe_addr is None:
                return False  # the range fills its prefix: inconclusive
            responded = False
            for _ in range(3):
                verdict = self._charged_probe(probe_addr, result)
                if verdict is None:
                    return False  # budget exhausted: inconclusive
                if verdict:
                    responded = True
                    break
            if not responded:
                return False
        return True

    # -- region scanning ------------------------------------------------------
    def _iter_region_targets(
        self, range_: NybbleRange, cap: int, skip: set[int]
    ) -> Iterable[int]:
        """Up to ``cap`` shuffled not-yet-probed targets from a region.

        Already-probed addresses are excluded *before* the cap is
        applied: filtering afterwards would let overlap with earlier
        regions silently shrink this region's allotment below ``cap``
        even while unprobed addresses remain.
        """
        size = range_.size()
        if size <= 4 * cap or size <= 65536:
            targets = [t for t in range_.iter_ints() if t not in skip]
            self.rng.shuffle(targets)
            return targets[:cap]
        # Sparse region (> 4x the cap): rejection-sample around the
        # probed set.  Bounded passes keep a mostly-probed region from
        # spinning; each pass draws a fresh distinct sample.
        chosen: list[int] = []
        seen: set[int] = set()
        for _ in range(8):
            for t in range_.sample_ints(min(cap, size), self.rng):
                if t in skip or t in seen:
                    continue
                seen.add(t)
                chosen.append(t)
                if len(chosen) == cap:
                    return chosen
        return chosen

    def _scan_region(
        self,
        outcome: RegionOutcome,
        result: AdaptiveResult,
        skip: set[int],
    ) -> None:
        config = self.config
        remaining = config.total_budget - result.probes_used
        if remaining <= 0:
            outcome.status = "budget-exhausted"
            return
        targets = list(
            self._iter_region_targets(outcome.range, remaining, skip)
        )
        batch_start = 0
        while batch_start < len(targets):
            batch = targets[batch_start : batch_start + config.batch_size]
            batch_start += len(batch)
            for addr in batch:
                if result.probes_used >= config.total_budget:
                    outcome.status = "budget-exhausted"
                    return
                result.probes_used += 1
                outcome.probes += 1
                skip.add(addr)
                if self.scanner.probe(addr, config.port):
                    outcome.hits += 1
                    result.hits.add(addr)
            if outcome.probes >= config.trial_quota:
                if outcome.hit_rate < config.low_rate_floor:
                    outcome.status = "early-terminated"
                    return
                if outcome.hit_rate > config.alias_rate_ceiling:
                    if self._region_is_aliased(outcome.range, result):
                        outcome.status = "alias-halted"
                        result.aliased_regions.append(outcome.range)
                        return
        outcome.status = "completed"

    # -- driver ----------------------------------------------------------------
    def run(self, seeds: Sequence[int]) -> AdaptiveResult:
        """Run the full adaptive loop from an initial seed set."""
        config = self.config
        result = AdaptiveResult()
        current_seeds = sorted({int(s) for s in seeds})
        probed: set[int] = set(current_seeds)

        for round_index in range(config.rounds):
            remaining = config.total_budget - result.probes_used
            if remaining <= 0 or not current_seeds:
                break
            result.rounds_run += 1
            generation_budget = int(remaining * config.generation_headroom)
            generated = run_6gen(
                current_seeds, generation_budget, rng_seed=config.rng_seed
            )
            # Rank candidate regions by seed density, densest first —
            # the scan order that maximises early discoveries.
            regions = sorted(
                (c for c in generated.clusters if not c.is_singleton()),
                key=lambda c: (-c.density(), c.range.size()),
            )
            for cluster in regions:
                # Checked against the *live* aliased list: a region
                # alias-halted earlier in this same round must protect
                # its subset regions scheduled after it (a snapshot
                # taken before the loop would rescan them).
                if any(
                    cluster.range.is_subset(a)
                    for a in result.aliased_regions
                ):
                    continue  # never rescan inside known-aliased space
                outcome = RegionOutcome(range=cluster.range)
                result.regions.append(outcome)
                self._scan_region(outcome, result, probed)
                if result.probes_used >= config.total_budget:
                    break
            # Feedback: the non-aliased hits become next round's seeds.
            new_seeds = {
                h
                for h in result.hits
                if not any(r.contains(h) for r in result.aliased_regions)
            }
            next_seeds = sorted(set(current_seeds) | new_seeds)
            if next_seeds == current_seeds:
                break  # nothing learned; further rounds would repeat
            current_seeds = next_seeds
        return result


def run_adaptive(
    seeds: Sequence[int] | Iterable[int],
    scanner: Scanner,
    total_budget: int,
    **kwargs,
) -> AdaptiveResult:
    """Convenience wrapper around :class:`AdaptiveScanner`."""
    config = AdaptiveConfig(total_budget=total_budget, **kwargs)
    return AdaptiveScanner(scanner, config).run([int(s) for s in seeds])
