"""6Gen — the paper's target generation algorithm (§5).

Public entry point: :func:`run_6gen` (or the :class:`SixGen` class for
fine-grained control).  Clusters, growth records and budget ledgers are
exposed for analysis code and tests.
"""

from .budget import BudgetExceeded, ExactLedger, RangeSumLedger, make_ledger
from .candidates import SeedMatrix, find_candidates_python
from .cluster import Cluster, Growth
from .feedback import (
    AdaptiveConfig,
    AdaptiveResult,
    AdaptiveScanner,
    RegionOutcome,
    run_adaptive,
)
from .sixgen import SixGen, SixGenConfig, SixGenResult, run_6gen

__all__ = [
    "AdaptiveConfig",
    "AdaptiveResult",
    "AdaptiveScanner",
    "BudgetExceeded",
    "Cluster",
    "ExactLedger",
    "Growth",
    "RangeSumLedger",
    "RegionOutcome",
    "SeedMatrix",
    "SixGen",
    "SixGenConfig",
    "SixGenResult",
    "find_candidates_python",
    "make_ledger",
    "run_6gen",
    "run_adaptive",
]
