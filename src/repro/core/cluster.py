"""Cluster types for 6Gen (§5.4).

A cluster is defined by its *range* (the region of address space that
encompasses its seeds) and its *seed set*.  Following the paper's space
optimization (§5.5) we store only the range and the seed-set **size**;
the full seed set can be reconstructed on demand from the nybble tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from ..ipv6.nybble_tree import NybbleTree
from ..ipv6.range_ import NybbleRange


@dataclass
class Cluster:
    """One 6Gen cluster: an address range plus the count of seeds inside it."""

    range: NybbleRange
    seed_count: int

    def density(self) -> Fraction:
        """Seed density: seed-set size divided by range size (exact)."""
        return Fraction(self.seed_count, self.range.size())

    def is_singleton(self) -> bool:
        """True if the cluster never grew beyond its founding seed."""
        return self.range.is_singleton()

    def seeds(self, tree: NybbleTree) -> Iterator[int]:
        """Reconstruct the seed set from the seed tree (§5.5)."""
        return tree.iter_in_range(self.range)

    def __str__(self) -> str:
        return (
            f"Cluster({self.range.wildcard_text()}, seeds={self.seed_count}, "
            f"size={self.range.size()})"
        )


@dataclass(frozen=True)
class Growth:
    """A candidate growth of one cluster by its nearest seed(s).

    ``density`` and ``range_size`` are the *post-growth* values used for
    the paper's selection rule: maximise density, then prefer the
    smaller grown range, then break ties at random (via ``salt``, a
    random number drawn when the growth is evaluated, which keeps the
    comparison deterministic for a fixed RNG seed).
    """

    new_range: NybbleRange
    new_seed_count: int
    salt: float

    @property
    def range_size(self) -> int:
        return self.new_range.size()

    def density(self) -> Fraction:
        return Fraction(self.new_seed_count, self.new_range.size())

    def sort_key(self) -> tuple[Fraction, int, float]:
        """Key such that the best growth is the *maximum*.

        Higher density wins; among equal densities the smaller grown
        range wins (less budget); remaining ties break on the random
        salt.  The key is cached: the selection loop compares every
        cluster's cached growth each iteration, and rebuilding big-int
        Fractions dominated the profile before caching.
        """
        cached = getattr(self, "_key", None)
        if cached is None:
            cached = (self.density(), -self.new_range.size(), self.salt)
            object.__setattr__(self, "_key", cached)
        return cached


def growth_beats(a: Growth, b: Growth) -> bool:
    """True if growth ``a`` strictly beats ``b`` under the §5.4 rule.

    Exactly equivalent to ``a.sort_key() > b.sort_key()`` but compares
    densities by integer cross-multiplication instead of building
    :class:`~fractions.Fraction` objects — the selection loop and the
    vectorised kernel's heap perform millions of these comparisons.
    """
    a_size = a.new_range.size()
    b_size = b.new_range.size()
    left = a.new_seed_count * b_size
    right = b.new_seed_count * a_size
    if left != right:
        return left > right
    if a_size != b_size:
        return a_size < b_size
    return a.salt > b.salt
