"""Candidate-seed search for 6Gen (FindCandidateSeeds, §5.4).

For a cluster, the candidate seeds are all seeds *outside* the cluster's
range that are at the minimum nybble Hamming distance from it.  A seed
lies outside the range exactly when its distance is positive, so the
search reduces to "seeds at minimum positive distance".

Two interchangeable implementations are provided:

* :class:`SeedMatrix` — a vectorised search over an ``(N, 32)`` numpy
  array of seed nybbles; distance from a range is computed with one
  mask-membership test per position.
* :func:`find_candidates_python` — a pure-Python reference used in
  tests and as a fallback when numpy is unavailable.

Both return candidate seeds as indices into the seed list, which keeps
callers free to dedup by spanned range.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ipv6.distance import range_distance
from ..ipv6.nybble import NYBBLE_COUNT
from ..ipv6.range_ import NybbleRange


_LOW64 = (1 << 64) - 1

#: Powers of two for packing 32 per-position flags into one integer.
_POS_BITS = 1 << np.arange(NYBBLE_COUNT, dtype=np.uint64)

#: The least-significant bit of every nybble of a 64-bit word.
_NYBBLE_LSB = np.uint64(0x1111111111111111)


def _nonzero_nybbles(x: np.ndarray) -> np.ndarray:
    """Count non-zero nybbles of each uint64 (16 nybbles per word)."""
    one, two, three = np.uint64(1), np.uint64(2), np.uint64(3)
    collapsed = (x | (x >> one) | (x >> two) | (x >> three)) & _NYBBLE_LSB
    return np.bitwise_count(collapsed)

#: Shifts that extract the 16 nybbles of a 64-bit half, MSB first.
_HALF_SHIFTS = np.arange(60, -1, -4, dtype=np.uint64)


class SeedMatrix:
    """Seed nybbles in matrix form for vectorised distance queries."""

    def __init__(self, seeds: Sequence[int]):
        self._seeds = list(int(s) for s in seeds)
        n = len(self._seeds)
        # Python big-ints cannot be vectorised directly; split each seed
        # into two uint64 halves and unpack all 16 nybbles of each half
        # with one broadcast shift/mask instead of a 32-step inner loop.
        hi = np.fromiter((s >> 64 for s in self._seeds), dtype=np.uint64, count=n)
        lo = np.fromiter((s & _LOW64 for s in self._seeds), dtype=np.uint64, count=n)
        nybbles = np.empty((n, NYBBLE_COUNT), dtype=np.uint8)
        half = NYBBLE_COUNT // 2
        nybbles[:, :half] = (hi[:, np.newaxis] >> _HALF_SHIFTS) & 0xF
        nybbles[:, half:] = (lo[:, np.newaxis] >> _HALF_SHIFTS) & 0xF
        self._nybbles = nybbles
        self._hi = hi
        self._lo = lo

    def __len__(self) -> int:
        return len(self._seeds)

    @property
    def seeds(self) -> list[int]:
        """Seed address integers, in matrix row order."""
        return self._seeds

    def seed(self, index: int) -> int:
        return self._seeds[index]

    def distances_to_range(self, range_: NybbleRange) -> np.ndarray:
        """Nybble Hamming distance from the range to every seed.

        A position contributes zero when the seed's nybble is inside the
        range's value mask.
        """
        masks = np.array(range_.masks, dtype=np.uint32)
        member = (masks[np.newaxis, :] >> self._nybbles) & 1
        return (NYBBLE_COUNT - member.sum(axis=1)).astype(np.int64)

    def distances_to_seed(self, index: int) -> np.ndarray:
        """Nybble Hamming distance from one seed to every seed."""
        diff = self._nybbles != self._nybbles[index]
        return diff.sum(axis=1).astype(np.int64)

    def min_positive_candidates(self, range_: NybbleRange) -> tuple[int, list[int]]:
        """Minimum positive distance and the indices of seeds attaining it.

        Returns ``(0, [])`` when every seed already lies inside the
        range (no candidates: the cluster contains all seeds).
        """
        return self.min_positive_from(self.distances_to_range(range_))

    @staticmethod
    def min_positive_from(distances: np.ndarray) -> tuple[int, list[int]]:
        """Minimum positive distance and attaining indices of a vector."""
        positive = distances[distances > 0]
        if positive.size == 0:
            return 0, []
        min_dist = int(positive.min())
        indices = np.nonzero(distances == min_dist)[0]
        return min_dist, [int(i) for i in indices]

    def mismatch_bits(
        self, range_: NybbleRange, indices: Sequence[int]
    ) -> list[int]:
        """Per-candidate mismatch positions against a range, bit-packed.

        For each seed index, returns a 32-bit integer with bit ``p`` set
        when the seed's nybble at position ``p`` falls outside the
        range's value mask (the positions a span would widen) — the
        subset-test currency of the vectorised growth evaluation.
        """
        idx = np.fromiter(indices, dtype=np.intp, count=len(indices))
        sub = self._nybbles[idx]
        masks = np.array(range_.masks, dtype=np.uint32)
        outside = ((masks[np.newaxis, :] >> sub) & 1) == 0
        packed = outside.astype(np.uint64) @ _POS_BITS
        return [int(p) for p in packed]

    def all_pairs_min_candidates(
        self, block_rows: int | None = None
    ) -> list[tuple[int, list[int]]]:
        """Per-seed nearest-neighbour candidates, computed in one blocked pass.

        For every seed this returns exactly what
        :meth:`min_positive_candidates` returns for that seed's singleton
        range — the minimum positive nybble distance to any other seed
        and the ascending indices attaining it — but the N independent
        ``(N, 32)`` scans collapse into ``N / block_rows`` broadcast
        comparisons, which is what makes 6Gen's singleton initialisation
        O(N²) in vector ops instead of O(N²) in Python/numpy calls.
        """
        n = len(self._seeds)
        if n == 0:
            return []
        if block_rows is None:
            # ~16 MB of uint64 temporaries per block.
            block_rows = max(1, (1 << 21) // max(1, n))
        sentinel = NYBBLE_COUNT + 1
        out: list[tuple[int, list[int]]] = []
        for start in range(0, n, block_rows):
            # Nybble Hamming distance via the packed 64-bit halves: XOR,
            # collapse each nybble to its low bit, popcount — ~20 word
            # ops per pair instead of 32 byte compares plus a reduction.
            stop = min(start + block_rows, n)
            diff_hi = _nonzero_nybbles(self._hi[start:stop, np.newaxis] ^ self._hi)
            diff_lo = _nonzero_nybbles(self._lo[start:stop, np.newaxis] ^ self._lo)
            diff = (diff_hi + diff_lo).astype(np.int16)
            # Zero distances (the seed itself, and any duplicates) are
            # not candidates: mask them past the maximum distance.
            diff[diff == 0] = sentinel
            mins = diff.min(axis=1)
            for r in range(diff.shape[0]):
                min_dist = int(mins[r])
                if min_dist >= sentinel:
                    out.append((0, []))
                else:
                    indices = np.nonzero(diff[r] == min_dist)[0]
                    out.append((min_dist, [int(i) for i in indices]))
        return out

    def widen_distances_inplace(
        self, distances: np.ndarray, old: NybbleRange, new: NybbleRange
    ) -> None:
        """Update a cached range-distance vector after a cluster growth.

        ``distances`` must be the vector previously computed for ``old``
        (via :meth:`distances_to_range`); ``new`` must be a widening of
        ``old`` (cluster growth only ever widens masks).  Only positions
        whose value mask actually changed are touched, and at a changed
        position a seed's distance can only drop by one — when its
        nybble is among the newly allowed values.
        """
        nyb = self._nybbles
        for pos, (old_mask, new_mask) in enumerate(zip(old.masks, new.masks)):
            gained = new_mask & ~old_mask
            if not gained:
                continue
            hit = (np.uint32(gained) >> nyb[:, pos]) & 1
            np.subtract(distances, 1, out=distances, where=hit.astype(bool))


def find_candidates_python(
    range_: NybbleRange, seeds: Sequence[int]
) -> tuple[int, list[int]]:
    """Pure-Python reference for :meth:`SeedMatrix.min_positive_candidates`.

    Returns the minimum positive distance and the indices of the seeds
    at that distance; ``(0, [])`` when all seeds lie inside the range.
    """
    min_dist = NYBBLE_COUNT + 1
    indices: list[int] = []
    for i, seed in enumerate(seeds):
        dist = range_distance(range_, seed)
        if dist == 0:
            continue
        if dist < min_dist:
            min_dist = dist
            indices = [i]
        elif dist == min_dist:
            indices.append(i)
    if not indices:
        return 0, []
    return min_dist, indices
