"""Candidate-seed search for 6Gen (FindCandidateSeeds, §5.4).

For a cluster, the candidate seeds are all seeds *outside* the cluster's
range that are at the minimum nybble Hamming distance from it.  A seed
lies outside the range exactly when its distance is positive, so the
search reduces to "seeds at minimum positive distance".

Two interchangeable implementations are provided:

* :class:`SeedMatrix` — a vectorised search over an ``(N, 32)`` numpy
  array of seed nybbles; distance from a range is computed with one
  mask-membership test per position.
* :func:`find_candidates_python` — a pure-Python reference used in
  tests and as a fallback when numpy is unavailable.

Both return candidate seeds as indices into the seed list, which keeps
callers free to dedup by spanned range.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ipv6.distance import range_distance
from ..ipv6.nybble import NYBBLE_COUNT
from ..ipv6.range_ import NybbleRange


class SeedMatrix:
    """Seed nybbles in matrix form for vectorised distance queries."""

    def __init__(self, seeds: Sequence[int]):
        self._seeds = list(int(s) for s in seeds)
        n = len(self._seeds)
        nybbles = np.zeros((n, NYBBLE_COUNT), dtype=np.uint8)
        for row, value in enumerate(self._seeds):
            for i in range(NYBBLE_COUNT - 1, -1, -1):
                nybbles[row, i] = value & 0xF
                value >>= 4
        self._nybbles = nybbles

    def __len__(self) -> int:
        return len(self._seeds)

    @property
    def seeds(self) -> list[int]:
        """Seed address integers, in matrix row order."""
        return self._seeds

    def seed(self, index: int) -> int:
        return self._seeds[index]

    def distances_to_range(self, range_: NybbleRange) -> np.ndarray:
        """Nybble Hamming distance from the range to every seed.

        A position contributes zero when the seed's nybble is inside the
        range's value mask.
        """
        masks = np.array(range_.masks, dtype=np.uint32)
        member = (masks[np.newaxis, :] >> self._nybbles) & 1
        return (NYBBLE_COUNT - member.sum(axis=1)).astype(np.int64)

    def distances_to_seed(self, index: int) -> np.ndarray:
        """Nybble Hamming distance from one seed to every seed."""
        diff = self._nybbles != self._nybbles[index]
        return diff.sum(axis=1).astype(np.int64)

    def min_positive_candidates(self, range_: NybbleRange) -> tuple[int, list[int]]:
        """Minimum positive distance and the indices of seeds attaining it.

        Returns ``(0, [])`` when every seed already lies inside the
        range (no candidates: the cluster contains all seeds).
        """
        distances = self.distances_to_range(range_)
        positive = distances[distances > 0]
        if positive.size == 0:
            return 0, []
        min_dist = int(positive.min())
        indices = np.nonzero(distances == min_dist)[0]
        return min_dist, [int(i) for i in indices]


def find_candidates_python(
    range_: NybbleRange, seeds: Sequence[int]
) -> tuple[int, list[int]]:
    """Pure-Python reference for :meth:`SeedMatrix.min_positive_candidates`.

    Returns the minimum positive distance and the indices of the seeds
    at that distance; ``(0, [])`` when all seeds lie inside the range.
    """
    min_dist = NYBBLE_COUNT + 1
    indices: list[int] = []
    for i, seed in enumerate(seeds):
        dist = range_distance(range_, seed)
        if dist == 0:
            continue
        if dist < min_dist:
            min_dist = dist
            indices = [i]
        elif dist == min_dist:
            indices.append(i)
    if not indices:
        return 0, []
    return min_dist, indices
