"""The 6Gen target generation algorithm (paper §5).

6Gen clusters similar seeds into dense address-space regions and emits
the addresses within those regions as scan targets, constrained by a
probe budget.  The implementation follows Algorithm 1 plus the two §5.5
optimizations:

* per-cluster growth caching — clusters grow independently, so a
  cluster's best growth only needs recomputing after that cluster
  itself grows;
* a 16-ary nybble tree for reconstructing/counting a grown cluster's
  seed set, instead of scanning the full seed list.

Selection rule per iteration (§5.4): among all (cluster, candidate
seed) growth options, take the one with the highest post-growth seed
density; ties prefer the smaller grown range (budget conservation);
remaining ties break at random.

Termination: the budget is consumed exactly (an unaffordable best
growth is satisfied partially by random sampling from its new region),
or all seeds end up in a single cluster.  Note a deliberate deviation
from the *simplified* pseudocode: Algorithm 1 as printed discards the
growth that would unify all seeds, which would prevent any 2-seed
network from ever growing a cluster — contradicting both the prose
("iterates until … all seeds belong to a single cluster") and Figure 5b
(most 2–10-seed prefixes have grown clusters).  We apply the unifying
growth (budget permitting) and then stop.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..ipv6.addrplane import ColumnDeduper, concat_columns, pack, unpack
from ..ipv6.nybble import FULL_MASK, NYBBLE_COUNT, popcount16
from ..ipv6.nybble_tree import NybbleTree
from ..ipv6.range_ import NybbleRange, expand_range_arr
from ..telemetry.spans import Telemetry, ensure
from .budget import BudgetExceeded, ExactLedger, make_ledger
from .candidates import SeedMatrix, find_candidates_python
from .cluster import Cluster, Growth, growth_beats


@dataclass
class SixGenConfig:
    """Tuning knobs for a 6Gen run.

    budget
        Probe budget: the maximum number of *new* (non-seed) addresses
        the clusters may cover.
    loose
        Range granularity (§5.3): ``True`` for full-wildcard nybbles
        (the paper's default after §6.3), ``False`` for tight
        value-set nybbles.
    ledger
        ``"exact"`` for unique-address budget accounting (§5.4),
        ``"range-sum"`` for the simplified Algorithm 1 cost model.
    use_seed_matrix
        Use the vectorised numpy candidate search (§5.5 analogue of the
        paper's OpenMP parallelism); the pure-Python path is kept for
        testing and tiny inputs.
    use_growth_cache
        Cache each cluster's best growth between iterations (§5.5).
        Disabling recomputes every cluster every iteration (the naive
        algorithm) — used by the caching ablation benchmark.
    use_vector_kernel
        Run the batched/incremental hot path: one blocked all-pairs
        numpy pass for singleton initialisation, per-cluster distance
        vectors updated only at mask positions that widened, batched
        nybble-tree counting of candidate spans, and heap-based growth
        selection.  Bit-for-bit identical output to the reference path
        for a fixed ``rng_seed``; requires ``use_seed_matrix``.  The
        reference path remains the correctness oracle for parity tests.
    rng_seed
        Seed for the tie-breaking / sampling RNG, for reproducible runs.
    """

    budget: int
    loose: bool = True
    ledger: str = "exact"
    use_seed_matrix: bool = True
    use_growth_cache: bool = True
    use_vector_kernel: bool = True
    rng_seed: int | None = 0


@dataclass
class SixGenResult:
    """Outcome of a 6Gen run."""

    clusters: list[Cluster]
    seed_count: int
    budget_limit: int
    budget_used: int
    iterations: int
    sampled: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    _targets: set[int] | None = None
    # Cached densest-first (hi, lo) columns.  Populated by
    # target_columns_by_density() and by the parallel per-prefix
    # transport (see repro.analysis.grouping), which ships columns via
    # shared memory instead of pickling the _targets set.
    _columns: "tuple[np.ndarray, np.ndarray] | None" = field(
        default=None, compare=False, repr=False
    )

    def singleton_clusters(self) -> list[Cluster]:
        """Clusters that never grew past their founding seed (Fig. 5a)."""
        return [c for c in self.clusters if c.is_singleton()]

    def grown_clusters(self) -> list[Cluster]:
        """Clusters that grew to cover a region (Fig. 5b)."""
        return [c for c in self.clusters if not c.is_singleton()]

    def target_count(self) -> int:
        """Number of distinct generated targets (seeds included)."""
        return len(self.target_set())

    def target_set(self) -> set[int]:
        """All distinct generated target addresses, seeds included."""
        if self._targets is None:
            if self._columns is not None:
                # Rebuilt from columns: the parallel per-prefix path
                # ships (hi, lo) columns and drops the big-int set.
                self._targets = set(unpack(*self._columns))
            else:
                targets: set[int] = set(self.sampled)
                for cluster in self.clusters:
                    targets.update(cluster.range.iter_ints())
                self._targets = targets
        return self._targets

    def iter_targets(self) -> Iterator[int]:
        """Iterate distinct generated targets (order unspecified)."""
        return iter(self.target_set())

    def new_targets(self, seeds: Iterable[int]) -> set[int]:
        """Generated targets excluding the given (seed) addresses."""
        return self.target_set() - set(int(s) for s in seeds)

    def iter_targets_by_density(self) -> Iterator[int]:
        """Stream targets densest-cluster-first (for partial scans).

        Clusters are emitted in descending seed density (ties: smaller
        range first), deduplicating overlap; the final-growth sampled
        addresses come last.  Cutting this stream at any point yields
        the best available target list of that size under 6Gen's own
        density assumption.

        When the run used the exact ledger its covered set (already the
        full deduplicated target set) bounds the work: each address is
        struck off as emitted and the walk stops as soon as every
        target has been yielded, so fully-overlapped trailing cluster
        ranges are never re-materialised.
        """
        ordered = sorted(
            self.clusters, key=lambda c: (-c.density(), c.range.size())
        )
        if self._targets is not None:
            remaining = set(self._targets)
            for cluster in ordered:
                if not remaining:
                    return
                for addr in cluster.range.iter_ints():
                    if addr in remaining:
                        remaining.discard(addr)
                        yield addr
            for addr in self.sampled:
                if addr in remaining:
                    remaining.discard(addr)
                    yield addr
            return
        emitted: set[int] = set()
        for cluster in ordered:
            for addr in cluster.range.iter_ints():
                if addr not in emitted:
                    emitted.add(addr)
                    yield addr
        for addr in self.sampled:
            if addr not in emitted:
                emitted.add(addr)
                yield addr

    def target_columns(self) -> "tuple[np.ndarray, np.ndarray]":
        """All distinct targets as packed ``(hi, lo)`` uint64 columns.

        Generation order: clusters as stored, each ascending, then the
        final-growth sampled addresses; overlap deduplicated first-seen.
        Covers exactly :meth:`target_set` without boxing any ints.
        """
        dedupe = ColumnDeduper()
        expanded = [expand_range_arr(c.range) for c in self.clusters]
        chunks = [dedupe.add(*concat_columns(expanded))]
        if self.sampled:
            chunks.append(dedupe.add(*pack(self.sampled)))
        return concat_columns(chunks)

    def target_columns_by_density(self) -> "tuple[np.ndarray, np.ndarray]":
        """Packed-column form of :meth:`iter_targets_by_density`.

        Emits the exact scalar sequence — densest cluster first, ties
        broken by smaller range, sampled addresses last, first-seen
        dedupe throughout — as ``(hi, lo)`` columns built by vectorised
        range expansion.  When the run used the exact budget ledger,
        its covered count bounds the walk the same way the scalar
        generator's ``remaining`` set does: expansion stops at the
        first cluster boundary where every target has been emitted.

        The result is cached (the parallel per-prefix transport reuses
        it); callers that mutate the arrays must copy first.
        """
        if self._columns is not None:
            return self._columns
        ordered = sorted(
            self.clusters, key=lambda c: (-c.density(), c.range.size())
        )
        total = len(self._targets) if self._targets is not None else None
        dedupe = ColumnDeduper()
        chunks = []
        # Clusters expand into small per-cluster arrays; feeding each
        # one to the deduper separately would drown in per-call
        # overhead, so they accumulate into batches first.  Batch
        # boundaries are invisible in the output (first-seen order is
        # chunking-independent); they only coarsen the early stop,
        # which skips work but never changes the emitted sequence —
        # clusters past the point where every target has been seen
        # contribute nothing but duplicates.
        pending: list = []
        pending_size = 0
        for cluster in ordered:
            if (
                total is not None
                and not pending
                and len(dedupe) >= total
            ):
                break
            cols = expand_range_arr(cluster.range)
            pending.append(cols)
            pending_size += len(cols[0])
            if pending_size >= 65536:
                chunks.append(dedupe.add(*concat_columns(pending)))
                pending, pending_size = [], 0
        if pending:
            chunks.append(dedupe.add(*concat_columns(pending)))
        if self.sampled and (total is None or len(dedupe) < total):
            chunks.append(dedupe.add(*pack(self.sampled)))
        columns = concat_columns(chunks)
        self._columns = columns
        return columns

    def dynamic_nybble_indices(self) -> set[int]:
        """Union of dynamic nybble positions across cluster ranges (Fig. 6)."""
        indices: set[int] = set()
        for cluster in self.clusters:
            indices.update(cluster.range.dynamic_positions())
        return indices


def _nybble_value_mask(mbits: int) -> int:
    """Expand a 32-bit position mask to 0xF at each set position's nybble."""
    vmask = 0
    while mbits:
        low = mbits & -mbits
        vmask |= 0xF << (4 * (low.bit_length() - 1))
        mbits ^= low
    return vmask


class _HeapEntry:
    """Max-heap wrapper for (growth, cluster) pairs with lazy invalidation.

    ``heapq`` builds min-heaps, so "less than" here means "strictly
    better growth"; entries are invalidated implicitly when the owning
    cluster's cached best growth is replaced or the cluster is deleted.
    """

    __slots__ = ("growth", "cid")

    def __init__(self, growth: Growth, cid: int):
        self.growth = growth
        self.cid = cid

    def __lt__(self, other: "_HeapEntry") -> bool:
        return growth_beats(self.growth, other.growth)


class SixGen:
    """A single 6Gen run over one seed set (typically one routed prefix)."""

    def __init__(
        self,
        seeds: Sequence[int],
        config: SixGenConfig,
        telemetry: Telemetry | None = None,
    ):
        self.config = config
        # Passive observation only: the telemetry object never touches
        # ``self.rng`` or reorders candidate evaluation, so results are
        # bit-identical with telemetry on or off.
        self.telemetry = ensure(telemetry)
        #: Candidate evaluations performed (plain int on the hot path;
        #: flushed to telemetry counters once per run).
        self.candidate_scans = 0
        self.seeds = sorted(set(int(s) for s in seeds))
        self.rng = random.Random(config.rng_seed)
        self.tree = NybbleTree(self.seeds)
        self.matrix = SeedMatrix(self.seeds) if config.use_seed_matrix else None
        self.ledger = make_ledger(config.ledger, config.budget, self.seeds)
        self._clusters: dict[int, Cluster] = {}
        self._best: dict[int, Growth | None] = {}
        self._singleton_by_seed: dict[int, int] = {}
        self._next_id = 0
        self.iterations = 0
        self.vectorised = config.use_vector_kernel and self.matrix is not None
        #: Cached distance-to-every-seed vectors, keyed by cluster id.
        #: Populated lazily (clusters that never grow never need one) and
        #: updated incrementally on growth: masks only widen, so only the
        #: changed positions can lower a seed's distance.
        self._dist: dict[int, np.ndarray] = {}
        #: Packed 512-bit mask signatures of grown clusters, for O(1)
        #: encapsulation checks in the vectorised path.
        self._grown_sigs: dict[int, int] = {}
        # Heap selection needs stable cached growths between iterations;
        # the no-cache ablation redraws every growth each iteration, so
        # it keeps the linear scan.
        self._use_heap = self.vectorised and config.use_growth_cache
        self._heap: list[_HeapEntry] = []

    # -- internals ---------------------------------------------------------
    def _find_candidates(self, range_: NybbleRange) -> list[int]:
        """Indices of seeds at minimum positive distance from the range."""
        if self.matrix is not None:
            _, indices = self.matrix.min_positive_candidates(range_)
        else:
            _, indices = find_candidates_python(range_, self.seeds)
        return indices

    def _set_best(self, cid: int, growth: Growth | None) -> None:
        """Record a cluster's cached best growth (and index it for the heap)."""
        self._best[cid] = growth
        if self._use_heap and growth is not None:
            heapq.heappush(self._heap, _HeapEntry(growth, cid))

    def _evaluate(self, cluster: Cluster) -> Growth | None:
        """Best growth for one cluster, or ``None`` if it holds all seeds.

        For each candidate seed the grown range may encapsulate further
        seeds; the post-growth seed-set size is counted with the nybble
        tree, so absorbed seeds (candidate or not) are included.
        """
        indices = self._find_candidates(cluster.range)
        self.candidate_scans += len(indices)
        if not indices:
            return None
        best: Growth | None = None
        seen_ranges: set[tuple[int, ...]] = set()
        for idx in indices:
            new_range = cluster.range.span(self.seeds[idx], loose=self.config.loose)
            if new_range.masks in seen_ranges:
                continue
            seen_ranges.add(new_range.masks)
            count = self.tree.count_in_range(new_range)
            growth = Growth(new_range, count, self.rng.random())
            if best is None or growth.sort_key() > best.sort_key():
                best = growth
        return best

    # -- vectorised kernel -------------------------------------------------
    def _best_growth_for(
        self,
        range_: NybbleRange,
        seed_count: int,
        indices: Sequence[int],
        mbits_list: list[int] | None = None,
        vvals: list[int] | None = None,
    ) -> Growth | None:
        """Best growth of a range by the given candidate seed indices.

        The vectorised analogue of :meth:`_evaluate`'s candidate loop:
        span masks are built directly from the matrix's nybble rows with
        the range size tracked incrementally (skipping range
        re-validation), and comparisons use exact integer
        cross-multiplication.  Candidate order, span dedup, and the RNG
        salt sequence are identical to the reference path.

        ``indices`` must be *all* seeds at the minimum positive distance
        ``d`` from the range (``seed_count`` is the range's current seed
        count).  That minimality gives an exact counting shortcut: a
        seed inside a candidate's span has distance ≤ d from the range,
        hence distance 0 (already counted) or exactly d (a candidate).
        So each span's post-growth count is ``seed_count`` plus the
        candidates lying inside it — an O(C²) bit-mask check instead of
        per-span nybble-tree walks.  Mismatch positions are packed into
        one int (and mismatch values into another for tight mode), so
        "candidate k inside candidate c's span" is one subset test.
        Large candidate sets fall back to the shared-traversal
        :meth:`~repro.ipv6.nybble_tree.NybbleTree.count_in_ranges`.

        ``mbits_list`` / ``vvals`` may carry precomputed mismatch bits
        and (tight mode) packed mismatch nybble values for each
        candidate — the init path derives them from seed XORs without
        any numpy round-trip.
        """
        self.candidate_scans += len(indices)
        if not indices:
            return None
        loose = self.config.loose
        base_masks = range_.masks
        base_size = range_.size()
        if mbits_list is None:
            mbits_list = self.matrix.mismatch_bits(range_, indices)
        spans: list[NybbleRange] = []
        span_bits: list[tuple[int, int]] = []
        seen: set = set()
        if loose:
            # A loose span is fully determined by the set of widened
            # positions, so the packed mismatch bits are the dedup key
            # and duplicate candidates never build a mask list at all.
            for c in range(len(indices)):
                mbits = mbits_list[c]
                if mbits in seen:
                    continue
                seen.add(mbits)
                masks = list(base_masks)
                size = base_size
                m = mbits
                while m:
                    low = m & -m
                    m ^= low
                    pos = low.bit_length() - 1
                    size = size // popcount16(masks[pos]) * 16
                    masks[pos] = FULL_MASK
                spans.append(NybbleRange._make(tuple(masks), size))
                span_bits.append((mbits, 0))
        else:
            # Tight spans also depend on the candidate's nybble values
            # at the widened positions; pack those alongside (nybble of
            # position p lives at bits 4p..4p+3).
            if vvals is None:
                vvals = []
                for c, idx in enumerate(indices):
                    seed = self.seeds[idx]
                    m = mbits_list[c]
                    vval = 0
                    while m:
                        low = m & -m
                        m ^= low
                        pos = low.bit_length() - 1
                        nybble = (seed >> (4 * (NYBBLE_COUNT - 1 - pos))) & 0xF
                        vval |= nybble << (4 * pos)
                    vvals.append(vval)
            for c in range(len(indices)):
                mbits = mbits_list[c]
                vval = vvals[c]
                key = (mbits, vval)
                if key in seen:
                    continue
                seen.add(key)
                masks = list(base_masks)
                size = base_size
                m = mbits
                while m:
                    low = m & -m
                    m ^= low
                    pos = low.bit_length() - 1
                    count = popcount16(masks[pos])
                    masks[pos] |= 1 << ((vval >> (4 * pos)) & 0xF)
                    size = size // count * (count + 1)
                spans.append(NybbleRange._make(tuple(masks), size))
                span_bits.append(key)
        if len(indices) > 64:
            counts = self.tree.count_in_ranges(spans)
        elif loose:
            counts = [
                seed_count + sum(1 for m in mbits_list if not m & ~c_mbits)
                for c_mbits, _ in span_bits
            ]
        else:
            counts = []
            for c_mbits, c_vval in span_bits:
                inside = 0
                for k, k_mbits in enumerate(mbits_list):
                    if not k_mbits & ~c_mbits:
                        k_vval = vvals[k]
                        vmask = _nybble_value_mask(k_mbits)
                        if c_vval & vmask == k_vval:
                            inside += 1
                counts.append(seed_count + inside)
        best: Growth | None = None
        for span, span_count in zip(spans, counts):
            growth = Growth(span, span_count, self.rng.random())
            if best is None or growth_beats(growth, best):
                best = growth
        return best

    def _evaluate_vector(self, cid: int) -> Growth | None:
        """Vectorised :meth:`_evaluate` using the cached distance vector."""
        cluster = self._clusters[cid]
        vec = self._dist.get(cid)
        if vec is None:
            vec = self.matrix.distances_to_range(cluster.range).astype(np.int16)
            self._dist[cid] = vec
        _, indices = SeedMatrix.min_positive_from(vec)
        return self._best_growth_for(cluster.range, cluster.seed_count, indices)

    def _widen_distance_cache(
        self, cid: int, old_range: NybbleRange, new_range: NybbleRange
    ) -> None:
        """Bring a cluster's distance vector forward across one growth."""
        vec = self._dist.get(cid)
        if vec is None:
            vec = self.matrix.distances_to_range(old_range).astype(np.int16)
        self.matrix.widen_distances_inplace(vec, old_range, new_range)
        self._dist[cid] = vec

    # -- algorithm steps ---------------------------------------------------
    def _init_clusters(self) -> None:
        """One singleton cluster per seed (Function InitClusters)."""
        for seed in self.seeds:
            cid = self._next_id
            self._next_id += 1
            self._clusters[cid] = Cluster(NybbleRange.from_address(seed), 1)
            self._singleton_by_seed[seed] = cid
        if self.vectorised:
            # Cluster ids were assigned in seed (= matrix row) order, so
            # row i's nearest-neighbour candidates belong to cluster i.
            # A singleton's mask holds exactly its own nybbles, so each
            # candidate's mismatch positions (and values, for tight
            # mode) fall straight out of the integer XOR of the two
            # seeds — no per-singleton numpy calls at all.
            all_candidates = self.matrix.all_pairs_min_candidates()
            seeds = self.seeds
            tight = not self.config.loose
            for cid, (_, indices) in enumerate(all_candidates):
                seed_i = seeds[cid]
                mbits_list: list[int] = []
                vvals: list[int] | None = [] if tight else None
                for j in indices:
                    x = seed_i ^ seeds[j]
                    mbits = 0
                    vval = 0
                    while x:
                        b = x & -x
                        nyb_from_lsb = (b.bit_length() - 1) >> 2
                        x &= ~(0xF << (4 * nyb_from_lsb))
                        pos = NYBBLE_COUNT - 1 - nyb_from_lsb
                        mbits |= 1 << pos
                        if tight:
                            nybble = (seeds[j] >> (4 * nyb_from_lsb)) & 0xF
                            vval |= nybble << (4 * pos)
                    mbits_list.append(mbits)
                    if tight:
                        vvals.append(vval)
                self._set_best(
                    cid,
                    self._best_growth_for(
                        self._clusters[cid].range,
                        1,
                        indices,
                        mbits_list=mbits_list,
                        vvals=vvals,
                    ),
                )
        else:
            for cid, cluster in self._clusters.items():
                self._set_best(cid, self._evaluate(cluster))

    def _select_growth(self) -> tuple[int, Growth] | None:
        """The best (cluster, growth) pair this iteration, if any.

        The vectorised kernel keeps every cached growth in a lazily
        invalidated max-heap: stale entries (cluster deleted, or its
        best growth since replaced) are popped on sight, so selection is
        O(log n) amortised instead of a full scan with exact-fraction
        comparisons.  Full sort keys are unique in practice (the random
        salt breaks ties), so both structures select the same growth.
        """
        if self._use_heap:
            heap = self._heap
            while heap:
                entry = heap[0]
                if self._best.get(entry.cid) is entry.growth:
                    return entry.cid, entry.growth
                heapq.heappop(heap)
            return None
        best_cid: int | None = None
        best_growth: Growth | None = None
        for cid, growth in self._best.items():
            if growth is None:
                continue
            if best_growth is None or growth.sort_key() > best_growth.sort_key():
                best_cid, best_growth = cid, growth
        if best_cid is None or best_growth is None:
            return None
        return best_cid, best_growth

    def _apply_growth(self, cid: int, growth: Growth) -> None:
        """Replace the cluster, drop encapsulated clusters, refresh caches."""
        old_range = self._clusters[cid].range
        self._clusters[cid] = Cluster(growth.new_range, growth.new_seed_count)
        # Encapsulated singleton clusters are exactly the singletons
        # whose founding seed lies in the grown range — found via the
        # seed trie instead of an is_subset scan over every cluster.
        # (The grown cluster itself also leaves the singleton map here.)
        doomed: list[int] = []
        if self.vectorised:
            # The freshly widened distance vector knows which seeds the
            # grown range absorbed (distance zero) — no trie walk needed.
            self._widen_distance_cache(cid, old_range, growth.new_range)
            seeds = self.matrix.seeds
            for row in np.nonzero(self._dist[cid] == 0)[0].tolist():
                oid = self._singleton_by_seed.pop(seeds[row], None)
                if oid is not None and oid != cid:
                    doomed.append(oid)
            # Each grown cluster's masks are packed into one 512-bit
            # signature (32 disjoint 16-bit fields), so the per-position
            # subset test collapses to a single ``sig & ~new_sig == 0``.
            new_sig = 0
            for mask in growth.new_range.masks:
                new_sig = (new_sig << 16) | mask
            for oid, sig in self._grown_sigs.items():
                if oid != cid and not sig & ~new_sig:
                    doomed.append(oid)
            self._grown_sigs[cid] = new_sig
        else:
            for seed in self.tree.iter_in_range(growth.new_range):
                oid = self._singleton_by_seed.pop(seed, None)
                if oid is not None and oid != cid:
                    doomed.append(oid)
            # Grown clusters are few; check them directly.
            for oid, other in self._clusters.items():
                if oid != cid and not other.range.is_singleton():
                    if other.range.is_subset(growth.new_range):
                        doomed.append(oid)
        for oid in doomed:
            del self._clusters[oid]
            del self._best[oid]
            self._dist.pop(oid, None)
            self._grown_sigs.pop(oid, None)
        if self.vectorised:
            # (the distance cache was already widened above)
            if self.config.use_growth_cache:
                self._set_best(cid, self._evaluate_vector(cid))
            else:
                for oid in self._clusters:
                    self._set_best(oid, self._evaluate_vector(oid))
        elif self.config.use_growth_cache:
            self._set_best(cid, self._evaluate(self._clusters[cid]))
        else:
            for oid, cluster in self._clusters.items():
                self._set_best(oid, self._evaluate(cluster))

    # -- driver --------------------------------------------------------------
    def run(self) -> SixGenResult:
        """Execute 6Gen to completion and return the clusters and targets."""
        tele = self.telemetry
        start = time.perf_counter()
        sampled: list[int] = []
        with tele.span(
            "sixgen", seeds=len(self.seeds), budget=self.config.budget
        ):
            if self.seeds:
                self._init_clusters()
                while True:
                    selected = self._select_growth()
                    if selected is None:
                        break  # every remaining cluster already holds all seeds
                    cid, growth = selected
                    old_range = self._clusters[cid].range
                    try:
                        self.ledger.try_charge(growth.new_range, old_range)
                    except BudgetExceeded:
                        sampled = self.ledger.charge_partial(
                            growth.new_range, old_range, self.rng
                        )
                        break
                    self.iterations += 1
                    self._apply_growth(cid, growth)
                    if growth.new_seed_count == len(self.seeds):
                        break  # all seeds unified into a single cluster

        result = SixGenResult(
            clusters=list(self._clusters.values()),
            seed_count=len(self.seeds),
            budget_limit=self.config.budget,
            budget_used=self.ledger.used,
            iterations=self.iterations,
            sampled=sampled,
            elapsed_seconds=time.perf_counter() - start,
        )
        if isinstance(self.ledger, ExactLedger):
            # The exact ledger already knows the deduplicated target set.
            result._targets = set(self.ledger.covered())
        if tele.enabled:
            grown = sum(1 for c in result.clusters if not c.is_singleton())
            tele.count("sixgen.runs")
            tele.count(
                "sixgen.vector_runs" if self.vectorised
                else "sixgen.reference_runs"
            )
            tele.count("sixgen.seeds", result.seed_count)
            tele.count("sixgen.iterations", result.iterations)
            tele.count("sixgen.clusters_grown", grown)
            tele.count("sixgen.clusters_final", len(result.clusters))
            tele.count("sixgen.candidate_scans", self.candidate_scans)
            tele.count("sixgen.budget_used", result.budget_used)
            tele.count("sixgen.sampled_targets", len(result.sampled))
            tele.observe("sixgen.run_seconds", result.elapsed_seconds)
            if result._targets is not None:
                # generate.* metrics: the generation plane's output
                # rate, comparable across 6Gen and Entropy/IP runs.
                targets_total = len(result._targets)
                tele.count("generate.targets_total", targets_total)
                if result.elapsed_seconds > 0:
                    tele.gauge(
                        "generate.targets_per_sec",
                        targets_total / result.elapsed_seconds,
                    )
            tele.event(
                "sixgen_summary",
                {
                    "seeds": result.seed_count,
                    "iterations": result.iterations,
                    "clusters": len(result.clusters),
                    "clusters_grown": grown,
                    "budget_used": result.budget_used,
                    "budget_limit": result.budget_limit,
                    "candidate_scans": self.candidate_scans,
                    "kernel": "vector" if self.vectorised else "reference",
                    "seconds": round(result.elapsed_seconds, 6),
                },
            )
        return result


def run_6gen(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    loose: bool = True,
    ledger: str = "exact",
    use_seed_matrix: bool = True,
    use_growth_cache: bool = True,
    use_vector_kernel: bool = True,
    rng_seed: int | None = 0,
    telemetry: Telemetry | None = None,
) -> SixGenResult:
    """Convenience wrapper: run 6Gen on a seed set with a probe budget.

    ``seeds`` may be address integers or :class:`~repro.ipv6.IPv6Addr`
    instances.  Returns a :class:`SixGenResult`; call
    :meth:`~SixGenResult.target_set` for the generated scan targets.
    ``telemetry`` (optional) records counters, the run span, and a
    summary event without perturbing the run in any way.
    """
    config = SixGenConfig(
        budget=budget,
        loose=loose,
        ledger=ledger,
        use_seed_matrix=use_seed_matrix,
        use_growth_cache=use_growth_cache,
        use_vector_kernel=use_vector_kernel,
        rng_seed=rng_seed,
    )
    return SixGen([int(s) for s in seeds], config, telemetry=telemetry).run()
