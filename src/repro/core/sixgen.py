"""The 6Gen target generation algorithm (paper §5).

6Gen clusters similar seeds into dense address-space regions and emits
the addresses within those regions as scan targets, constrained by a
probe budget.  The implementation follows Algorithm 1 plus the two §5.5
optimizations:

* per-cluster growth caching — clusters grow independently, so a
  cluster's best growth only needs recomputing after that cluster
  itself grows;
* a 16-ary nybble tree for reconstructing/counting a grown cluster's
  seed set, instead of scanning the full seed list.

Selection rule per iteration (§5.4): among all (cluster, candidate
seed) growth options, take the one with the highest post-growth seed
density; ties prefer the smaller grown range (budget conservation);
remaining ties break at random.

Termination: the budget is consumed exactly (an unaffordable best
growth is satisfied partially by random sampling from its new region),
or all seeds end up in a single cluster.  Note a deliberate deviation
from the *simplified* pseudocode: Algorithm 1 as printed discards the
growth that would unify all seeds, which would prevent any 2-seed
network from ever growing a cluster — contradicting both the prose
("iterates until … all seeds belong to a single cluster") and Figure 5b
(most 2–10-seed prefixes have grown clusters).  We apply the unifying
growth (budget permitting) and then stop.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..ipv6.nybble_tree import NybbleTree
from ..ipv6.range_ import NybbleRange
from .budget import BudgetExceeded, ExactLedger, make_ledger
from .candidates import SeedMatrix, find_candidates_python
from .cluster import Cluster, Growth


@dataclass
class SixGenConfig:
    """Tuning knobs for a 6Gen run.

    budget
        Probe budget: the maximum number of *new* (non-seed) addresses
        the clusters may cover.
    loose
        Range granularity (§5.3): ``True`` for full-wildcard nybbles
        (the paper's default after §6.3), ``False`` for tight
        value-set nybbles.
    ledger
        ``"exact"`` for unique-address budget accounting (§5.4),
        ``"range-sum"`` for the simplified Algorithm 1 cost model.
    use_seed_matrix
        Use the vectorised numpy candidate search (§5.5 analogue of the
        paper's OpenMP parallelism); the pure-Python path is kept for
        testing and tiny inputs.
    use_growth_cache
        Cache each cluster's best growth between iterations (§5.5).
        Disabling recomputes every cluster every iteration (the naive
        algorithm) — used by the caching ablation benchmark.
    rng_seed
        Seed for the tie-breaking / sampling RNG, for reproducible runs.
    """

    budget: int
    loose: bool = True
    ledger: str = "exact"
    use_seed_matrix: bool = True
    use_growth_cache: bool = True
    rng_seed: int | None = 0


@dataclass
class SixGenResult:
    """Outcome of a 6Gen run."""

    clusters: list[Cluster]
    seed_count: int
    budget_limit: int
    budget_used: int
    iterations: int
    sampled: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    _targets: set[int] | None = None

    def singleton_clusters(self) -> list[Cluster]:
        """Clusters that never grew past their founding seed (Fig. 5a)."""
        return [c for c in self.clusters if c.is_singleton()]

    def grown_clusters(self) -> list[Cluster]:
        """Clusters that grew to cover a region (Fig. 5b)."""
        return [c for c in self.clusters if not c.is_singleton()]

    def target_count(self) -> int:
        """Number of distinct generated targets (seeds included)."""
        return len(self.target_set())

    def target_set(self) -> set[int]:
        """All distinct generated target addresses, seeds included."""
        if self._targets is None:
            targets: set[int] = set(self.sampled)
            for cluster in self.clusters:
                targets.update(cluster.range.iter_ints())
            self._targets = targets
        return self._targets

    def iter_targets(self) -> Iterator[int]:
        """Iterate distinct generated targets (order unspecified)."""
        return iter(self.target_set())

    def new_targets(self, seeds: Iterable[int]) -> set[int]:
        """Generated targets excluding the given (seed) addresses."""
        return self.target_set() - set(int(s) for s in seeds)

    def iter_targets_by_density(self) -> Iterator[int]:
        """Stream targets densest-cluster-first (for partial scans).

        Clusters are emitted in descending seed density (ties: smaller
        range first), deduplicating overlap; the final-growth sampled
        addresses come last.  Cutting this stream at any point yields
        the best available target list of that size under 6Gen's own
        density assumption.
        """
        emitted: set[int] = set()
        ordered = sorted(
            self.clusters, key=lambda c: (-c.density(), c.range.size())
        )
        for cluster in ordered:
            for addr in cluster.range.iter_ints():
                if addr not in emitted:
                    emitted.add(addr)
                    yield addr
        for addr in self.sampled:
            if addr not in emitted:
                emitted.add(addr)
                yield addr

    def dynamic_nybble_indices(self) -> set[int]:
        """Union of dynamic nybble positions across cluster ranges (Fig. 6)."""
        indices: set[int] = set()
        for cluster in self.clusters:
            indices.update(cluster.range.dynamic_positions())
        return indices


class SixGen:
    """A single 6Gen run over one seed set (typically one routed prefix)."""

    def __init__(self, seeds: Sequence[int], config: SixGenConfig):
        self.config = config
        self.seeds = sorted(set(int(s) for s in seeds))
        self.rng = random.Random(config.rng_seed)
        self.tree = NybbleTree(self.seeds)
        self.matrix = SeedMatrix(self.seeds) if config.use_seed_matrix else None
        self.ledger = make_ledger(config.ledger, config.budget, self.seeds)
        self._clusters: dict[int, Cluster] = {}
        self._best: dict[int, Growth | None] = {}
        self._singleton_by_seed: dict[int, int] = {}
        self._next_id = 0
        self.iterations = 0

    # -- internals ---------------------------------------------------------
    def _find_candidates(self, range_: NybbleRange) -> list[int]:
        """Indices of seeds at minimum positive distance from the range."""
        if self.matrix is not None:
            _, indices = self.matrix.min_positive_candidates(range_)
        else:
            _, indices = find_candidates_python(range_, self.seeds)
        return indices

    def _evaluate(self, cluster: Cluster) -> Growth | None:
        """Best growth for one cluster, or ``None`` if it holds all seeds.

        For each candidate seed the grown range may encapsulate further
        seeds; the post-growth seed-set size is counted with the nybble
        tree, so absorbed seeds (candidate or not) are included.
        """
        indices = self._find_candidates(cluster.range)
        if not indices:
            return None
        best: Growth | None = None
        seen_ranges: set[tuple[int, ...]] = set()
        for idx in indices:
            new_range = cluster.range.span(self.seeds[idx], loose=self.config.loose)
            if new_range.masks in seen_ranges:
                continue
            seen_ranges.add(new_range.masks)
            count = self.tree.count_in_range(new_range)
            growth = Growth(new_range, count, self.rng.random())
            if best is None or growth.sort_key() > best.sort_key():
                best = growth
        return best

    def _init_clusters(self) -> None:
        """One singleton cluster per seed (Function InitClusters)."""
        for seed in self.seeds:
            cid = self._next_id
            self._next_id += 1
            self._clusters[cid] = Cluster(NybbleRange.from_address(seed), 1)
            self._singleton_by_seed[seed] = cid
        for cid, cluster in self._clusters.items():
            self._best[cid] = self._evaluate(cluster)

    def _select_growth(self) -> tuple[int, Growth] | None:
        """The best (cluster, growth) pair this iteration, if any."""
        best_cid: int | None = None
        best_growth: Growth | None = None
        for cid, growth in self._best.items():
            if growth is None:
                continue
            if best_growth is None or growth.sort_key() > best_growth.sort_key():
                best_cid, best_growth = cid, growth
        if best_cid is None or best_growth is None:
            return None
        return best_cid, best_growth

    def _apply_growth(self, cid: int, growth: Growth) -> None:
        """Replace the cluster, drop encapsulated clusters, refresh caches."""
        self._clusters[cid] = Cluster(growth.new_range, growth.new_seed_count)
        # Encapsulated singleton clusters are exactly the singletons
        # whose founding seed lies in the grown range — found via the
        # seed trie instead of an is_subset scan over every cluster.
        # (The grown cluster itself also leaves the singleton map here.)
        doomed: list[int] = []
        for seed in self.tree.iter_in_range(growth.new_range):
            oid = self._singleton_by_seed.pop(seed, None)
            if oid is not None and oid != cid:
                doomed.append(oid)
        # Grown clusters are few; check them directly.
        for oid, other in self._clusters.items():
            if oid != cid and not other.range.is_singleton():
                if other.range.is_subset(growth.new_range):
                    doomed.append(oid)
        for oid in doomed:
            del self._clusters[oid]
            del self._best[oid]
        if self.config.use_growth_cache:
            self._best[cid] = self._evaluate(self._clusters[cid])
        else:
            for oid, cluster in self._clusters.items():
                self._best[oid] = self._evaluate(cluster)

    # -- driver --------------------------------------------------------------
    def run(self) -> SixGenResult:
        """Execute 6Gen to completion and return the clusters and targets."""
        start = time.perf_counter()
        sampled: list[int] = []
        if self.seeds:
            self._init_clusters()
            while True:
                selected = self._select_growth()
                if selected is None:
                    break  # every remaining cluster already holds all seeds
                cid, growth = selected
                old_range = self._clusters[cid].range
                try:
                    self.ledger.try_charge(growth.new_range, old_range)
                except BudgetExceeded:
                    sampled = self.ledger.charge_partial(
                        growth.new_range, old_range, self.rng
                    )
                    break
                self.iterations += 1
                self._apply_growth(cid, growth)
                if growth.new_seed_count == len(self.seeds):
                    break  # all seeds unified into a single cluster

        result = SixGenResult(
            clusters=list(self._clusters.values()),
            seed_count=len(self.seeds),
            budget_limit=self.config.budget,
            budget_used=self.ledger.used,
            iterations=self.iterations,
            sampled=sampled,
            elapsed_seconds=time.perf_counter() - start,
        )
        if isinstance(self.ledger, ExactLedger):
            # The exact ledger already knows the deduplicated target set.
            result._targets = set(self.ledger.covered())
        return result


def run_6gen(
    seeds: Sequence[int] | Iterable[int],
    budget: int,
    *,
    loose: bool = True,
    ledger: str = "exact",
    use_seed_matrix: bool = True,
    use_growth_cache: bool = True,
    rng_seed: int | None = 0,
) -> SixGenResult:
    """Convenience wrapper: run 6Gen on a seed set with a probe budget.

    ``seeds`` may be address integers or :class:`~repro.ipv6.IPv6Addr`
    instances.  Returns a :class:`SixGenResult`; call
    :meth:`~SixGenResult.target_set` for the generated scan targets.
    """
    config = SixGenConfig(
        budget=budget,
        loose=loose,
        ledger=ledger,
        use_seed_matrix=use_seed_matrix,
        use_growth_cache=use_growth_cache,
        rng_seed=rng_seed,
    )
    return SixGen([int(s) for s in seeds], config).run()
