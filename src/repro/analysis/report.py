"""Scan-report generation: one document summarising a full §6 run.

Produces a markdown report combining every §6 analysis for a single
scan outcome — seed statistics, target generation totals, hit counts,
the aliasing census, Table 1-style AS breakdowns, cluster censuses and
the dynamic-nybble profile.  The CLI's ``report`` subcommand and the
benchmark harness both emit it; it is the document a measurement team
would circulate after a scan campaign.
"""

from __future__ import annotations

from typing import Sequence

from ..scanner.dealias import group_hits_by_prefix
from .experiments import ScanOutcome
from .metrics import (
    SEED_BUCKETS,
    AsShare,
    bucket_label,
    cluster_census,
    dynamic_nybble_histogram,
    hits_per_prefix,
    quantiles,
    top_ases,
)


def _as_table(rows: Sequence[AsShare]) -> list[str]:
    lines = ["| AS | ASN | addresses | share |", "|---|---|---|---|"]
    for row in rows:
        lines.append(
            f"| {row.name} | {row.asn} | {row.count} | {row.share:.1%} |"
        )
    if not rows:
        lines.append("| (none) | | | |")
    return lines


def scan_report(outcome: ScanOutcome, title: str = "IPv6 scan report") -> str:
    """Render the full markdown report for one scan outcome."""
    context = outcome.context
    internet = context.internet
    seeds = context.seed_addresses
    lines: list[str] = [f"# {title}", ""]

    # --- run summary -------------------------------------------------------
    new_clean = outcome.new_clean_hits()
    lines += [
        "## Run summary",
        "",
        f"* routed prefixes with seeds: **{len(context.groups)}**",
        f"* unique seed addresses: **{len(seeds)}**",
        f"* per-prefix probe budget: **{outcome.budget}**",
        f"* targets generated: **{outcome.targets_generated}**",
        f"* probes sent: **{outcome.probes_sent}**",
        f"* raw TCP/80 hits: **{len(outcome.raw_hits)}**",
        f"* aliased hits: **{len(outcome.aliased_hits)}** "
        f"({outcome.report.aliased_fraction():.1%} of raw)",
        f"* dealiased hits: **{len(outcome.clean_hits)}** "
        f"(**{len(new_clean)}** newly discovered)",
        "",
    ]

    # --- aliasing census ----------------------------------------------------
    hit_96s = group_hits_by_prefix(outcome.raw_hits, 96)
    aliased_asn_names = sorted(
        internet.as_name(asn) for asn in outcome.report.aliased_asns
    )
    lines += [
        "## Aliasing census (§6.2 method)",
        "",
        f"* /96 prefixes containing hits: {len(hit_96s)}",
        f"* of which aliased: {len(outcome.report.aliased_prefixes)}",
        f"* ASes aliased at finer granularity (AS-level /112 inspection): "
        f"{', '.join(aliased_asn_names) or '(none)'}",
        "",
    ]

    # --- AS breakdowns --------------------------------------------------------
    lines += ["## Top ASes", "", "### Seed addresses", ""]
    lines += _as_table(top_ases(seeds, internet.bgp, internet.registry, 10))
    lines += ["", "### Aliased hits", ""]
    lines += _as_table(
        top_ases(outcome.aliased_hits, internet.bgp, internet.registry, 10)
    )
    lines += ["", "### Dealiased hits", ""]
    lines += _as_table(
        top_ases(outcome.clean_hits, internet.bgp, internet.registry, 10)
    )
    lines.append("")

    # --- per-prefix hit distribution ------------------------------------------
    counts = hits_per_prefix(outcome.clean_hits, context.groups)
    lines += [
        "## Dealiased hits per routed prefix",
        "",
        "| seed bucket | prefixes | hits q25/q50/q75 | zero-hit share |",
        "|---|---|---|---|",
    ]
    for low, high in SEED_BUCKETS:
        values = [
            counts[prefix]
            for prefix, group in context.groups.items()
            if low <= len(group) < high
        ]
        if not values:
            continue
        q25, q50, q75 = quantiles(values)
        zero = sum(1 for v in values if v == 0) / len(values)
        lines.append(
            f"| {bucket_label((low, high))} | {len(values)} "
            f"| {int(q25)}/{int(q50)}/{int(q75)} | {zero:.0%} |"
        )
    lines.append("")

    # --- cluster census ----------------------------------------------------------
    census = cluster_census(outcome.run.results())
    total_grown = sum(c.grown_clusters for c in census)
    total_singletons = sum(c.singleton_clusters for c in census)
    lines += [
        "## 6Gen cluster census",
        "",
        f"* grown clusters: {total_grown}",
        f"* singleton clusters: {total_singletons}",
        f"* prefixes with no grown cluster: "
        f"{sum(1 for c in census if c.grown_clusters == 0)}",
        "",
    ]

    # --- dynamic nybbles -----------------------------------------------------------
    histogram = dynamic_nybble_histogram(outcome.run.results())
    peak = max(range(32), key=lambda i: histogram[i])
    lines += [
        "## Dynamic nybble profile",
        "",
        "Portion of routed prefixes with each nybble position dynamic",
        "(1-based indices; `#` per 4 %):",
        "",
        "```",
    ]
    for i, portion in enumerate(histogram, start=1):
        bar = "#" * int(portion * 25)
        lines.append(f"nybble {i:>2}: {portion:6.1%} {bar}")
    lines += [
        "```",
        "",
        f"Most frequently dynamic position: nybble {peak + 1} "
        f"({histogram[peak]:.1%} of prefixes).",
        "",
    ]
    return "\n".join(lines)
