"""Train-and-test evaluation (paper §7.1, Figure 8).

The paper's methodology: split each 10 K-address CDN dataset into ten
random 1 K groups, run each TGA on one 10 % group, and measure what
fraction of the remaining 90 % it predicts — "a form of inverse k-fold
validation" — across a sweep of probe budgets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.sixgen import run_6gen
from ..entropyip.generator import EntropyIPConfig, fit_entropy_ip

#: A TGA under test: (train_seeds, budget) -> generated targets.
TargetGenerator = Callable[[Sequence[int], int], set[int]]


def sixgen_generator(train: Sequence[int], budget: int) -> set[int]:
    """6Gen as a train-and-test subject (loose ranges, exact ledger)."""
    return run_6gen(train, budget).target_set()


def entropyip_generator(train: Sequence[int], budget: int) -> set[int]:
    """Entropy/IP as a train-and-test subject."""
    model = fit_entropy_ip(list(train), EntropyIPConfig())
    return model.generate(budget)


def split_folds(
    addrs: Sequence[int], k: int = 10, rng_seed: int = 0
) -> list[list[int]]:
    """Random equal split into ``k`` groups (the paper's 10 × 1 K)."""
    if k < 2:
        raise ValueError(f"need at least 2 folds: {k}")
    pool = [int(a) for a in addrs]
    rng = random.Random(rng_seed)
    rng.shuffle(pool)
    folds = [pool[i::k] for i in range(k)]
    return folds


@dataclass
class TrainTestPoint:
    """One curve point: fraction of test addresses found at one budget."""

    budget: int
    found: int
    test_size: int

    @property
    def fraction(self) -> float:
        return self.found / self.test_size if self.test_size else 0.0


def train_and_test(
    train: Sequence[int],
    test: Sequence[int],
    generator: TargetGenerator,
    budgets: Sequence[int],
) -> list[TrainTestPoint]:
    """Fraction of held-out addresses predicted at each budget."""
    test_set = {int(a) for a in test}
    points = []
    for budget in budgets:
        targets = generator(train, budget)
        points.append(
            TrainTestPoint(
                budget=budget,
                found=len(targets & test_set),
                test_size=len(test_set),
            )
        )
    return points


def inverse_kfold(
    addrs: Sequence[int],
    generator: TargetGenerator,
    budgets: Sequence[int],
    *,
    k: int = 10,
    folds_to_run: int = 1,
    rng_seed: int = 0,
) -> list[TrainTestPoint]:
    """The paper's inverse k-fold: train on one fold, test on the rest.

    Runs ``folds_to_run`` folds (the paper runs all ten; one fold is
    enough for the curve shape and is the default for the fast
    harness) and averages found counts across them.
    """
    folds = split_folds(addrs, k=k, rng_seed=rng_seed)
    accumulated: dict[int, list[TrainTestPoint]] = {b: [] for b in budgets}
    for i in range(min(folds_to_run, k)):
        train = folds[i]
        test = [a for j, fold in enumerate(folds) if j != i for a in fold]
        for point in train_and_test(train, test, generator, budgets):
            accumulated[point.budget].append(point)
    averaged = []
    for budget in budgets:
        points = accumulated[budget]
        found = round(sum(p.found for p in points) / len(points))
        test_size = round(sum(p.test_size for p in points) / len(points))
        averaged.append(TrainTestPoint(budget=budget, found=found, test_size=test_size))
    return averaged
