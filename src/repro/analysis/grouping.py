"""Per-prefix 6Gen orchestration (the paper's §6 run layout).

The paper groups seeds by BGP routed prefix and runs 6Gen on each
prefix independently with a static per-prefix probe budget ("we do not
address how to best allocate probe budget across networks").  This
module provides that orchestration plus budget-allocation policies for
the §8 future-work exploration (seed-proportional and size-aware
allocation).

The data types (budget policies, :class:`PrefixRun`,
:class:`MultiPrefixRun`) live here; the execution engine behind
:func:`run_per_prefix` moved to :mod:`repro.campaign.generate` as the
campaign pipeline's generation stage — this module keeps the public
entry point as a thin delegate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from ..core.sixgen import SixGenResult
from ..ipv6.prefix import Prefix
from ..telemetry.spans import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

#: A budget allocation policy: maps (prefix, seeds, base_budget) -> budget.
BudgetPolicy = Callable[[Prefix, Sequence[int], int], int]


def static_budget(prefix: Prefix, seeds: Sequence[int], base: int) -> int:
    """The paper's default: the same budget for every routed prefix."""
    return base


def seed_proportional_budget(
    prefix: Prefix, seeds: Sequence[int], base: int
) -> int:
    """§8 alternative: budget proportional to the prefix's seed count.

    ``base`` is interpreted as budget *per seed*; callers should divide
    their total budget by the total seed count.
    """
    return base * len(seeds)


@dataclass
class PrefixRun:
    """6Gen output for one routed prefix."""

    prefix: Prefix
    seeds: list[int]
    budget: int
    result: SixGenResult

    def iter_targets(self) -> Iterator[int]:
        """Stream this prefix's generated targets (distinct, unordered)."""
        return self.result.iter_targets()

    def target_columns(self) -> "tuple[np.ndarray, np.ndarray]":
        """This prefix's targets as packed ``(hi, lo)`` uint64 columns.

        Densest-cluster-first order (the paper's probing priority);
        cached on the result, so repeated calls are free.
        """
        return self.result.target_columns_by_density()


@dataclass
class MultiPrefixRun:
    """6Gen outputs across all routed prefixes of one experiment.

    ``failures`` maps prefixes whose 6Gen run raised (twice — every
    failure is retried once) to a short error description; their
    targets are simply absent from the campaign.
    """

    runs: dict[Prefix, PrefixRun] = field(default_factory=dict)
    failures: dict[Prefix, str] = field(default_factory=dict)

    def results(self) -> dict[Prefix, SixGenResult]:
        return {prefix: run.result for prefix, run in self.runs.items()}

    def all_targets(self) -> set[int]:
        """Union of generated targets across prefixes."""
        targets: set[int] = set()
        for run in self.runs.values():
            targets |= run.result.target_set()
        return targets

    def iter_targets(self) -> Iterator[int]:
        """Stream targets prefix by prefix (sorted) without materialising
        the union.

        Distinct routed prefixes can overlap (more- and less-specific
        routes), so an address may appear more than once; consumers
        that need uniqueness dedupe downstream — :meth:`Scanner.scan`
        already does.
        """
        for prefix in sorted(self.runs):
            yield from self.runs[prefix].iter_targets()

    def iter_target_columns(
        self,
    ) -> "Iterator[tuple[np.ndarray, np.ndarray]]":
        """Stream packed ``(hi, lo)`` column chunks prefix by prefix.

        The column analogue of :meth:`iter_targets`: one chunk per
        prefix, in sorted prefix order, each in densest-cluster-first
        order, never materialising the campaign union.  Overlapping
        routed prefixes can repeat an address across chunks;
        :meth:`Scanner.scan` dedupes streamed column chunks with its
        fused-key pass, so feeding this straight in is correct.
        """
        for prefix in sorted(self.runs):
            yield self.runs[prefix].target_columns()

    def new_targets(self) -> set[int]:
        """Generated targets excluding every prefix's own seeds."""
        targets = self.all_targets()
        for run in self.runs.values():
            targets -= set(run.seeds)
        return targets

    def total_budget_used(self) -> int:
        return sum(run.result.budget_used for run in self.runs.values())

    def total_seed_count(self) -> int:
        return sum(len(run.seeds) for run in self.runs.values())


def run_per_prefix(
    groups: Mapping[Prefix, Sequence[int]],
    budget: int,
    *,
    loose: bool = True,
    ledger: str = "exact",
    budget_policy: BudgetPolicy = static_budget,
    min_seeds: int = 1,
    rng_seed: int | None = 0,
    processes: int | None = None,
    telemetry: Telemetry | None = None,
    isolate_failures: bool = True,
    progress_sink=None,
) -> MultiPrefixRun:
    """Run 6Gen on every routed prefix's seed group.

    Thin wrapper over the campaign layer's generation stage,
    :func:`repro.campaign.generate.generate_per_prefix` — see there for
    the full semantics (budget policies, process-pool execution,
    telemetry, failure isolation, progress events).  Kept here so the
    long-standing ``analysis``-level entry point and its signature stay
    stable.
    """
    from ..campaign.generate import generate_per_prefix

    return generate_per_prefix(
        groups,
        budget,
        loose=loose,
        ledger=ledger,
        budget_policy=budget_policy,
        min_seeds=min_seeds,
        rng_seed=rng_seed,
        processes=processes,
        telemetry=telemetry,
        isolate_failures=isolate_failures,
        progress_sink=progress_sink,
    )
