"""Evaluation harness: metrics, per-prefix orchestration, experiments.

``experiments`` holds one driver per paper table/figure (see DESIGN.md
§4 for the index); ``metrics`` the shared aggregations; ``traintest``
the §7.1 methodology; ``grouping`` the per-routed-prefix 6Gen runs.
"""

from .grouping import (
    MultiPrefixRun,
    PrefixRun,
    run_per_prefix,
    seed_proportional_budget,
    static_budget,
)
from .metrics import (
    SEED_BUCKETS,
    AsShare,
    ClusterCensus,
    asn_cdf,
    bucket_prefixes_by_seed_count,
    cdf,
    cluster_census,
    dynamic_nybble_histogram,
    hits_per_prefix,
    quantiles,
    top_ases,
)
from .report import scan_report
from .svgplot import Plot, Series, render_svg, save_svg
from .traintest import (
    TrainTestPoint,
    entropyip_generator,
    inverse_kfold,
    sixgen_generator,
    split_folds,
    train_and_test,
)

__all__ = [
    "AsShare",
    "ClusterCensus",
    "MultiPrefixRun",
    "Plot",
    "Series",
    "PrefixRun",
    "SEED_BUCKETS",
    "TrainTestPoint",
    "asn_cdf",
    "bucket_prefixes_by_seed_count",
    "cdf",
    "cluster_census",
    "dynamic_nybble_histogram",
    "entropyip_generator",
    "hits_per_prefix",
    "inverse_kfold",
    "quantiles",
    "render_svg",
    "run_per_prefix",
    "save_svg",
    "scan_report",
    "seed_proportional_budget",
    "sixgen_generator",
    "split_folds",
    "static_budget",
    "top_ases",
    "train_and_test",
]
