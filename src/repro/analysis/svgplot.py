"""Dependency-free SVG plotting for the regenerated figures.

The benchmark harness emits each figure's data as text; this module
also renders the line/CDF figures (Figures 3, 4, 8, 9) as standalone
SVG files so the reproduction produces literal *figures*, not just
rows.  Only Python's string formatting is used — no plotting library
is available offline.

The plots are deliberately minimal: linear or log-10 axes, polyline
series with markers, a legend, and tick labels.  Enough to eyeball a
shape against the paper's figure.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Sequence

#: A small colour cycle (hex) for series.
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
           "#e377c2", "#17becf", "#bcbd22", "#7f7f7f")


@dataclass
class Series:
    """One plotted line: a label and its (x, y) points."""

    label: str
    points: list[tuple[float, float]]
    color: str | None = None
    dashed: bool = False


@dataclass
class Plot:
    """A complete line plot specification."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    x_log: bool = False
    y_log: bool = False
    width: int = 640
    height: int = 420

    def add(self, label: str, points: Sequence[tuple[float, float]], **kwargs) -> None:
        self.series.append(Series(label=label, points=list(points), **kwargs))


def _nice_ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    """Roughly ``count`` round tick positions covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    raw_step = (hi - lo) / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw_step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    tick = first
    while tick <= hi + 1e-9 * step:
        ticks.append(round(tick, 10))
        tick += step
    return ticks or [lo]


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Powers of ten covering [lo, hi] (lo must be positive)."""
    start = math.floor(math.log10(lo))
    end = math.ceil(math.log10(hi))
    return [10.0**e for e in range(start, end + 1)]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1_000_000:
        return f"{value/1_000_000:g}M"
    if abs(value) >= 1_000:
        return f"{value/1_000:g}k"
    if abs(value) < 0.01:
        return f"{value:.0e}"
    return f"{value:g}"


def render_svg(plot: Plot) -> str:
    """Render a plot to a standalone SVG document string."""
    margin_left, margin_right = 70, 20
    margin_top, margin_bottom = 44, 56
    inner_w = plot.width - margin_left - margin_right
    inner_h = plot.height - margin_top - margin_bottom

    all_points = [p for s in plot.series for p in s.points]
    if not all_points:
        raise ValueError("cannot render a plot with no points")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]

    def bounds(values: list[float], log: bool) -> tuple[float, float]:
        if log:
            positive = [v for v in values if v > 0]
            lo = min(positive) if positive else 1.0
            hi = max(positive) if positive else 10.0
            return lo, max(hi, lo * 10)
        lo, hi = min(values), max(values)
        if lo == hi:
            hi = lo + 1
        return (min(lo, 0) if lo >= 0 else lo), hi

    x_lo, x_hi = bounds(xs, plot.x_log)
    y_lo, y_hi = bounds(ys, plot.y_log)

    def x_pos(x: float) -> float:
        if plot.x_log:
            span = math.log10(x_hi) - math.log10(x_lo)
            frac = (math.log10(max(x, x_lo)) - math.log10(x_lo)) / span
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return margin_left + frac * inner_w

    def y_pos(y: float) -> float:
        if plot.y_log:
            span = math.log10(y_hi) - math.log10(y_lo)
            frac = (math.log10(max(y, y_lo)) - math.log10(y_lo)) / span
        else:
            frac = (y - y_lo) / (y_hi - y_lo)
        return margin_top + (1 - frac) * inner_h

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{plot.width}" '
        f'height="{plot.height}" viewBox="0 0 {plot.width} {plot.height}" '
        f'font-family="sans-serif" font-size="12">'
    )
    parts.append(f'<rect width="{plot.width}" height="{plot.height}" fill="white"/>')
    parts.append(
        f'<text x="{plot.width/2:.0f}" y="22" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_escape(plot.title)}</text>'
    )

    # Axes box.
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{inner_w}" '
        f'height="{inner_h}" fill="none" stroke="#333"/>'
    )

    # Ticks and gridlines.
    x_ticks = _log_ticks(x_lo, x_hi) if plot.x_log else _nice_ticks(x_lo, x_hi)
    y_ticks = _log_ticks(y_lo, y_hi) if plot.y_log else _nice_ticks(y_lo, y_hi)
    for tick in x_ticks:
        px = x_pos(tick)
        if not margin_left - 1 <= px <= plot.width - margin_right + 1:
            continue
        parts.append(
            f'<line x1="{px:.1f}" y1="{margin_top}" x2="{px:.1f}" '
            f'y2="{margin_top + inner_h}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{margin_top + inner_h + 18}" '
            f'text-anchor="middle">{_format_tick(tick)}</text>'
        )
    for tick in y_ticks:
        py = y_pos(tick)
        if not margin_top - 1 <= py <= plot.height - margin_bottom + 1:
            continue
        parts.append(
            f'<line x1="{margin_left}" y1="{py:.1f}" '
            f'x2="{margin_left + inner_w}" y2="{py:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{py + 4:.1f}" '
            f'text-anchor="end">{_format_tick(tick)}</text>'
        )

    # Axis labels.
    parts.append(
        f'<text x="{margin_left + inner_w/2:.0f}" y="{plot.height - 12}" '
        f'text-anchor="middle">{_escape(plot.x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_top + inner_h/2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_top + inner_h/2:.0f})">'
        f"{_escape(plot.y_label)}</text>"
    )

    # Series.
    for i, series in enumerate(plot.series):
        color = series.color or PALETTE[i % len(PALETTE)]
        coords = " ".join(
            f"{x_pos(x):.1f},{y_pos(y):.1f}" for x, y in series.points
        )
        dash = ' stroke-dasharray="6,4"' if series.dashed else ""
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2"{dash}/>'
        )
        for x, y in series.points:
            parts.append(
                f'<circle cx="{x_pos(x):.1f}" cy="{y_pos(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )

    # Legend (top-left inside the axes box).
    legend_y = margin_top + 14
    for i, series in enumerate(plot.series):
        color = series.color or PALETTE[i % len(PALETTE)]
        y = legend_y + i * 16
        parts.append(
            f'<line x1="{margin_left + 10}" y1="{y - 4}" '
            f'x2="{margin_left + 34}" y2="{y - 4}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{margin_left + 40}" y="{y}">{_escape(series.label)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def save_svg(plot: Plot, path: str | os.PathLike) -> None:
    """Render and write a plot to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(plot) + "\n")
