"""Experiment drivers: one function per paper table and figure.

Each driver reproduces one evaluation artifact from the paper over the
simulated Internet (see DESIGN.md §4 for the full index).  Drivers
return structured row objects with a ``format_*`` helper that prints
the same rows/series the paper reports; the benchmark harness under
``benchmarks/`` and the CLI both call these functions.

Heavy shared work (building the simulation, the full per-prefix
6Gen + scan + dealias pass) is cached per parameter set so the figure
drivers can share one run the way the paper's sections share one scan.
"""

from __future__ import annotations

import functools
import statistics
import time
from dataclasses import dataclass
from typing import Sequence

from ..core.sixgen import run_6gen
from ..datasets.cdn import all_cdns
from ..ipv6.prefix import Prefix
from ..scanner.dealias import DealiasReport, dealias
from ..scanner.engine import ScanConfig, Scanner
from ..simnet.bgp import group_by_routed_prefix
from ..simnet.dns import SeedCollection, collect_seeds
from ..simnet.ground_truth import SimInternet, default_internet
from ..telemetry.spans import Telemetry
from .grouping import MultiPrefixRun
from .metrics import (
    SEED_BUCKETS,
    AsShare,
    ClusterCensus,
    asn_cdf,
    bucket_label,
    cluster_census,
    dynamic_nybble_histogram,
    hits_per_prefix,
    quantiles,
    top_ases,
)
from .traintest import (
    TrainTestPoint,
    entropyip_generator,
    inverse_kfold,
    sixgen_generator,
)

#: Default per-prefix probe budget for the simulated runs.  The paper
#: uses 1 M per routed prefix against the real Internet; the simulation
#: is ~100× smaller, so 20 K preserves the budget-to-network ratio.
DEFAULT_BUDGET = 20_000

#: Default simulation scale (see :func:`repro.simnet.default_internet`).
DEFAULT_SCALE = 0.3


# ---------------------------------------------------------------------------
# Shared context and the full scan pipeline
# ---------------------------------------------------------------------------


@dataclass
class ExperimentContext:
    """The simulated Internet plus its seed snapshot and prefix groups."""

    internet: SimInternet
    seeds: SeedCollection
    groups: dict[Prefix, list[int]]

    @property
    def seed_addresses(self) -> list[int]:
        return self.seeds.addresses()


@functools.lru_cache(maxsize=4)
def standard_context(
    scale: float = DEFAULT_SCALE, rng_seed: int = 42, dns_seed: int = 7
) -> ExperimentContext:
    """Build (and cache) the standard simulation context."""
    internet = default_internet(scale=scale, rng_seed=rng_seed)
    seeds = collect_seeds(internet, rng_seed=dns_seed)
    groups = group_by_routed_prefix(seeds.addresses(), internet.bgp)
    return ExperimentContext(internet=internet, seeds=seeds, groups=groups)


@dataclass
class ScanOutcome:
    """One full §6 pass: per-prefix 6Gen, active scan, dealiasing."""

    context: ExperimentContext
    budget: int
    run: MultiPrefixRun
    raw_hits: set[int]
    report: DealiasReport
    targets_generated: int
    probes_sent: int

    @property
    def aliased_hits(self) -> set[int]:
        return self.report.aliased_hits

    @property
    def clean_hits(self) -> set[int]:
        return self.report.clean_hits

    def new_clean_hits(self) -> set[int]:
        """Dealiased hits that were not already seeds."""
        return self.clean_hits - set(self.context.seed_addresses)


def run_full_scan(
    context: ExperimentContext,
    budget: int,
    *,
    loose: bool = True,
    seed_addrs: Sequence[int] | None = None,
    dealias_hits: bool = True,
    port: int = 80,
    scan_config: ScanConfig | None = None,
    telemetry: Telemetry | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    checkpoint_every: int = 16,
    crash=None,
    gen_workers: int | None = None,
) -> ScanOutcome:
    """Run 6Gen per routed prefix, scan one port, and dealias the hits.

    Targets stream straight from each prefix run into the scanner as
    packed ``(hi, lo)`` column chunks — the union set is never
    materialised and no per-address Python ints are boxed on the way
    in (the scanner dedupes the chunks with a fused-key array pass).
    ``scan_config`` selects the scan execution strategy (batch size,
    worker processes, retry rounds); the result is identical for every
    config, so callers tune it freely.  ``gen_workers`` > 1 shards the
    per-prefix generation across a process pool (§5.6's
    parallelisation axis); results are bit-identical to serial because
    every prefix run is independently seeded.  ``telemetry``
    instruments all three stages (generation, scan, dealiasing) under
    one ``full_scan`` span without changing any of them.

    ``checkpoint_path`` streams campaign progress (per-prefix
    generation events plus scan checkpoints) through a crash-safe
    :class:`~repro.telemetry.sinks.JsonlSink`.  With ``resume=True``
    the scan phase continues from the newest checkpoint in that file:
    generation re-runs (it is deterministic and cheap relative to
    probing) to rebuild the identical target stream, then the scan
    replays its recorded keys from the recorded batch — finishing with
    hits and stats bit-identical to an uninterrupted run.  ``crash``
    (a :class:`~repro.faults.WorkerCrash`) is the deterministic kill
    switch the resume-parity tests use.

    This is a thin wrapper over the campaign layer
    (:class:`repro.campaign.Campaign`), which owns the pipeline; the
    parity tests pin this wrapper to the campaign's monolithic path.
    """
    from ..campaign import Campaign, CampaignSpec

    if seed_addrs is None:
        groups = context.groups
    else:
        groups = group_by_routed_prefix(seed_addrs, context.internet.bgp)
    spec = CampaignSpec(
        budget=budget,
        port=port,
        loose=loose,
        dealias=dealias_hits,
        scan_config=scan_config or ScanConfig(),
        gen_workers=gen_workers,
        checkpoint_every=checkpoint_every,
    )
    campaign = Campaign(
        context.internet.truth, context.internet.bgp, groups, spec,
        telemetry=telemetry, checkpoint_path=checkpoint_path,
    )
    result = campaign.run(resume=resume, crash=crash)
    return ScanOutcome(
        context=context,
        budget=budget,
        run=result.run,
        raw_hits=result.raw_hits,
        report=result.report,
        targets_generated=result.targets_generated,
        probes_sent=result.probes_sent,
    )


@functools.lru_cache(maxsize=4)
def standard_outcome(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> ScanOutcome:
    """The cached standard run shared by Figures 3/5/6/7 and Table 1."""
    return run_full_scan(standard_context(scale), budget)


# ---------------------------------------------------------------------------
# Figure 2 — runtime vs number of seeds per routed prefix
# ---------------------------------------------------------------------------


@dataclass
class RuntimeRow:
    seed_count: int
    median_seconds: float
    runs: int


def fig2_runtime(
    seed_counts: Sequence[int] = (30, 100, 300, 1000),
    *,
    budget: int = 10_000,
    repeats: int = 3,
    scale: float = DEFAULT_SCALE,
) -> list[RuntimeRow]:
    """Median 6Gen execution time for prefixes of varying seed counts.

    Mirrors Figure 2: runtime grows with seeds but depends heavily on
    the seed structure.  Seed sets are drawn from the simulation's real
    prefixes when available and synthesised otherwise.
    """
    import random as random_mod

    context = standard_context(scale)
    pool = sorted(context.seed_addresses)
    rows = []
    for count in seed_counts:
        times = []
        for r in range(repeats):
            # Uniform random samples of the requested size approximate
            # the paper's median across prefixes of similar size while
            # keeping seed *structure* comparable between sizes.
            rng = random_mod.Random(1000 * count + r)
            subset = rng.sample(pool, min(count, len(pool)))
            start = time.perf_counter()
            run_6gen(subset, budget)
            times.append(time.perf_counter() - start)
        rows.append(
            RuntimeRow(
                seed_count=count,
                median_seconds=statistics.median(times),
                runs=repeats,
            )
        )
    return rows


def format_fig2(rows: Sequence[RuntimeRow]) -> str:
    lines = ["Figure 2: median 6Gen runtime vs seeds per prefix"]
    lines.append(f"{'seeds':>8} {'median (s)':>12} {'runs':>5}")
    for row in rows:
        lines.append(f"{row.seed_count:>8} {row.median_seconds:>12.4f} {row.runs:>5}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3 — ASN CDFs; Table 1 — top ASes
# ---------------------------------------------------------------------------


@dataclass
class AsnCdfSeries:
    label: str
    points: list[tuple[int, float]]  # (rank, cumulative fraction)


def fig3_asn_cdf(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[AsnCdfSeries]:
    """Seed / aliased-hit / clean-hit distributions across ASNs (Fig. 3)."""
    outcome = standard_outcome(budget, scale)
    bgp = outcome.context.internet.bgp
    return [
        AsnCdfSeries("Seed Addresses", asn_cdf(outcome.context.seed_addresses, bgp)),
        AsnCdfSeries("Aliased Hits", asn_cdf(outcome.aliased_hits, bgp)),
        AsnCdfSeries("Non-Aliased Hits", asn_cdf(outcome.clean_hits, bgp)),
    ]


def format_fig3(series: Sequence[AsnCdfSeries]) -> str:
    lines = ["Figure 3: CDF of addresses across ASNs (rank -> cumulative %)"]
    for s in series:
        marks = [1, 2, 5, 10, 20, 50, 100]
        parts = []
        for rank, frac in s.points:
            if rank in marks:
                parts.append(f"top{rank}:{frac:5.1%}")
        lines.append(f"  {s.label:<18} {'  '.join(parts)}")
    return "\n".join(lines)


@dataclass
class Table1:
    seeds: list[AsShare]
    aliased: list[AsShare]
    clean: list[AsShare]


def table1_top_ases(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE, k: int = 10
) -> Table1:
    """Top-10 ASes for seeds, aliased hits, and dealiased hits (Table 1)."""
    outcome = standard_outcome(budget, scale)
    bgp = outcome.context.internet.bgp
    registry = outcome.context.internet.registry
    return Table1(
        seeds=top_ases(outcome.context.seed_addresses, bgp, registry, k),
        aliased=top_ases(outcome.aliased_hits, bgp, registry, k),
        clean=top_ases(outcome.clean_hits, bgp, registry, k),
    )


def format_table1(table: Table1) -> str:
    lines = []
    for title, rows in (
        ("(a) Seed Addresses", table.seeds),
        ("(b) Aliased Hits", table.aliased),
        ("(c) Non-Aliased Hits", table.clean),
    ):
        lines.append(f"Table 1{title}")
        lines.append(f"{'AS Name':<16} {'ASN':<9} {'count':>9}  {'share':>6}")
        lines.extend(str(r) for r in rows)
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §6.3 — tight vs loose ranges
# ---------------------------------------------------------------------------


@dataclass
class TightLooseRow:
    mode: str
    raw_hits: int
    dealiased_hits: int


def tight_vs_loose(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[TightLooseRow]:
    """Raw and dealiased hit counts for both range granularities (§6.3).

    The paper: loose 56.7 M vs tight 55.9 M raw; 1.0 M vs 973 K after
    dealiasing — loose wins slightly on both and becomes the default.
    """
    context = standard_context(scale)
    rows = []
    for mode, loose in (("loose", True), ("tight", False)):
        outcome = run_full_scan(context, budget, loose=loose)
        rows.append(
            TightLooseRow(
                mode=mode,
                raw_hits=len(outcome.raw_hits),
                dealiased_hits=len(outcome.clean_hits),
            )
        )
    return rows


def format_tight_vs_loose(rows: Sequence[TightLooseRow]) -> str:
    lines = ["§6.3: tight vs loose cluster ranges"]
    lines.append(f"{'mode':<8} {'raw hits':>10} {'dealiased':>10}")
    for row in rows:
        lines.append(f"{row.mode:<8} {row.raw_hits:>10} {row.dealiased_hits:>10}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 4 — hits vs budget
# ---------------------------------------------------------------------------


@dataclass
class BudgetSweepRow:
    budget: int
    raw_hits: int
    dealiased_hits: int


def fig4_budget_sweep(
    budgets: Sequence[int] = (1_000, 2_500, 5_000, 10_000, 20_000, 40_000),
    scale: float = DEFAULT_SCALE,
) -> list[BudgetSweepRow]:
    """Hits vs per-prefix budget, with and without dealiasing (Fig. 4).

    The paper's shape: raw hits keep growing with budget (aliased
    regions absorb any budget) while dealiased hits plateau.
    """
    context = standard_context(scale)
    rows = []
    for budget in budgets:
        outcome = run_full_scan(context, budget)
        rows.append(
            BudgetSweepRow(
                budget=budget,
                raw_hits=len(outcome.raw_hits),
                dealiased_hits=len(outcome.clean_hits),
            )
        )
    return rows


def format_fig4(rows: Sequence[BudgetSweepRow]) -> str:
    lines = ["Figure 4: TCP/80 hits vs per-prefix budget"]
    lines.append(f"{'budget':>8} {'w/o dealiasing':>15} {'w/ dealiasing':>14}")
    for row in rows:
        lines.append(f"{row.budget:>8} {row.raw_hits:>15} {row.dealiased_hits:>14}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 5 — cluster censuses
# ---------------------------------------------------------------------------


@dataclass
class ClusterCdfBucket:
    bucket: str
    prefix_count: int
    singleton_quartiles: list[float]
    grown_quartiles: list[float]
    no_grown_fraction: float


def fig5_cluster_census(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[ClusterCdfBucket]:
    """Singleton/grown cluster distributions per seed bucket (Fig. 5)."""
    outcome = standard_outcome(budget, scale)
    census = cluster_census(outcome.run.results())
    buckets = []
    for low, high in SEED_BUCKETS:
        rows: list[ClusterCensus] = [
            c for c in census if low <= c.seed_count < high
        ]
        if not rows:
            continue
        singles = [c.singleton_clusters for c in rows]
        grown = [c.grown_clusters for c in rows]
        buckets.append(
            ClusterCdfBucket(
                bucket=bucket_label((low, high)),
                prefix_count=len(rows),
                singleton_quartiles=quantiles(singles),
                grown_quartiles=quantiles(grown),
                no_grown_fraction=sum(1 for g in grown if g == 0) / len(rows),
            )
        )
    return buckets


def format_fig5(buckets: Sequence[ClusterCdfBucket]) -> str:
    lines = ["Figure 5: cluster counts per routed prefix, by seed bucket"]
    lines.append(
        f"{'bucket':<14} {'prefixes':>8}  {'singletons q25/50/75':>22}"
        f"  {'grown q25/50/75':>18}  {'no-grown %':>10}"
    )
    for b in buckets:
        sq = "/".join(f"{int(v)}" for v in b.singleton_quartiles)
        gq = "/".join(f"{int(v)}" for v in b.grown_quartiles)
        lines.append(
            f"{b.bucket:<14} {b.prefix_count:>8}  {sq:>22}  {gq:>18}"
            f"  {b.no_grown_fraction:>10.1%}"
        )
    return "\n".join(lines)


@dataclass
class ClusterCdfSeries:
    """One Figure 5 curve: CDF of cluster counts for one seed bucket."""

    bucket: str
    kind: str  # "singleton" | "grown"
    points: list[tuple[float, float]]  # (cluster count, fraction of prefixes)


def fig5_cluster_cdfs(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[ClusterCdfSeries]:
    """The actual Figure 5 form: per-bucket CDFs of cluster counts."""
    from .metrics import cdf

    outcome = standard_outcome(budget, scale)
    census = cluster_census(outcome.run.results())
    series: list[ClusterCdfSeries] = []
    for low, high in SEED_BUCKETS:
        rows = [c for c in census if low <= c.seed_count < high]
        if not rows:
            continue
        label = bucket_label((low, high))
        for kind, values in (
            ("singleton", [c.singleton_clusters for c in rows]),
            ("grown", [c.grown_clusters for c in rows]),
        ):
            series.append(
                ClusterCdfSeries(
                    bucket=label,
                    kind=kind,
                    points=[(float(v), f) for v, f in cdf(values)],
                )
            )
    return series


# ---------------------------------------------------------------------------
# Figure 6 — dynamic nybble histogram
# ---------------------------------------------------------------------------


def fig6_dynamic_nybbles(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[float]:
    """Portion of prefixes with each nybble dynamic (Fig. 6, 0-indexed)."""
    outcome = standard_outcome(budget, scale)
    return dynamic_nybble_histogram(outcome.run.results())


def format_fig6(portions: Sequence[float]) -> str:
    lines = ["Figure 6: portion of routed prefixes with nybble dynamic"]
    lines.append("(1-based nybble index, as in the paper)")
    for i, portion in enumerate(portions, start=1):
        bar = "#" * int(portion * 50)
        lines.append(f"  nybble {i:>2}: {portion:6.1%} {bar}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 7 — hits per prefix by seed bucket
# ---------------------------------------------------------------------------


@dataclass
class HitsBucketRow:
    bucket: str
    prefix_count: int
    hit_quartiles: list[float]
    zero_hit_fraction: float


def fig7_hits_by_seeds(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[HitsBucketRow]:
    """Distribution of dealiased hits per prefix by seed bucket (Fig. 7)."""
    outcome = standard_outcome(budget, scale)
    counts = hits_per_prefix(outcome.clean_hits, outcome.context.groups)
    rows = []
    for low, high in SEED_BUCKETS:
        values = [
            counts[prefix]
            for prefix, seeds in outcome.context.groups.items()
            if low <= len(seeds) < high
        ]
        if not values:
            continue
        rows.append(
            HitsBucketRow(
                bucket=bucket_label((low, high)),
                prefix_count=len(values),
                hit_quartiles=quantiles(values),
                zero_hit_fraction=sum(1 for v in values if v == 0) / len(values),
            )
        )
    return rows


def format_fig7(rows: Sequence[HitsBucketRow]) -> str:
    lines = ["Figure 7: dealiased hits per routed prefix, by seed bucket"]
    lines.append(
        f"{'bucket':<14} {'prefixes':>8}  {'hits q25/50/75':>16}  {'zero-hit %':>10}"
    )
    for row in rows:
        hq = "/".join(f"{int(v)}" for v in row.hit_quartiles)
        lines.append(
            f"{row.bucket:<14} {row.prefix_count:>8}  {hq:>16}"
            f"  {row.zero_hit_fraction:>10.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2 — seed downsampling
# ---------------------------------------------------------------------------


@dataclass
class DownsampleRow:
    level: float
    raw_hits: int
    raw_vs_all: float
    dealiased_hits: int
    dealiased_vs_all: float


def table2_downsampling(
    levels: Sequence[float] = (0.01, 0.10, 0.25, 1.0),
    budget: int = DEFAULT_BUDGET,
    scale: float = DEFAULT_SCALE,
) -> list[DownsampleRow]:
    """Hits when 6Gen runs on downsampled seed sets (Table 2).

    The paper's headline: degradation is sub-linear — a 10 % sample
    still finds 71 % of the dealiased hits of the full set.
    """
    context = standard_context(scale)
    results: dict[float, tuple[int, int]] = {}
    for level in sorted(set(levels) | {1.0}):
        if level == 1.0:
            sample_addrs = context.seed_addresses
        else:
            sample_addrs = context.seeds.downsample(level).addresses()
        outcome = run_full_scan(context, budget, seed_addrs=sample_addrs)
        results[level] = (len(outcome.raw_hits), len(outcome.clean_hits))
    full_raw, full_clean = results[1.0]
    rows = []
    for level in levels:
        raw, clean = results[level]
        rows.append(
            DownsampleRow(
                level=level,
                raw_hits=raw,
                raw_vs_all=raw / full_raw if full_raw else 0.0,
                dealiased_hits=clean,
                dealiased_vs_all=clean / full_clean if full_clean else 0.0,
            )
        )
    return rows


def format_table2(rows: Sequence[DownsampleRow]) -> str:
    lines = ["Table 2: seed downsampling"]
    lines.append(
        f"{'level':>6}  {'raw hits':>9} {'% vs all':>9}  "
        f"{'dealiased':>9} {'% vs all':>9}"
    )
    for row in rows:
        lines.append(
            f"{row.level:>6.0%}  {row.raw_hits:>9} {row.raw_vs_all:>9.1%}  "
            f"{row.dealiased_hits:>9} {row.dealiased_vs_all:>9.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §6.7.1 — name-server seeds
# ---------------------------------------------------------------------------


@dataclass
class NsSeedResult:
    ns_seed_count: int
    full_seed_count: int
    ns_raw_hits: int
    ns_dealiased_hits: int
    full_raw_hits: int
    full_dealiased_hits: int

    @property
    def raw_ratio(self) -> float:
        """How many times more raw hits the full seed set finds."""
        return self.full_raw_hits / self.ns_raw_hits if self.ns_raw_hits else float("inf")

    @property
    def dealiased_ratio(self) -> float:
        return (
            self.full_dealiased_hits / self.ns_dealiased_hits
            if self.ns_dealiased_hits
            else float("inf")
        )


def ns_seed_experiment(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> NsSeedResult:
    """Run 6Gen on name-server seeds only (§6.7.1).

    The paper: NS-only seeds still find many hosts of *other* types,
    though the full seed set finds ~5× more dealiased and ~19× more
    raw hits.
    """
    context = standard_context(scale)
    ns_addrs = context.seeds.ns_addresses()
    ns_outcome = run_full_scan(context, budget, seed_addrs=ns_addrs)
    full_outcome = standard_outcome(budget, scale)
    return NsSeedResult(
        ns_seed_count=len(ns_addrs),
        full_seed_count=len(context.seed_addresses),
        ns_raw_hits=len(ns_outcome.raw_hits),
        ns_dealiased_hits=len(ns_outcome.clean_hits),
        full_raw_hits=len(full_outcome.raw_hits),
        full_dealiased_hits=len(full_outcome.clean_hits),
    )


def format_ns_experiment(result: NsSeedResult) -> str:
    return "\n".join(
        [
            "§6.7.1: name-server seeds vs full seed set",
            f"  NS seeds: {result.ns_seed_count} (full: {result.full_seed_count})",
            f"  NS-only   raw hits: {result.ns_raw_hits:>8}   dealiased: {result.ns_dealiased_hits:>8}",
            f"  full-set  raw hits: {result.full_raw_hits:>8}   dealiased: {result.full_dealiased_hits:>8}",
            f"  full/NS ratios: raw {result.raw_ratio:.1f}x, dealiased {result.dealiased_ratio:.1f}x",
        ]
    )


# ---------------------------------------------------------------------------
# §6.6 — churn analysis
# ---------------------------------------------------------------------------


@dataclass
class ChurnAnalysis:
    """Per-prefix comparison of hits against inactive seeds (§6.6)."""

    prefixes_considered: int
    prefixes_net_positive: int
    total_inactive_seeds: int
    total_clean_hits: int

    @property
    def net_positive_fraction(self) -> float:
        """Share of prefixes whose hits exceed their inactive seeds.

        The paper: positive for a quarter of prefixes — proof 6Gen finds
        genuinely new addresses, not just churned ones.
        """
        if not self.prefixes_considered:
            return 0.0
        return self.prefixes_net_positive / self.prefixes_considered


def churn_analysis(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> ChurnAnalysis:
    """§6.6's churn check: subtract inactive seeds from hits per prefix."""
    outcome = standard_outcome(budget, scale)
    truth = outcome.context.internet.truth
    counts = hits_per_prefix(outcome.clean_hits, outcome.context.groups)
    considered = 0
    net_positive = 0
    total_inactive = 0
    for prefix, seeds in outcome.context.groups.items():
        inactive = sum(1 for s in seeds if not truth.is_responsive(s))
        total_inactive += inactive
        considered += 1
        if counts[prefix] - inactive > 0:
            net_positive += 1
    return ChurnAnalysis(
        prefixes_considered=considered,
        prefixes_net_positive=net_positive,
        total_inactive_seeds=total_inactive,
        total_clean_hits=len(outcome.clean_hits),
    )


def format_churn(analysis: ChurnAnalysis) -> str:
    return "\n".join(
        [
            "§6.6: churn analysis (hits minus inactive seeds, per prefix)",
            f"  prefixes considered: {analysis.prefixes_considered}",
            f"  inactive (churned) seeds: {analysis.total_inactive_seeds}",
            f"  dealiased hits: {analysis.total_clean_hits}",
            f"  prefixes with net-new discovery: "
            f"{analysis.prefixes_net_positive} "
            f"({analysis.net_positive_fraction:.0%})",
        ]
    )


# ---------------------------------------------------------------------------
# §6.2 — aliasing census
# ---------------------------------------------------------------------------


@dataclass
class AliasingCensus:
    hit_prefixes_96: int
    aliased_prefixes_96: int
    aliased_hit_fraction: float
    aliased_asns: list[str]
    top_aliased_shares: list[AsShare]
    #: §6.2 roll-up: "the /96 prefixes corresponded to N routed
    #: prefixes in M ASes".
    aliased_routed_prefixes: int = 0
    aliased_as_count: int = 0


def aliasing_census(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> AliasingCensus:
    """The §6.2 numbers: /96 aliasing rate, AS concentration."""
    outcome = standard_outcome(budget, scale)
    from ..scanner.dealias import group_hits_by_prefix

    hit_96s = group_hits_by_prefix(outcome.raw_hits, 96)
    internet = outcome.context.internet
    from ..scanner.dealias import summarize_aliased_prefixes

    summary = summarize_aliased_prefixes(
        outcome.report.aliased_prefixes, internet.bgp
    )
    return AliasingCensus(
        hit_prefixes_96=len(hit_96s),
        aliased_prefixes_96=len(outcome.report.aliased_prefixes),
        aliased_hit_fraction=outcome.report.aliased_fraction(),
        aliased_asns=sorted(
            internet.as_name(asn) for asn in outcome.report.aliased_asns
        ),
        top_aliased_shares=top_ases(
            outcome.aliased_hits, internet.bgp, internet.registry, 5
        ),
        aliased_routed_prefixes=len(summary.routed_prefixes),
        aliased_as_count=len(summary.asns | set(outcome.report.aliased_asns)),
    )


def format_aliasing_census(census: AliasingCensus) -> str:
    lines = [
        "§6.2: aliasing census",
        f"  /96 prefixes with hits: {census.hit_prefixes_96}",
        f"  of which aliased:       {census.aliased_prefixes_96}",
        f"  aliased share of hits:  {census.aliased_hit_fraction:.1%}",
        f"  aliased space spans {census.aliased_routed_prefixes} routed "
        f"prefixes in {census.aliased_as_count} ASes",
        f"  ASes aliased finer than /96: {', '.join(census.aliased_asns) or '(none)'}",
        "  top ASes by aliased hits:",
    ]
    lines.extend("    " + str(r) for r in census.top_aliased_shares)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 8 & 9 — 6Gen vs Entropy/IP on the CDN datasets
# ---------------------------------------------------------------------------

#: Budget sweep for the CDN comparisons; the paper sweeps to 1 M, the
#: scaled datasets saturate by ~100 K.
CDN_BUDGETS: tuple[int, ...] = (5_000, 10_000, 25_000, 50_000, 100_000)


@dataclass
class CdnCurve:
    cdn: str
    algorithm: str
    points: list[TrainTestPoint]


def fig8_traintest(
    budgets: Sequence[int] = CDN_BUDGETS,
    *,
    dataset_size: int = 10_000,
    folds_to_run: int = 1,
    cdn_indices: Sequence[int] = (1, 2, 3, 4, 5),
) -> list[CdnCurve]:
    """Train-and-test curves for 6Gen and Entropy/IP on CDN 1–5 (Fig. 8)."""
    curves = []
    for cdn in all_cdns(dataset_size=dataset_size):
        if int(cdn.name[-1]) not in cdn_indices:
            continue
        for label, generator in (
            ("6Gen", sixgen_generator),
            ("Entropy/IP", entropyip_generator),
        ):
            points = inverse_kfold(
                cdn.addresses,
                generator,
                budgets,
                folds_to_run=folds_to_run,
            )
            curves.append(CdnCurve(cdn=cdn.name, algorithm=label, points=points))
    return curves


def format_fig8(curves: Sequence[CdnCurve]) -> str:
    lines = ["Figure 8: fraction of test addresses found (train-and-test)"]
    budgets = [p.budget for p in curves[0].points] if curves else []
    header = f"{'CDN':<6} {'algorithm':<11} " + " ".join(
        f"{b//1000:>6}k" for b in budgets
    )
    lines.append(header)
    for curve in curves:
        values = " ".join(f"{p.fraction:>7.3f}" for p in curve.points)
        lines.append(f"{curve.cdn:<6} {curve.algorithm:<11} {values}")
    return "\n".join(lines)


@dataclass
class CdnScanCurve:
    cdn: str
    algorithm: str
    budgets: list[int]
    raw_hits: list[int]
    filtered_hits: list[int]


def fig9_cdn_scan(
    budgets: Sequence[int] = CDN_BUDGETS,
    *,
    dataset_size: int = 10_000,
    train_fraction: float = 0.1,
    cdn_indices: Sequence[int] = (1, 2, 3, 4, 5),
) -> list[CdnScanCurve]:
    """Active-scan hit counts per CDN, raw and alias-filtered (Fig. 9)."""
    from .traintest import split_folds

    curves = []
    for cdn in all_cdns(dataset_size=dataset_size):
        if int(cdn.name[-1]) not in cdn_indices:
            continue
        folds = split_folds(cdn.addresses, k=round(1 / train_fraction), rng_seed=0)
        train = folds[0]
        for label, generator in (
            ("6Gen", sixgen_generator),
            ("Entropy/IP", entropyip_generator),
        ):
            raw_hits, filtered_hits = [], []
            for budget in budgets:
                # Measure *discovery*: the training seeds are known
                # responsive, so they are excluded from the scan.
                targets = generator(train, budget) - set(train)
                scanner = Scanner(cdn.truth)
                scan = scanner.scan(targets)
                report = dealias(scan.hits, scanner, cdn.bgp, as_inspection=False)
                raw_hits.append(len(scan.hits))
                filtered_hits.append(len(report.clean_hits))
            curves.append(
                CdnScanCurve(
                    cdn=cdn.name,
                    algorithm=label,
                    budgets=list(budgets),
                    raw_hits=raw_hits,
                    filtered_hits=filtered_hits,
                )
            )
    return curves


def format_fig9(curves: Sequence[CdnScanCurve]) -> str:
    lines = ["Figure 9: TCP/80 hits in CDN networks"]
    if curves:
        header = f"{'CDN':<6} {'algorithm':<11} {'kind':<9} " + " ".join(
            f"{b//1000:>6}k" for b in curves[0].budgets
        )
        lines.append(header)
    for curve in curves:
        raw = " ".join(f"{h:>7}" for h in curve.raw_hits)
        filt = " ".join(f"{h:>7}" for h in curve.filtered_hits)
        lines.append(f"{curve.cdn:<6} {curve.algorithm:<11} {'raw':<9} {raw}")
        lines.append(f"{curve.cdn:<6} {curve.algorithm:<11} {'filtered':<9} {filt}")
    return "\n".join(lines)
