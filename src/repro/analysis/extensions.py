"""§8 exploration drivers: the paper's explicitly posed open questions.

The paper's Future Work section asks three concrete questions this
module answers experimentally against the simulation:

* **Cross-protocol seeding** — "how do 6Gen and Entropy/IP perform when
  seeking SMTP or SSH servers?"  We seed from TCP/80-responsive hosts
  and scan the generated targets on a different port.
* **Seed prefiltering** — "do their predictions differ when run on only
  active seeds (seeds freshly probed for responsiveness), or on seeds
  that are first dealiased?"
* **Budget allocation** — "a routed prefix's budget could be dependent
  on the number of seeds within … What the most suitable budget
  allocation policy is … is still an open question."  We compare the
  static policy against seed-proportional allocation at equal total
  budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.feedback import run_adaptive
from ..scanner.dealias import dealias
from ..scanner.engine import Scanner
from ..simnet.bgp import group_by_routed_prefix
from .experiments import (
    DEFAULT_BUDGET,
    DEFAULT_SCALE,
    run_full_scan,
    standard_context,
)
from .grouping import run_per_prefix, seed_proportional_budget


# ---------------------------------------------------------------------------
# Cross-protocol seeding
# ---------------------------------------------------------------------------


@dataclass
class CrossProtocolResult:
    seed_port: int
    target_port: int
    seed_count: int
    targets_generated: int
    hits_on_target_port: int
    true_hosts_on_target_port: int

    @property
    def coverage(self) -> float:
        """Fraction of the target-port population discovered."""
        if not self.true_hosts_on_target_port:
            return 0.0
        return self.hits_on_target_port / self.true_hosts_on_target_port


def cross_protocol_experiment(
    seed_port: int = 80,
    target_port: int = 443,
    budget: int = DEFAULT_BUDGET,
    scale: float = DEFAULT_SCALE,
) -> CrossProtocolResult:
    """Seed from one service's hosts, hunt another service (§8).

    Seeds are the simulation's DNS-visible hosts that respond on
    ``seed_port``; generated targets are scanned on ``target_port``.
    Because dual-stack services cluster in the same subnets, coverage
    should stay high — the paper's §6.7.1 finding generalised.
    """
    context = standard_context(scale)
    truth = context.internet.truth
    seeds = [
        a for a in context.seed_addresses if truth.is_responsive(a, seed_port)
    ]
    groups = group_by_routed_prefix(seeds, context.internet.bgp)
    run = run_per_prefix(groups, budget)
    scanner = Scanner(truth)
    scan = scanner.scan(run.all_targets(), port=target_port)
    report = dealias(scan.hits, scanner, context.internet.bgp, port=target_port)
    return CrossProtocolResult(
        seed_port=seed_port,
        target_port=target_port,
        seed_count=len(seeds),
        targets_generated=len(run.all_targets()),
        hits_on_target_port=len(report.clean_hits),
        true_hosts_on_target_port=truth.host_count(target_port),
    )


def format_cross_protocol(result: CrossProtocolResult) -> str:
    return "\n".join(
        [
            f"§8 cross-protocol: TCP/{result.seed_port} seeds -> "
            f"TCP/{result.target_port} scan",
            f"  seeds: {result.seed_count}",
            f"  targets: {result.targets_generated}",
            f"  dealiased TCP/{result.target_port} hits: "
            f"{result.hits_on_target_port} of "
            f"{result.true_hosts_on_target_port} real hosts "
            f"({result.coverage:.1%} coverage)",
        ]
    )


# ---------------------------------------------------------------------------
# Probe-type comparison (TCP/80 vs ICMPv6)
# ---------------------------------------------------------------------------


@dataclass
class ProbeTypeRow:
    probe: str
    raw_hits: int
    dealiased_hits: int
    true_population: int

    @property
    def coverage(self) -> float:
        if not self.true_population:
            return 0.0
        return self.dealiased_hits / self.true_population


def probe_type_experiment(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[ProbeTypeRow]:
    """TCP/80 SYN scanning vs ICMPv6 echo scanning on the same targets.

    The Entropy/IP authors evaluated with ICMPv6 pings, the 6Gen paper
    with TCP/80 SYNs; this driver quantifies the difference in the
    simulation: ping reaches every active host (a larger population),
    TCP/80 only web hosts, with aliased regions answering both.
    """
    from ..simnet.ground_truth import ICMPV6

    context = standard_context(scale)
    truth = context.internet.truth
    rows = []
    for label, port in (("TCP/80", 80), ("ICMPv6", ICMPV6)):
        outcome = run_full_scan(context, budget, port=port)
        rows.append(
            ProbeTypeRow(
                probe=label,
                raw_hits=len(outcome.raw_hits),
                dealiased_hits=len(outcome.clean_hits),
                true_population=truth.host_count(port),
            )
        )
    return rows


def format_probe_types(rows: Sequence[ProbeTypeRow]) -> str:
    lines = ["probe-type comparison (same targets, different probes)"]
    lines.append(
        f"{'probe':<8} {'raw hits':>9} {'dealiased':>10} "
        f"{'population':>11} {'coverage':>9}"
    )
    for row in rows:
        lines.append(
            f"{row.probe:<8} {row.raw_hits:>9} {row.dealiased_hits:>10} "
            f"{row.true_population:>11} {row.coverage:>9.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Host-type seed slices (§6.7.1 generalised)
# ---------------------------------------------------------------------------


@dataclass
class SeedTypeRow:
    record_type: str
    seed_count: int
    raw_hits: int
    dealiased_hits: int


def seed_type_experiment(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[SeedTypeRow]:
    """Run 6Gen on per-record-type seed slices (NS, MX, full AAAA).

    Generalises the paper's §6.7.1 name-server experiment: seeds of a
    single host type still discover hosts of other types, with smaller
    slices finding proportionally fewer.
    """
    from ..simnet.dns import seeds_of_type

    context = standard_context(scale)
    rows = []
    for record_type, seeds in (
        ("AAAA (all)", context.seed_addresses),
        ("NS", context.seeds.ns_addresses()),
        ("MX", seeds_of_type(context.seeds, ["MX"])),
    ):
        if not seeds:
            rows.append(SeedTypeRow(record_type, 0, 0, 0))
            continue
        outcome = run_full_scan(context, budget, seed_addrs=seeds)
        rows.append(
            SeedTypeRow(
                record_type=record_type,
                seed_count=len(seeds),
                raw_hits=len(outcome.raw_hits),
                dealiased_hits=len(outcome.clean_hits),
            )
        )
    return rows


def format_seed_types(rows: Sequence[SeedTypeRow]) -> str:
    lines = ["§6.7.1 generalised: seeds sliced by DNS record type"]
    lines.append(f"{'record type':<12} {'seeds':>7} {'raw hits':>9} {'dealiased':>10}")
    for row in rows:
        lines.append(
            f"{row.record_type:<12} {row.seed_count:>7} {row.raw_hits:>9} "
            f"{row.dealiased_hits:>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Seed prefiltering
# ---------------------------------------------------------------------------


@dataclass
class PrefilterRow:
    variant: str
    seed_count: int
    raw_hits: int
    dealiased_hits: int
    new_dealiased_hits: int


def seed_prefilter_experiment(
    budget: int = DEFAULT_BUDGET, scale: float = DEFAULT_SCALE
) -> list[PrefilterRow]:
    """Compare raw, liveness-filtered, and dealiased seed inputs (§8)."""
    context = standard_context(scale)
    truth = context.internet.truth
    all_seeds = context.seed_addresses

    active = [a for a in all_seeds if truth.is_responsive(a, 80)]
    dealiased_active = [a for a in active if not truth.is_aliased(a, 80)]

    rows = []
    for variant, seeds in (
        ("all seeds", all_seeds),
        ("active seeds", active),
        ("active+dealiased", dealiased_active),
    ):
        outcome = run_full_scan(context, budget, seed_addrs=seeds)
        rows.append(
            PrefilterRow(
                variant=variant,
                seed_count=len(seeds),
                raw_hits=len(outcome.raw_hits),
                dealiased_hits=len(outcome.clean_hits),
                new_dealiased_hits=len(outcome.clean_hits - set(seeds)),
            )
        )
    return rows


def format_prefilter(rows: Sequence[PrefilterRow]) -> str:
    lines = ["§8 seed prefiltering"]
    lines.append(
        f"{'variant':<18} {'seeds':>7} {'raw hits':>9} {'dealiased':>10} {'new':>7}"
    )
    for row in rows:
        lines.append(
            f"{row.variant:<18} {row.seed_count:>7} {row.raw_hits:>9} "
            f"{row.dealiased_hits:>10} {row.new_dealiased_hits:>7}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Budget allocation policies
# ---------------------------------------------------------------------------


@dataclass
class AllocationRow:
    policy: str
    total_budget: int
    raw_hits: int
    dealiased_hits: int


def budget_allocation_experiment(
    budget_per_prefix: int = DEFAULT_BUDGET // 4,
    scale: float = DEFAULT_SCALE,
) -> list[AllocationRow]:
    """Static vs seed-proportional budget allocation at equal totals (§8)."""
    context = standard_context(scale)
    groups = context.groups
    prefix_count = len(groups)
    seed_total = sum(len(v) for v in groups.values())
    total_budget = budget_per_prefix * prefix_count
    per_seed = max(1, total_budget // seed_total)

    scanner = Scanner(context.internet.truth)
    rows = []
    for policy_name, run in (
        (
            "static",
            run_per_prefix(groups, budget_per_prefix),
        ),
        (
            "seed-proportional",
            run_per_prefix(
                groups, per_seed, budget_policy=seed_proportional_budget
            ),
        ),
    ):
        scan = scanner.scan(run.all_targets())
        report = dealias(scan.hits, scanner, context.internet.bgp)
        rows.append(
            AllocationRow(
                policy=policy_name,
                total_budget=sum(r.budget for r in run.runs.values()),
                raw_hits=len(scan.hits),
                dealiased_hits=len(report.clean_hits),
            )
        )
    return rows


def format_allocation(rows: Sequence[AllocationRow]) -> str:
    lines = ["§8 budget allocation policies (equal total budget)"]
    lines.append(f"{'policy':<19} {'total budget':>13} {'raw hits':>9} {'dealiased':>10}")
    for row in rows:
        lines.append(
            f"{row.policy:<19} {row.total_budget:>13} {row.raw_hits:>9} "
            f"{row.dealiased_hits:>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Adaptive (feedback) vs classic pipeline
# ---------------------------------------------------------------------------


@dataclass
class AdaptiveComparisonRow:
    pipeline: str
    probes: int
    real_hits: int
    aliased_responses: int

    @property
    def efficiency(self) -> float:
        """Real hosts discovered per probe."""
        return self.real_hits / self.probes if self.probes else 0.0


def adaptive_vs_classic_experiment(
    budget: int = 8_000, scale: float = 0.15, asn: int = 20940
) -> list[AdaptiveComparisonRow]:
    """§8 scanner integration: feedback loop vs generate-then-scan.

    Runs both pipelines on one partly aliased network with the same
    probe budget and compares probe efficiency.
    """
    from ..core.sixgen import run_6gen
    from ..simnet.dns import collect_seeds
    from ..simnet.ground_truth import default_internet

    internet = default_internet(scale=scale)
    truth = internet.truth
    network = internet.network_for_asn(asn)[0]
    seeds = [
        s
        for s in collect_seeds(internet).addresses()
        if network.spec.routed_prefix.contains(s)
    ]

    scanner = Scanner(truth)
    classic = run_6gen(seeds, budget)
    scan = scanner.scan(classic.new_targets(seeds))
    classic_real = {h for h in scan.hits if not truth.is_aliased(h)}

    scanner2 = Scanner(truth)
    adaptive = run_adaptive(seeds, scanner2, budget, rounds=2)
    adaptive_real = {h for h in adaptive.hits if not truth.is_aliased(h)}

    return [
        AdaptiveComparisonRow(
            pipeline="classic",
            probes=scan.stats.probes_sent,
            real_hits=len(classic_real),
            aliased_responses=len(scan.hits) - len(classic_real),
        ),
        AdaptiveComparisonRow(
            pipeline="adaptive",
            probes=adaptive.probes_used,
            real_hits=len(adaptive_real),
            aliased_responses=len(adaptive.hits) - len(adaptive_real),
        ),
    ]


def format_adaptive_comparison(rows: Sequence[AdaptiveComparisonRow]) -> str:
    lines = ["§8 scanner integration: classic vs adaptive pipeline"]
    lines.append(
        f"{'pipeline':<10} {'probes':>8} {'real hits':>10} "
        f"{'aliased resp.':>14} {'hits/probe':>11}"
    )
    for row in rows:
        lines.append(
            f"{row.pipeline:<10} {row.probes:>8} {row.real_hits:>10} "
            f"{row.aliased_responses:>14} {row.efficiency:>11.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Predictive (phased, budget-aware) vs classic allocation
# ---------------------------------------------------------------------------


@dataclass
class PredictiveRow:
    """One (policy, budget-fraction) point on the probes-vs-coverage curve."""

    policy: str
    budget_fraction: float
    total_budget: int
    probes_sent: int
    raw_hits: int
    dealiased_hits: int
    coverage: float


def predictive_allocation_experiment(
    budget_per_prefix: int = DEFAULT_BUDGET // 4,
    scale: float = DEFAULT_SCALE,
    phases: int = 3,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    port: int = 80,
) -> list[PredictiveRow]:
    """Classic static split vs predictive re-allocation, per budget point.

    At every budget fraction both pipelines get the same total budget;
    the predictive one runs the phased campaign loop (uniform pilot,
    then re-split by modelled hit rate).  Coverage is dealiased hits
    over the world's responsive hosts — the §8 question is how much
    coverage a budget buys, and how much budget a coverage level needs.
    """
    from ..campaign import Campaign, CampaignSpec
    from ..predictive import PredictiveAllocator, policy_labels

    context = standard_context(scale)
    internet = context.internet
    hosts = internet.truth.host_count(port)
    labels = policy_labels(internet)
    rows = []
    for fraction in fractions:
        budget = max(1, int(budget_per_prefix * fraction))
        for policy_name, allocation in (
            ("classic", None),
            (
                "predictive",
                PredictiveAllocator(phases=phases, policy_labels=labels),
            ),
        ):
            spec = CampaignSpec(budget=budget, port=port)
            campaign = Campaign(
                internet.truth, internet.bgp, context.groups, spec,
                allocation=allocation,
            )
            result = campaign.run()
            prefixes = len(campaign.progress) if allocation else len(
                context.groups
            )
            rows.append(
                PredictiveRow(
                    policy=policy_name,
                    budget_fraction=fraction,
                    total_budget=budget * prefixes,
                    probes_sent=result.probes_sent,
                    raw_hits=len(result.raw_hits),
                    dealiased_hits=len(result.clean_hits),
                    coverage=len(result.clean_hits) / hosts if hosts else 0.0,
                )
            )
    return rows


def format_predictive(rows: Sequence[PredictiveRow]) -> str:
    lines = ["§8 predictive allocation: probes vs coverage (equal budgets)"]
    lines.append(
        f"{'policy':<11} {'fraction':>8} {'budget':>8} {'probes':>8} "
        f"{'dealiased':>10} {'coverage':>9}"
    )
    for row in rows:
        lines.append(
            f"{row.policy:<11} {row.budget_fraction:>8.2f} "
            f"{row.total_budget:>8} {row.probes_sent:>8} "
            f"{row.dealiased_hits:>10} {row.coverage:>9.2%}"
        )
    return "\n".join(lines)
