"""Measurement metrics shared by the experiment harness.

Implements the aggregations behind the paper's tables and figures:
top-AS tables (Table 1), per-ASN CDFs (Figure 3), seed-count bucketing
(Figures 5 & 7), cluster censuses (Figure 5), and the dynamic-nybble
histogram (Figure 6).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.sixgen import SixGenResult
from ..ipv6.nybble import NYBBLE_COUNT
from ..ipv6.prefix import Prefix
from ..simnet.asn import AsRegistry
from ..simnet.bgp import BgpTable


@dataclass(frozen=True)
class AsShare:
    """One row of a Table 1-style top-AS table."""

    name: str
    asn: int
    count: int
    share: float

    def __str__(self) -> str:
        return f"{self.name:<16} AS{self.asn:<7} {self.count:>9}  {self.share:6.1%}"


def top_ases(
    addrs: Iterable[int],
    bgp: BgpTable,
    registry: AsRegistry,
    k: int = 10,
) -> list[AsShare]:
    """Top-``k`` ASes by address count with their shares (Table 1)."""
    counts: Counter[int] = Counter()
    total = 0
    for addr in addrs:
        asn = bgp.origin_asn(int(addr))
        if asn is not None:
            counts[asn] += 1
            total += 1
    rows = []
    for asn, count in counts.most_common(k):
        rows.append(
            AsShare(
                name=registry.name_of(asn), asn=asn, count=count, share=count / total
            )
        )
    return rows


def asn_cdf(addrs: Iterable[int], bgp: BgpTable) -> list[tuple[int, float]]:
    """CDF of addresses across ASNs, ordered by per-ASN count (Figure 3).

    Returns ``(rank, cumulative_fraction)`` points: the fraction of all
    addresses contained in the top-``rank`` ASNs.
    """
    counts: Counter[int] = Counter()
    for addr in addrs:
        asn = bgp.origin_asn(int(addr))
        if asn is not None:
            counts[asn] += 1
    total = sum(counts.values())
    points: list[tuple[int, float]] = []
    cumulative = 0
    for rank, (_, count) in enumerate(counts.most_common(), start=1):
        cumulative += count
        points.append((rank, cumulative / total if total else 0.0))
    return points


def cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF points ``(value, fraction <= value)``."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


#: The paper's seed-count buckets for Figures 5 and 7.
SEED_BUCKETS: tuple[tuple[int, int], ...] = (
    (2, 10),
    (10, 100),
    (100, 1_000),
    (1_000, 10_000),
    (10_000, 100_000),
)


def bucket_label(bounds: tuple[int, int]) -> str:
    return f"[{bounds[0]}; {bounds[1]})"


def bucket_prefixes_by_seed_count(
    groups: Mapping[Prefix, Sequence[int]],
    buckets: Sequence[tuple[int, int]] = SEED_BUCKETS,
) -> dict[tuple[int, int], list[Prefix]]:
    """Group routed prefixes into the paper's seed-count buckets."""
    out: dict[tuple[int, int], list[Prefix]] = {b: [] for b in buckets}
    for prefix, seeds in groups.items():
        n = len(seeds)
        for low, high in buckets:
            if low <= n < high:
                out[(low, high)].append(prefix)
                break
    return out


@dataclass
class ClusterCensus:
    """Per-prefix cluster statistics for Figure 5."""

    prefix: Prefix
    seed_count: int
    singleton_clusters: int
    grown_clusters: int


def cluster_census(
    results: Mapping[Prefix, SixGenResult]
) -> list[ClusterCensus]:
    """Singleton/grown cluster counts per routed prefix (Figure 5)."""
    rows = []
    for prefix, result in results.items():
        rows.append(
            ClusterCensus(
                prefix=prefix,
                seed_count=result.seed_count,
                singleton_clusters=len(result.singleton_clusters()),
                grown_clusters=len(result.grown_clusters()),
            )
        )
    return rows


def dynamic_nybble_histogram(
    results: Mapping[Prefix, SixGenResult]
) -> list[float]:
    """Portion of routed prefixes with each nybble dynamic (Figure 6).

    For each nybble index, the fraction of prefixes that have *any*
    cluster range with that nybble dynamic.  The paper observes a
    bimodal shape: subnet-identifier nybbles (9–16) and the lowest
    nybbles (≥ 29, 1-based) dominate.
    """
    counts = [0] * NYBBLE_COUNT
    total = len(results)
    for result in results.values():
        for index in result.dynamic_nybble_indices():
            counts[index] += 1
    return [c / total if total else 0.0 for c in counts]


def hits_per_prefix(
    hits: Iterable[int], groups: Mapping[Prefix, Sequence[int]]
) -> dict[Prefix, int]:
    """Count hits inside each routed prefix (Figure 7).

    Prefixes are matched by containment (groups carry the routed
    prefixes of the run); hits outside every known prefix are ignored.
    """
    by_length: dict[int, dict[int, Prefix]] = defaultdict(dict)
    for prefix in groups:
        by_length[prefix.length][prefix.network] = prefix
    counts: dict[Prefix, int] = {prefix: 0 for prefix in groups}
    lengths = sorted(by_length, reverse=True)
    for addr in hits:
        value = int(addr)
        for length in lengths:
            candidate = by_length[length].get(
                Prefix.containing(value, length).network
            )
            if candidate is not None:
                counts[candidate] += 1
                break
    return counts


def quantiles(values: Sequence[float], points: Sequence[float] = (0.25, 0.5, 0.75)) -> list[float]:
    """Simple inclusive quantiles of a sample (no interpolation surprises)."""
    if not values:
        return [float("nan")] * len(points)
    ordered = sorted(values)
    out = []
    for q in points:
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        out.append(float(ordered[idx]))
    return out
