"""PRF-keyed fault models: pure functions of ``(seed, addr, attempt)``.

Each model answers one question — "does this probe get dropped?" —
through :meth:`FaultModel.drops`.  Verdicts are derived from splitmix64
hashes of the model seed, the 128-bit address, and the attempt number,
never from sequential RNG state.  That choice buys three properties the
scanner's parity tests rely on:

* **order independence** — the verdict for a probe does not depend on
  which probes came before it, so batched, pooled, and sequential scan
  paths agree bit-for-bit;
* **retry realism** — the attempt number is part of the key, so a
  retransmission is a fresh Bernoulli draw (except where a model
  deliberately pins state per address, e.g. a dead flaky host);
* **replayability** — rerunning a campaign with the same seed replays
  the exact fault sequence, which is what makes checkpoint/resume
  verifiable.

``WorkerCrash`` is the odd one out: it models an operational fault (a
scan worker dying mid-campaign) rather than a network one, and fires by
raising :class:`InjectedWorkerCrash` at a chosen batch index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..scanner.schedule import RatePolicy, _mix64_np, mix64

_M64 = (1 << 64) - 1
_TWO64 = float(1 << 64)
_TWO64_NP = np.float64(2**64)
_ZERO64 = np.uint64(0)

# Domain-separation salts: each question a model asks the PRF gets its
# own constant, so e.g. "which window is this probe in" and "does the
# window drop it" are independent draws.
_SALT_DROP = 0x9D8A7B6C5D4E3F21
_SALT_WINDOW = 0x1F2E3D4C5B6A7988
_SALT_STATE = 0xC3A5C85C97CB3127
_SALT_ARRIVAL = 0xB492B66FBE98F273
_SALT_MEMBER = 0x6C62272E07BB0142
_SALT_AVAIL = 0x27D4EB2F165667C5


def _prf_bits(seed: int, salt: int, *parts: int) -> int:
    """64-bit PRF of a seed, a salt, and any number of integer parts.

    128-bit parts (addresses) are folded in as two 64-bit words so the
    full address participates.
    """
    h = mix64((seed ^ salt) & _M64)
    for part in parts:
        part = int(part)
        h = mix64(h ^ (part & _M64))
        high = part >> 64
        if high:
            h = mix64(h ^ (high & _M64))
    return h


def _prf_unit(seed: int, salt: int, *parts: int) -> float:
    """Uniform-in-[0, 1) PRF over the same key material."""
    return _prf_bits(seed, salt, *parts) / _TWO64


# -- vectorised PRF helpers (bit-identical to the scalar forms) -------------
def _prf_start(seed: int, salt: int) -> np.uint64:
    """The scalar hash-chain start ``mix64(seed ^ salt)`` as a uint64."""
    return np.uint64(mix64((seed ^ salt) & _M64))


def _fold64(h: np.ndarray | np.uint64, part: np.ndarray | np.uint64) -> np.ndarray:
    """Fold one 64-bit part into the chain (matches ``_prf_bits``)."""
    return _mix64_np(h ^ part)


def _fold128(
    h: np.ndarray | np.uint64, hi: np.ndarray, lo: np.ndarray
) -> np.ndarray:
    """Fold a 128-bit part given as hi/lo columns.

    The scalar ``_prf_bits`` folds the high word only when it is
    non-zero; ``np.where`` replicates that branch exactly.
    """
    h = _mix64_np(h ^ lo)
    return np.where(hi != _ZERO64, _mix64_np(h ^ hi), h)


def _unit(h: np.ndarray) -> np.ndarray:
    """Chain value -> uniform-in-[0, 1) float64 (exact 2**64 scaling)."""
    return h / _TWO64_NP


class FaultModel:
    """One deterministic probe-level fault.

    Subclasses implement :meth:`drops`; :meth:`drops_many` is the
    batched form the scanner's bulk path uses (override it if a model
    can vectorise, the default just loops).
    """

    def drops(self, addr: int, port: int, attempt: int) -> bool:
        raise NotImplementedError

    def drops_many(
        self, addrs: Sequence[int], port: int, attempt: int
    ) -> list[bool]:
        return [self.drops(int(a), port, attempt) for a in addrs]

    def drops_many_arr(
        self, hi: np.ndarray, lo: np.ndarray, port: int, attempt: int
    ) -> np.ndarray:
        """Batched verdicts over hi/lo uint64 columns (bool array).

        Built-in models override this with fully vectorised PRFs; the
        default unpacks to ints and delegates to :meth:`drops_many`, so
        any custom model works on the array scan path unchanged.
        """
        from ..ipv6.addrplane import unpack

        return np.asarray(
            self.drops_many(unpack(hi, lo), port, attempt), dtype=bool
        )


@dataclass(frozen=True)
class BurstyLoss(FaultModel):
    """Gilbert–Elliott two-state loss channel, PRF-approximated.

    The classical model is a Markov chain: a *good* state with low loss
    and a *bad* state with high loss, with per-slot transition
    probabilities ``p_enter`` (good→bad) and ``p_exit`` (bad→good).
    A literal chain is sequential state — poison for order-independent
    scans — so this model keeps the chain's two observable signatures
    and discards the sequencing:

    * the stationary fraction of time spent bad,
      ``p_enter / (p_enter + p_exit)``;
    * the mean burst length, ``1 / p_exit`` slots.

    Each probe is hashed to a virtual time slot, slots group into
    windows of the mean burst length, and the *window* (not the probe)
    draws good/bad at the stationary probability.  Probes landing in a
    bad window share its fate — losses arrive in bursts — yet every
    verdict is still a pure function of ``(seed, addr, attempt)``.
    """

    seed: int
    p_enter: float = 0.02
    p_exit: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9

    def __post_init__(self) -> None:
        for name in ("p_enter", "p_exit"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]: {value}")
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")

    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of time the channel spends in the bad state."""
        return self.p_enter / (self.p_enter + self.p_exit)

    @property
    def burst_slots(self) -> int:
        """Mean bad-burst length in slots (window size for state draws)."""
        return max(1, round(1.0 / self.p_exit))

    def drops(self, addr: int, port: int, attempt: int) -> bool:
        slot = _prf_bits(self.seed, _SALT_WINDOW, addr, attempt) & 0xFFFFFFFF
        window = slot // self.burst_slots
        bad = _prf_unit(self.seed, _SALT_STATE, window) < self.stationary_bad
        loss = self.loss_bad if bad else self.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return _prf_unit(self.seed, _SALT_DROP, addr, attempt) < loss

    def drops_many_arr(
        self, hi: np.ndarray, lo: np.ndarray, port: int, attempt: int
    ) -> np.ndarray:
        att = np.uint64(attempt)
        slot = _fold64(
            _fold128(_prf_start(self.seed, _SALT_WINDOW), hi, lo), att
        ) & np.uint64(0xFFFFFFFF)
        window = slot // np.uint64(self.burst_slots)
        bad = (
            _unit(_fold64(_prf_start(self.seed, _SALT_STATE), window))
            < self.stationary_bad
        )
        loss = np.where(bad, self.loss_bad, self.loss_good)
        draw = _unit(
            _fold64(_fold128(_prf_start(self.seed, _SALT_DROP), hi, lo), att)
        )
        # Mirrors the scalar clamps: loss<=0 never drops, loss>=1 always.
        return (loss > 0.0) & ((loss >= 1.0) | (draw < loss))


@dataclass(frozen=True)
class RateLimiter(FaultModel):
    """Per-prefix responders that stop answering above a probe budget.

    Models ICMPv6-style rate limiting: a network answers at most
    ``budget`` probes out of every ``window`` virtual arrivals aimed at
    its ``/prefix_len``.  Each probe is hashed to an arrival slot
    within its prefix's window; slots past the budget are silently
    dropped.  With the default ``budget/window`` ratio a limited prefix
    answers ~25% of probes — retries land in fresh slots (the attempt
    is part of the hash), so persistence pays, just like against real
    throttling routers.

    ``limited_fraction`` < 1 limits only a PRF-chosen subset of
    prefixes, leaving the rest transparent.

    The budget/window admission rule itself lives in
    :class:`repro.scanner.schedule.RatePolicy` (shared with the
    campaign scheduler's per-prefix caps); this model keeps the network
    side — hashing each probe to an arrival slot within its prefix's
    window — and drops exactly the probes the policy does not admit.
    """

    seed: int
    budget: int = 64
    window: int = 256
    prefix_len: int = 64
    limited_fraction: float = 1.0

    def __post_init__(self) -> None:
        # Validates budget/window; cached because scalar drops() runs
        # once per probe (object.__setattr__ walks the frozen wall).
        object.__setattr__(self, "_policy", RatePolicy(self.budget, self.window))
        if not 0 <= self.prefix_len <= 128:
            raise ValueError(f"prefix_len must be in [0, 128]: {self.prefix_len}")
        if not 0.0 <= self.limited_fraction <= 1.0:
            raise ValueError(
                f"limited_fraction must be in [0, 1]: {self.limited_fraction}"
            )

    @property
    def policy(self) -> RatePolicy:
        """The admission rule this limiter enforces."""
        return self._policy

    @classmethod
    def from_policy(
        cls,
        policy: RatePolicy,
        *,
        seed: int,
        prefix_len: int = 64,
        limited_fraction: float = 1.0,
    ) -> "RateLimiter":
        """Build the network-side enforcement of a scheduling policy."""
        return cls(
            seed=seed,
            budget=policy.budget,
            window=policy.window,
            prefix_len=prefix_len,
            limited_fraction=limited_fraction,
        )

    def _prefix_of(self, addr: int) -> int:
        return addr >> (128 - self.prefix_len) if self.prefix_len else 0

    def drops(self, addr: int, port: int, attempt: int) -> bool:
        prefix = self._prefix_of(addr)
        if self.limited_fraction < 1.0:
            if _prf_unit(self.seed, _SALT_MEMBER, prefix) >= self.limited_fraction:
                return False
        slot = _prf_bits(self.seed, _SALT_ARRIVAL, prefix, addr, attempt)
        return not self._policy.admits(slot)

    def _prefix_columns(
        self, hi: np.ndarray, lo: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``/prefix_len`` network *value* as hi/lo columns.

        numpy shifts by >= 64 are undefined for uint64, so the four
        length regimes are handled explicitly.
        """
        length = self.prefix_len
        zeros = np.zeros(len(hi), dtype=np.uint64)
        if length == 0:
            return zeros, zeros
        if length <= 64:
            plo = hi if length == 64 else hi >> np.uint64(64 - length)
            return zeros, plo
        if length == 128:
            return hi, lo
        shift = np.uint64(128 - length)
        plo = (hi << (np.uint64(64) - shift)) | (lo >> shift)
        return hi >> shift, plo

    def drops_many_arr(
        self, hi: np.ndarray, lo: np.ndarray, port: int, attempt: int
    ) -> np.ndarray:
        phi, plo = self._prefix_columns(hi, lo)
        slot = _fold64(
            _fold128(
                _fold128(_prf_start(self.seed, _SALT_ARRIVAL), phi, plo),
                hi,
                lo,
            ),
            np.uint64(attempt),
        )
        dropped = ~self._policy.admits_arr(slot)
        if self.limited_fraction < 1.0:
            member = (
                _unit(_fold128(_prf_start(self.seed, _SALT_MEMBER), phi, plo))
                < self.limited_fraction
            )
            dropped &= member
        return dropped


@dataclass(frozen=True)
class FlakyHosts(FaultModel):
    """Hosts with a stable per-address availability below 1.

    Follow-up hitlist studies (Gasser et al.) find responsiveness is
    unstable across probes even for "known" hosts.  Each address draws
    a fixed availability in ``[min_availability, max_availability]``
    from its hash; every (attempt-keyed) probe then succeeds with that
    probability.  ``flaky_fraction`` < 1 makes only a PRF-chosen subset
    of addresses flaky at all.
    """

    seed: int
    min_availability: float = 0.3
    max_availability: float = 0.95
    flaky_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_availability <= self.max_availability <= 1.0:
            raise ValueError(
                "need 0 <= min_availability <= max_availability <= 1: "
                f"{self.min_availability}..{self.max_availability}"
            )
        if not 0.0 <= self.flaky_fraction <= 1.0:
            raise ValueError(
                f"flaky_fraction must be in [0, 1]: {self.flaky_fraction}"
            )

    def drops(self, addr: int, port: int, attempt: int) -> bool:
        if self.flaky_fraction < 1.0:
            if _prf_unit(self.seed, _SALT_MEMBER, addr) >= self.flaky_fraction:
                return False
        span = self.max_availability - self.min_availability
        availability = self.min_availability + span * _prf_unit(
            self.seed, _SALT_AVAIL, addr
        )
        return _prf_unit(self.seed, _SALT_DROP, addr, attempt) >= availability

    def drops_many_arr(
        self, hi: np.ndarray, lo: np.ndarray, port: int, attempt: int
    ) -> np.ndarray:
        span = self.max_availability - self.min_availability
        availability = self.min_availability + span * _unit(
            _fold128(_prf_start(self.seed, _SALT_AVAIL), hi, lo)
        )
        draw = _unit(
            _fold64(
                _fold128(_prf_start(self.seed, _SALT_DROP), hi, lo),
                np.uint64(attempt),
            )
        )
        dropped = draw >= availability
        if self.flaky_fraction < 1.0:
            member = (
                _unit(_fold128(_prf_start(self.seed, _SALT_MEMBER), hi, lo))
                < self.flaky_fraction
            )
            dropped &= member
        return dropped


@dataclass(frozen=True)
class CompositeFault(FaultModel):
    """Drop when *any* member model drops (independent fault layers)."""

    models: tuple[FaultModel, ...]

    def drops(self, addr: int, port: int, attempt: int) -> bool:
        return any(m.drops(addr, port, attempt) for m in self.models)

    def drops_many(
        self, addrs: Sequence[int], port: int, attempt: int
    ) -> list[bool]:
        flags = [False] * len(addrs)
        for model in self.models:
            for i, dropped in enumerate(model.drops_many(addrs, port, attempt)):
                if dropped:
                    flags[i] = True
        return flags

    def drops_many_arr(
        self, hi: np.ndarray, lo: np.ndarray, port: int, attempt: int
    ) -> np.ndarray:
        flags = np.zeros(len(hi), dtype=bool)
        for model in self.models:
            flags |= model.drops_many_arr(hi, lo, port, attempt)
        return flags


def compose(*models: FaultModel) -> FaultModel:
    """Stack fault models; a probe is lost if any layer loses it."""
    if not models:
        raise ValueError("compose() needs at least one fault model")
    if len(models) == 1:
        return models[0]
    return CompositeFault(models=tuple(models))


class InjectedWorkerCrash(RuntimeError):
    """Raised by an armed :class:`WorkerCrash` — simulates a dying worker."""


@dataclass(frozen=True)
class WorkerCrash:
    """Deterministic crash trigger for the scan pipeline.

    Fires (raises :class:`InjectedWorkerCrash`) exactly when the scan
    reaches batch ``at_batch`` of round ``at_round``.  The spec is
    stateless and picklable, so it crosses into pool workers; a resumed
    run simply does not pass the crash spec again, mirroring an
    operator restarting a fixed deployment.
    """

    at_batch: int
    at_round: int = 0

    def __post_init__(self) -> None:
        if self.at_batch < 0:
            raise ValueError(f"at_batch must be >= 0: {self.at_batch}")
        if self.at_round < 0:
            raise ValueError(f"at_round must be >= 0: {self.at_round}")

    def check(self, round_: int, batch_index: int) -> None:
        if round_ == self.at_round and batch_index == self.at_batch:
            raise InjectedWorkerCrash(
                f"injected crash at round {round_}, batch {batch_index}"
            )
