"""A ground truth wrapped in deterministic fault models.

:class:`FaultyGroundTruth` interposes a :class:`~repro.faults.models.
FaultModel` in front of an existing :class:`~repro.simnet.ground_truth.
GroundTruth`: a probe first survives the fault layer (or not), and only
survivors consult the underlying oracle.  It *is* a ``GroundTruth`` —
it shares the base instance's host tables and aliased regions rather
than copying them — so it drops into the scanner, the dealiaser, and
the experiment harness unchanged, and it pickles into pool workers like
any other truth.
"""

from __future__ import annotations

from typing import Iterable

from ..simnet.ground_truth import GroundTruth
from .models import FaultModel


class FaultyGroundTruth(GroundTruth):
    """``GroundTruth`` overlay that loses probes per a fault model.

    The overlay shares (not copies) the base truth's internals, so
    host mutations through either object stay in sync.  Fault verdicts
    are pure functions of ``(seed, addr, attempt)`` — see
    :mod:`repro.faults.models` — which keeps faulty scans exactly as
    reproducible and order-independent as clean ones.
    """

    def __init__(self, base: GroundTruth, fault: FaultModel):
        super().__init__(base._hosts_by_port, base.aliased)
        self.base = base
        self.fault = fault

    def is_responsive(self, addr: int, port: int = 80, attempt: int = 0) -> bool:
        value = int(addr)
        if self.fault.drops(value, port, attempt):
            return False
        return super().is_responsive(value, port)

    def responsive_many(
        self, addrs: Iterable[int], port: int = 80, attempt: int = 0
    ) -> list[bool]:
        addrs = [int(a) for a in addrs]
        dropped = self.fault.drops_many(addrs, port, attempt)
        survivors = [a for a, lost in zip(addrs, dropped) if not lost]
        verdicts = iter(
            super().responsive_many(survivors, port) if survivors else ()
        )
        return [False if lost else next(verdicts) for lost in dropped]
