"""A ground truth wrapped in deterministic fault models.

:class:`FaultyGroundTruth` interposes a :class:`~repro.faults.models.
FaultModel` in front of an existing :class:`~repro.simnet.ground_truth.
GroundTruth`: a probe first survives the fault layer (or not), and only
survivors consult the underlying oracle.  It *is* a ``GroundTruth`` —
it shares the base instance's host tables and aliased regions rather
than copying them — so it drops into the scanner, the dealiaser, and
the experiment harness unchanged, and it pickles into pool workers like
any other truth.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..simnet.ground_truth import GroundTruth
from .models import FaultModel


class FaultyGroundTruth(GroundTruth):
    """``GroundTruth`` overlay that loses probes per a fault model.

    The overlay shares (not copies) the base truth's internals, so
    host mutations through either object stay in sync.  Fault verdicts
    are pure functions of ``(seed, addr, attempt)`` — see
    :mod:`repro.faults.models` — which keeps faulty scans exactly as
    reproducible and order-independent as clean ones.
    """

    def __init__(self, base: GroundTruth, fault: FaultModel):
        super().__init__(base._hosts_by_port, base.aliased)
        self.base = base
        self.fault = fault

    # Memoised host tables and the mutation token live on the *base*
    # truth only: the overlay shares the base's host dict, so keeping a
    # second set of memos here would go stale whenever the world
    # mutates through the base (e.g. the churn layer advancing an
    # epoch).  Delegating makes a mutation through either object
    # invalidate — and version-stamp — exactly one place.
    @property
    def world_version(self) -> tuple[int, int]:
        return self.base.world_version

    def invalidate(self) -> None:
        self.base.invalidate()

    def _ping_targets(self) -> set[int]:
        return self.base._ping_targets()

    def frozen_hosts(self, port: int = 80):
        return self.base.frozen_hosts(port)

    def is_responsive(self, addr: int, port: int = 80, attempt: int = 0) -> bool:
        value = int(addr)
        if self.fault.drops(value, port, attempt):
            return False
        return super().is_responsive(value, port)

    def responsive_many(
        self, addrs: Iterable[int], port: int = 80, attempt: int = 0
    ) -> list[bool]:
        # One bulk conversion, no per-element int() when the input is
        # already plain ints or a numpy column (tolist is one C pass).
        if isinstance(addrs, np.ndarray):
            addrs = addrs.tolist()
        else:
            addrs = [int(a) for a in addrs]
        dropped = self.fault.drops_many(addrs, port, attempt)
        survivors = [a for a, lost in zip(addrs, dropped) if not lost]
        flags = [False] * len(addrs)
        if survivors:
            verdicts = super().responsive_many(survivors, port)
            cursor = 0
            for i, lost in enumerate(dropped):
                if not lost:
                    flags[i] = verdicts[cursor]
                    cursor += 1
        return flags

    def responsive_many_arr(
        self,
        hi: np.ndarray,
        lo: np.ndarray,
        port: int = 80,
        attempt: int = 0,
    ) -> np.ndarray:
        """Array-native overlay: fault layer first, oracle for survivors.

        Calls the *base class* oracle directly, matching the scalar
        ``super().responsive_many`` — when overlays nest, only the
        outermost fault model applies.
        """
        dropped = self.fault.drops_many_arr(hi, lo, port, attempt)
        flags = np.zeros(len(hi), dtype=bool)
        live = ~dropped
        if live.any():
            flags[live] = GroundTruth.responsive_many_arr(
                self, hi[live], lo[live], port
            )
        return flags
