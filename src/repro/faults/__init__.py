"""Deterministic fault injection for scan campaigns.

Real internet-wide campaigns (the paper's §6 run is ~5.8 B probes over
~16 hours) see bursty packet loss, ICMPv6-style rate limiting, hosts
that flap, and operational crashes.  This package models those faults
over the simulated ground truth — deterministically.  Every fault
verdict is a pure function of ``(seed, addr, attempt)`` via the same
splitmix64 PRF family the scanner uses for probe loss, so a faulty
campaign is exactly as bit-reproducible as a clean one: no RNG streams,
no wall-clock state, no ordering sensitivity.
"""

from .ground import FaultyGroundTruth
from .models import (
    BurstyLoss,
    CompositeFault,
    FaultModel,
    FlakyHosts,
    InjectedWorkerCrash,
    RateLimiter,
    WorkerCrash,
    compose,
)

__all__ = [
    "BurstyLoss",
    "CompositeFault",
    "FaultModel",
    "FaultyGroundTruth",
    "FlakyHosts",
    "InjectedWorkerCrash",
    "RateLimiter",
    "WorkerCrash",
    "compose",
]
