"""Range-list file I/O: compact wildcard-range target lists.

A 6Gen run with a million-probe budget produces a million-line hitlist
— but only a handful of cluster *ranges*.  This module reads and writes
the compact form (one wildcard range per line, the paper's §2 notation,
``#`` comments allowed) and expands range lists back into addresses
under a cap.

Example file::

    # 6Gen clusters, budget 1000000
    2001:db8::?:100?
    2600:9000:1::[0-3]?
    2a01:4f8:0:1::7

"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from ..ipv6.range_ import NybbleRange


def read_rangelist(path: str | os.PathLike) -> list[NybbleRange]:
    """Read all ranges from a range-list file."""
    ranges = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.split("#", 1)[0].strip()
            if line:
                ranges.append(NybbleRange.parse(line))
    return ranges


def write_rangelist(
    path: str | os.PathLike,
    ranges: Iterable[NybbleRange],
    *,
    header: str | None = None,
) -> int:
    """Write ranges (deduplicated, sorted by text) to a range-list file.

    Returns the number of ranges written.
    """
    unique = sorted({r.wildcard_text() for r in ranges})
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for text in unique:
            handle.write(text + "\n")
    return len(unique)


def expand_ranges(
    ranges: Iterable[NybbleRange], *, limit: int | None = None
) -> Iterator[int]:
    """Expand ranges into distinct addresses, optionally capped.

    Ranges are expanded in the given order; overlapping ranges emit
    each address once.  With a ``limit``, expansion stops exactly there
    — pair with :func:`total_size` to check feasibility first.

    Dedup memory is proportional to the *overlapping* portion of the
    list only: a range whose nybble masks are disjoint from every other
    range (the common case — 6Gen clusters rarely overlap) is streamed
    through without recording its addresses, so a million-address
    expansion of disjoint ranges runs in O(1) auxiliary memory instead
    of holding every emitted address in a set.
    """
    if limit is not None and limit <= 0:
        return
    range_list = list(ranges)
    # A range needs dedup tracking only if its masks intersect some
    # other range's masks at every position (NybbleRange.overlaps).
    overlapping = [
        any(
            i != j and range_.overlaps(other)
            for j, other in enumerate(range_list)
        )
        for i, range_ in enumerate(range_list)
    ]
    seen: set[int] = set()
    emitted = 0
    for range_, tracked in zip(range_list, overlapping):
        for addr in range_.iter_ints():
            if tracked:
                if addr in seen:
                    continue
                seen.add(addr)
            yield addr
            emitted += 1
            if limit is not None and emitted >= limit:
                return


def total_size(ranges: Iterable[NybbleRange]) -> int:
    """Upper bound on the number of addresses (overlaps not deducted)."""
    return sum(r.size() for r in ranges)
