"""Datasets: synthetic CDN seed sets (§7) and hitlist file I/O."""

from .cdn import (
    DATASET_SIZE,
    CdnDataset,
    all_cdns,
    build_cdn,
    build_cdn1,
    build_cdn2,
    build_cdn3,
    build_cdn4,
    build_cdn5,
)
from .hitlist import (
    iter_hitlist_file,
    read_hitlist,
    read_hitlist_ints,
    write_hitlist,
)
from .rangelist import expand_ranges, read_rangelist, total_size, write_rangelist

__all__ = [
    "CdnDataset",
    "DATASET_SIZE",
    "all_cdns",
    "build_cdn",
    "build_cdn1",
    "build_cdn2",
    "build_cdn3",
    "build_cdn4",
    "build_cdn5",
    "expand_ranges",
    "iter_hitlist_file",
    "read_hitlist",
    "read_hitlist_ints",
    "read_rangelist",
    "total_size",
    "write_hitlist",
    "write_rangelist",
]
