"""Synthetic CDN seed datasets (paper §7's five Entropy/IP networks).

The paper compares 6Gen and Entropy/IP on five 10 K-address datasets
from content-distribution networks, labelled CDN 1–5, obtained from
the Entropy/IP authors.  We fabricate five datasets with the same
*qualitative* regimes the paper reports:

* **CDN 1** — unstructured: uniform-random addresses in a /32.  Neither
  algorithm predicts anything (paper: both fail; Entropy/IP found zero
  test addresses, and scans returned no hits).
* **CDN 2** — hashed-sparse: one host per pseudo-random subnet, random
  low bits.  Both recover only a few percent (paper: both < 3 %).
* **CDN 3** — zoned with a cross-segment correlation: structured
  subnets whose interface identifiers depend on the subnet id through
  a non-adjacent-nybble relation.  6Gen's region density captures it;
  a segment-chain model leaks probability across the correlation, so
  6Gen wins by a clear factor (paper: 6Gen 1–8× Entropy/IP).
* **CDN 4** — dense sequential blocks: 6Gen recovers > 99 % (the
  paper's standout CDN 4 number); the ground truth is additionally
  *extensively aliased*, which removes CDN 4 from the filtered scan
  comparison (paper Figure 9b).
* **CDN 5** — clean low-byte subnets: both algorithms do well
  (paper: both > 88 %).

Budgets are scaled 10× down from the paper (our curves sweep to 100 K
instead of 1 M) in line with the dataset-size-preserving but
compute-scaled simulation; EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ipv6.prefix import Prefix
from ..simnet.aliasing import AliasedRegionSet
from ..simnet.bgp import BgpTable, Route
from ..simnet.ground_truth import GroundTruth

#: Default dataset size, matching the paper's per-CDN sample.
DATASET_SIZE = 10_000


@dataclass
class CdnDataset:
    """One synthetic CDN: its seed dataset plus scanning ground truth."""

    name: str
    description: str
    prefix: Prefix
    addresses: list[int]
    truth: GroundTruth
    bgp: BgpTable

    @property
    def population_size(self) -> int:
        """Number of real active hosts behind the dataset."""
        return self.truth.host_count(80)


def _finalize(
    name: str,
    description: str,
    prefix: Prefix,
    population: set[int],
    rng: random.Random,
    dataset_size: int,
    aliased: AliasedRegionSet | None = None,
) -> CdnDataset:
    dataset_size = min(dataset_size, len(population))
    addresses = sorted(rng.sample(sorted(population), dataset_size))
    truth = GroundTruth({80: population}, aliased or AliasedRegionSet())
    bgp = BgpTable([Route(prefix, 64000 + int(name[-1]))])
    return CdnDataset(
        name=name,
        description=description,
        prefix=prefix,
        addresses=addresses,
        truth=truth,
        bgp=bgp,
    )


def build_cdn1(dataset_size: int = DATASET_SIZE, rng_seed: int = 1001) -> CdnDataset:
    """Uniform-random addresses: nothing to learn, nothing to find."""
    rng = random.Random(rng_seed)
    prefix = Prefix.parse("2001:c1::/32")
    population: set[int] = set()
    while len(population) < int(dataset_size * 1.2):
        population.add(prefix.random_address(rng).value)
    return _finalize(
        "CDN1",
        "unstructured: uniform random in a /32",
        prefix,
        population,
        rng,
        dataset_size,
    )


def build_cdn2(dataset_size: int = DATASET_SIZE, rng_seed: int = 1002) -> CdnDataset:
    """One host per pseudo-random subnet: sparse beyond recovery."""
    rng = random.Random(rng_seed)
    prefix = Prefix.parse("2001:c2::/32")
    population: set[int] = set()
    # A few hosts per random subnet: only when two land in the same
    # training sample can a TGA span the subnet and recover the rest —
    # the few-percent recovery regime the paper reports for CDN 2.
    while len(population) < int(dataset_size * 1.2):
        subnet = rng.getrandbits(16)  # 2**16 possible subnets
        for _ in range(4):
            iid = rng.getrandbits(8)  # random low byte
            population.add(prefix.network | (subnet << 64) | iid)
    return _finalize(
        "CDN2",
        "hashed-sparse: one host per random subnet",
        prefix,
        population,
        rng,
        dataset_size,
    )


def build_cdn3(dataset_size: int = DATASET_SIZE, rng_seed: int = 1003) -> CdnDataset:
    """Zoned subnets with a cross-segment correlation.

    Thirty-two sequential subnets; each host's interface identifier is
    ``base(subnet) << 8 | random byte``, where ``base(subnet)`` is a
    subnet-dependent nybble.  The subnet id and the IID base nybble sit
    far apart in the address, so a segment-chain model loses the
    correlation while region clustering keeps it.
    """
    rng = random.Random(rng_seed)
    prefix = Prefix.parse("2001:c3::/32")
    population: set[int] = set()
    subnet_weights = [max(1, 32 - s) for s in range(32)]  # denser low subnets
    target = int(dataset_size * 1.3)
    while len(population) < target:
        subnet = rng.choices(range(32), weights=subnet_weights)[0]
        base = (subnet * 7) % 16
        iid = (base << 8) | rng.getrandbits(8)
        population.add(prefix.network | (subnet << 64) | iid)
    return _finalize(
        "CDN3",
        "zoned: subnet-correlated IID bases",
        prefix,
        population,
        rng,
        dataset_size,
    )


def build_cdn4(dataset_size: int = DATASET_SIZE, rng_seed: int = 1004) -> CdnDataset:
    """Dense sequential blocks — and extensively aliased ground truth."""
    rng = random.Random(rng_seed)
    prefix = Prefix.parse("2001:c4::/32")
    population: set[int] = set()
    per_subnet = int(dataset_size * 1.15) // 6
    for subnet in range(6):
        for i in range(1, per_subnet + 1):
            population.add(prefix.network | (subnet << 64) | i)
    aliased = AliasedRegionSet()
    # Every content subnet of the CDN answers on the whole /96 around
    # its hosts — the paper's "extensively aliased" CDN 4.
    for subnet in range(6):
        aliased.add_prefix(Prefix(prefix.network | (subnet << 64), 96))
    return _finalize(
        "CDN4",
        "dense sequential blocks; heavily aliased",
        prefix,
        population,
        rng,
        dataset_size,
        aliased=aliased,
    )


def build_cdn5(dataset_size: int = DATASET_SIZE, rng_seed: int = 1005) -> CdnDataset:
    """Clean low-byte subnets: easy for any structure-aware TGA."""
    rng = random.Random(rng_seed)
    prefix = Prefix.parse("2001:c5::/32")
    population: set[int] = set()
    subnets = 64
    per_subnet = int(dataset_size * 1.2) // subnets
    for subnet in range(subnets):
        for i in range(1, per_subnet + 1):
            population.add(prefix.network | (subnet << 64) | i)
    return _finalize(
        "CDN5",
        "low-byte subnets: easy for both algorithms",
        prefix,
        population,
        rng,
        dataset_size,
    )


_BUILDERS = {
    1: build_cdn1,
    2: build_cdn2,
    3: build_cdn3,
    4: build_cdn4,
    5: build_cdn5,
}


def build_cdn(index: int, dataset_size: int = DATASET_SIZE) -> CdnDataset:
    """Build CDN ``index`` (1–5) with its default RNG seed."""
    try:
        builder = _BUILDERS[index]
    except KeyError:
        raise ValueError(f"CDN index must be 1-5: {index}") from None
    return builder(dataset_size=dataset_size)


def all_cdns(dataset_size: int = DATASET_SIZE) -> list[CdnDataset]:
    """All five CDN datasets in order."""
    return [build_cdn(i, dataset_size) for i in range(1, 6)]
