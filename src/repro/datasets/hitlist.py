"""Hitlist file I/O: plain-text address lists with comments.

The interchange format used by real TGA tooling (and by this repo's
CLI): one IPv6 address per line, ``#`` comments and blank lines
ignored.  Writers emit RFC 5952 canonical form.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from ..ipv6.address import IPv6Addr, iter_hitlist


def read_hitlist(path: str | os.PathLike) -> list[IPv6Addr]:
    """Read all addresses from a hitlist file."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_hitlist(handle))


def read_hitlist_ints(path: str | os.PathLike) -> list[int]:
    """Read addresses as integers (the internal representation)."""
    return [a.value for a in read_hitlist(path)]


def iter_hitlist_file(path: str | os.PathLike) -> Iterator[IPv6Addr]:
    """Stream addresses from a hitlist file without loading it whole."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from iter_hitlist(handle)


def write_hitlist(
    path: str | os.PathLike,
    addrs: Iterable[int | IPv6Addr],
    *,
    header: str | None = None,
) -> int:
    """Write addresses (sorted, deduplicated) to a hitlist file.

    Returns the number of addresses written.
    """
    values = sorted({int(a) for a in addrs})
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for value in values:
            handle.write(IPv6Addr(value).compressed() + "\n")
    return len(values)
