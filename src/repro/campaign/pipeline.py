"""The campaign pipeline: one object owning a full scan campaign.

:class:`Campaign` composes the stages the paper's §6 measurement runs
as one pipeline over the packed column plane: per-prefix 6Gen
generation (:mod:`.generate`), scan-side dedupe + cyclic-permutation
ordering + budgeted probing with retry rounds
(:class:`~repro.scanner.engine.Scanner`), crash-safe checkpointing
(:mod:`repro.scanner.checkpoint`), and §6.2 dealiasing
(:mod:`repro.scanner.dealias`).

Two ways to drive it:

* :meth:`Campaign.run` — the monolithic path.  This is exactly the
  body the old ``run_full_scan`` executed (same calls, same order,
  same telemetry), so results are bit-identical to the pre-refactor
  pipeline at any worker count; ``run_full_scan`` is now a thin
  wrapper over it.
* :meth:`Campaign.begin` / :meth:`step` / :meth:`finish` — the
  stepwise path, built on :class:`~repro.scanner.execution.ScanExecution`.
  Each ``step()`` probes one batch; a scheduler (the multi-tenant
  service in :mod:`repro.service`) interleaves steps of many campaigns
  over one process.  Because every probe verdict is a pure function of
  ``(key, address, attempt)``, interleaving never changes what any one
  campaign observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..scanner.dealias import DealiasReport, dealias
from ..scanner.engine import ScanConfig, Scanner
from ..scanner.probe import ScanResult
from ..telemetry.spans import Telemetry, ensure
from .generate import generate_per_prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.grouping import MultiPrefixRun
    from ..faults.models import WorkerCrash
    from ..ipv6.prefix import Prefix
    from ..scanner.execution import ScanExecution


@dataclass(frozen=True)
class CampaignSpec:
    """What to run: the knobs of one campaign, minus the world it runs in.

    ``budget`` is the per-prefix probe budget (the paper's 1 M,
    simulation-scaled).  ``scan_config`` selects the scan execution
    strategy (batch size, workers, retries) — the result is identical
    for every config.  ``dealias`` toggles the §6.2 dealiasing stage;
    with it off the report passes raw hits through as clean.
    """

    budget: int
    port: int = 80
    loose: bool = True
    dealias: bool = True
    scan_config: ScanConfig = field(default_factory=ScanConfig)
    gen_workers: int | None = None
    checkpoint_every: int = 16


@dataclass
class CampaignResult:
    """A finished (or interrupted) campaign's outputs, stage by stage.

    ``run`` is ``None`` for campaigns that bypassed generation via an
    explicit target list (see ``Campaign(targets=...)``) — the delta
    re-probe path plans its own targets.
    """

    run: "MultiPrefixRun | None"
    scan: ScanResult
    report: DealiasReport
    #: True when the campaign was stopped early (budget exhaustion,
    #: preemption) — ``scan``/``report`` then hold the partial state.
    interrupted: bool = False

    @property
    def raw_hits(self) -> set[int]:
        return self.scan.hits

    @property
    def clean_hits(self) -> set[int]:
        return self.report.clean_hits

    @property
    def aliased_hits(self) -> set[int]:
        return self.report.aliased_hits

    @property
    def targets_generated(self) -> int:
        """Deduplicated target count, recovered from the scan counters
        (every distinct target is either probed or blacklisted)."""
        return self.scan.stats.probes_sent + self.scan.stats.blacklisted

    @property
    def probes_sent(self) -> int:
        return self.scan.stats.probes_sent


class Campaign:
    """One full generate→dedupe→permute→probe→retry→checkpoint campaign.

    ``truth``/``bgp`` are the world (a
    :class:`~repro.simnet.ground_truth.GroundTruth` and a BGP table for
    dealiasing); ``groups`` maps routed prefixes to their seed lists
    (see :func:`repro.simnet.bgp.group_by_routed_prefix`);  ``spec``
    holds the knobs.  ``checkpoint_path`` arms crash-safe progress
    streaming: per-prefix generation events plus scan checkpoints land
    in one JSONL file, and a later campaign with ``resume=True``
    continues from it, finishing bit-identical to an uninterrupted run.

    ``targets`` overrides the generation stage: pass packed ``(hi,
    lo)`` uint64 columns (or a plain address list) and the campaign
    scans exactly those, skipping 6Gen.  The delta-campaign planner
    (:mod:`repro.hitlist`) uses this to re-probe known hits; the
    result's ``run`` output is then ``None``.  ``spec.budget`` is not
    applied to explicit targets — the planner already budgeted them.
    """

    def __init__(
        self,
        truth,
        bgp,
        groups: "Mapping[Prefix, Sequence[int]]",
        spec: CampaignSpec,
        *,
        telemetry: Telemetry | None = None,
        checkpoint_path: str | None = None,
        name: str = "campaign",
        targets=None,
    ):
        self.truth = truth
        self.bgp = bgp
        self.groups = groups
        self.spec = spec
        self.targets = targets
        self.name = name
        self.telemetry = telemetry
        self._tele = ensure(telemetry)
        self.checkpoint_path = checkpoint_path
        self.state = "created"
        self.run_output: "MultiPrefixRun | None" = None
        self.execution: "ScanExecution | None" = None
        self.result: CampaignResult | None = None
        self._scanner: Scanner | None = None
        self._ckpt_sink = None
        self._span = None

    # -- the monolithic path -------------------------------------------

    def run(self, *, resume: bool = False, crash: "WorkerCrash | None" = None):
        """Run the whole campaign to completion and return its result.

        This is the pre-refactor ``run_full_scan`` body verbatim —
        ``Scanner.scan`` keeps its pool paths for round 0 at
        ``workers > 1`` — so hits and stats are bit-identical to the
        old monolithic pipeline.
        """
        spec = self.spec
        ckpt_sink, checkpointer, resume_state = self._open_checkpoint(resume)
        try:
            with self._tele.span(
                "full_scan", budget=spec.budget, port=spec.port
            ):
                if self.targets is not None:
                    run = None
                    scan_targets = self.targets
                else:
                    run = generate_per_prefix(
                        self.groups, spec.budget, loose=spec.loose,
                        telemetry=self.telemetry, progress_sink=ckpt_sink,
                        processes=spec.gen_workers,
                    )
                    scan_targets = run.iter_target_columns()
                scanner = Scanner(
                    self.truth, config=spec.scan_config,
                    telemetry=self.telemetry,
                )
                scan = scanner.scan(
                    scan_targets, port=spec.port,
                    checkpoint=checkpointer, resume=resume_state, crash=crash,
                )
                report = self._dealias(scanner, scan.hits)
        finally:
            if ckpt_sink is not None:
                ckpt_sink.close()
        self.run_output = run
        self.state = "finished"
        self.result = CampaignResult(run=run, scan=scan, report=report)
        return self.result

    # -- the stepwise path (what the service drives) -------------------

    def begin(
        self, *, resume: bool = False, crash: "WorkerCrash | None" = None
    ) -> None:
        """Run generation and arm the scan for batch-by-batch stepping.

        After ``begin()``, :attr:`execution` is live: call :meth:`step`
        until it returns False, then :meth:`finish`.  Generation runs
        here in full — it is deterministic and cheap relative to
        probing, so the schedulable unit is the probe batch.
        """
        if self.state != "created":
            raise RuntimeError(f"cannot begin a campaign in state {self.state!r}")
        spec = self.spec
        self._ckpt_sink, checkpointer, resume_state = self._open_checkpoint(
            resume
        )
        self._span = self._tele.span(
            "full_scan", budget=spec.budget, port=spec.port
        )
        self._span.__enter__()
        try:
            if self.targets is not None:
                scan_targets = self.targets
            else:
                self.run_output = generate_per_prefix(
                    self.groups, spec.budget, loose=spec.loose,
                    telemetry=self.telemetry, progress_sink=self._ckpt_sink,
                    processes=spec.gen_workers,
                )
                scan_targets = self.run_output.iter_target_columns()
            self._scanner = Scanner(
                self.truth, config=spec.scan_config, telemetry=self.telemetry
            )
            self.execution = self._scanner.start_execution(
                scan_targets, spec.port,
                checkpoint=checkpointer, resume=resume_state, crash=crash,
            )
        except BaseException:
            self.abort()
            raise
        self.state = "running"

    def step(self) -> bool:
        """Probe one batch; False once the scan has finished."""
        if self.state != "running":
            raise RuntimeError(f"cannot step a campaign in state {self.state!r}")
        return self.execution.step()

    def finish(self) -> CampaignResult:
        """Dealias the finished scan and seal the campaign."""
        if self.state != "running":
            raise RuntimeError(f"cannot finish a campaign in state {self.state!r}")
        scan = self.execution.result()
        report = self._dealias(self._scanner, scan.hits)
        self._close()
        self.state = "finished"
        self.result = CampaignResult(run=self.run_output, scan=scan, report=report)
        return self.result

    def interrupt(self) -> CampaignResult:
        """Stop early (budget exhausted / cancelled) with a partial result.

        The partial hits pass through undealised (dealiasing a
        truncated scan would misstate §6.2's rates).  When a
        checkpoint is armed, the file keeps its resumable prefix — a
        fresh campaign over the same spec with ``resume=True`` picks
        up exactly where this one stopped.
        """
        if self.state != "running":
            raise RuntimeError(
                f"cannot interrupt a campaign in state {self.state!r}"
            )
        stats = self.execution.stats.copy()
        hits = set(self.execution.hits)
        scan = ScanResult(port=self.spec.port, hits=hits, stats=stats)
        report = DealiasReport(clean_hits=set(hits))
        self._close()
        self.state = "interrupted"
        self.result = CampaignResult(
            run=self.run_output, scan=scan, report=report, interrupted=True
        )
        return self.result

    def abort(self) -> None:
        """Release resources after a failure; the campaign has no result."""
        self._close()
        self.state = "failed"

    # -- shared internals ----------------------------------------------

    def _open_checkpoint(self, resume: bool):
        if self.checkpoint_path is not None:
            import os

            from ..scanner.checkpoint import (
                ScanCheckpointer,
                load_scan_checkpoint,
            )
            from ..telemetry.sinks import JsonlSink

            resume_state = None
            if resume and os.path.exists(self.checkpoint_path):
                resume_state = load_scan_checkpoint(self.checkpoint_path)
            ckpt_sink = JsonlSink(self.checkpoint_path)
            checkpointer = ScanCheckpointer(
                ckpt_sink, every_batches=self.spec.checkpoint_every
            )
            return ckpt_sink, checkpointer, resume_state
        if resume:
            raise ValueError("resume=True requires checkpoint_path")
        return None, None, None

    def _dealias(self, scanner: Scanner, hits: set[int]) -> DealiasReport:
        if self.spec.dealias:
            return dealias(
                hits, scanner, self.bgp, port=self.spec.port,
                workers=self.spec.scan_config.workers,
                telemetry=self.telemetry,
            )
        return DealiasReport(clean_hits=set(hits))

    def _close(self) -> None:
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None
        if self._ckpt_sink is not None:
            self._ckpt_sink.close()
            self._ckpt_sink = None
