"""The campaign pipeline: one object owning a full scan campaign.

:class:`Campaign` composes the stages the paper's §6 measurement runs
as one pipeline over the packed column plane: per-prefix 6Gen
generation (:mod:`.generate`), scan-side dedupe + cyclic-permutation
ordering + budgeted probing with retry rounds
(:class:`~repro.scanner.engine.Scanner`), crash-safe checkpointing
(:mod:`repro.scanner.checkpoint`), and §6.2 dealiasing
(:mod:`repro.scanner.dealias`).

Two ways to drive it:

* :meth:`Campaign.run` — the monolithic path.  This is exactly the
  body the old ``run_full_scan`` executed (same calls, same order,
  same telemetry), so results are bit-identical to the pre-refactor
  pipeline at any worker count; ``run_full_scan`` is now a thin
  wrapper over it.
* :meth:`Campaign.begin` / :meth:`step` / :meth:`finish` — the
  stepwise path, built on :class:`~repro.scanner.execution.ScanExecution`.
  Each ``step()`` probes one batch; a scheduler (the multi-tenant
  service in :mod:`repro.service`) interleaves steps of many campaigns
  over one process.  Because every probe verdict is a pure function of
  ``(key, address, attempt)``, interleaving never changes what any one
  campaign observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..scanner.dealias import DealiasReport, dealias
from ..scanner.engine import ScanConfig, Scanner
from ..scanner.probe import ScanResult, ScanStats
from ..telemetry.spans import Telemetry, ensure
from .generate import generate_per_prefix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.grouping import MultiPrefixRun
    from ..faults.models import WorkerCrash
    from ..ipv6.prefix import Prefix
    from ..scanner.execution import ScanExecution
    from ..scanner.schedule import TenantBudget
    from .allocation import AllocationPolicy, PrefixProgress

#: In-loop §6.2 alias testing (phased path): only prefixes that
#: collected at least this many hits in one phase are worth a
#: random-probe test — a real (non-aliased) /64 or /96 almost never
#: concentrates random-pick-answering hits, an aliased one always does.
ALIAS_TEST_MIN_HITS = 3
#: Hard per-phase, per-length cap on alias tests (most-hit prefixes
#: first), bounding the charged detection cost at ~9 probes per test.
ALIAS_TEST_MAX_TESTS = 64
#: Coarse-to-fine test granularities: a whole aliased /64 spreads its
#: hits one-per-/96, so the /64 pass must run first; the /96 pass then
#: catches finer regions among the survivors.
ALIAS_TEST_LENGTHS = (64, 96)


@dataclass(frozen=True)
class CampaignSpec:
    """What to run: the knobs of one campaign, minus the world it runs in.

    ``budget`` is the per-prefix probe budget (the paper's 1 M,
    simulation-scaled).  ``scan_config`` selects the scan execution
    strategy (batch size, workers, retries) — the result is identical
    for every config.  ``dealias`` toggles the §6.2 dealiasing stage;
    with it off the report passes raw hits through as clean.
    """

    budget: int
    port: int = 80
    loose: bool = True
    dealias: bool = True
    scan_config: ScanConfig = field(default_factory=ScanConfig)
    gen_workers: int | None = None
    checkpoint_every: int = 16


@dataclass
class CampaignResult:
    """A finished (or interrupted) campaign's outputs, stage by stage.

    ``run`` is ``None`` for campaigns that bypassed generation via an
    explicit target list (see ``Campaign(targets=...)``) — the delta
    re-probe path plans its own targets.
    """

    run: "MultiPrefixRun | None"
    scan: ScanResult
    report: DealiasReport
    #: True when the campaign was stopped early (budget exhaustion,
    #: preemption) — ``scan``/``report`` then hold the partial state.
    interrupted: bool = False

    @property
    def raw_hits(self) -> set[int]:
        return self.scan.hits

    @property
    def clean_hits(self) -> set[int]:
        return self.report.clean_hits

    @property
    def aliased_hits(self) -> set[int]:
        return self.report.aliased_hits

    @property
    def targets_generated(self) -> int:
        """Deduplicated target count, recovered from the scan counters
        (every distinct target is either probed or blacklisted)."""
        return self.scan.stats.probes_sent + self.scan.stats.blacklisted

    @property
    def probes_sent(self) -> int:
        return self.scan.stats.probes_sent


class Campaign:
    """One full generate→dedupe→permute→probe→retry→checkpoint campaign.

    ``truth``/``bgp`` are the world (a
    :class:`~repro.simnet.ground_truth.GroundTruth` and a BGP table for
    dealiasing); ``groups`` maps routed prefixes to their seed lists
    (see :func:`repro.simnet.bgp.group_by_routed_prefix`);  ``spec``
    holds the knobs.  ``checkpoint_path`` arms crash-safe progress
    streaming: per-prefix generation events plus scan checkpoints land
    in one JSONL file, and a later campaign with ``resume=True``
    continues from it, finishing bit-identical to an uninterrupted run.

    ``targets`` overrides the generation stage: pass packed ``(hi,
    lo)`` uint64 columns (or a plain address list) and the campaign
    scans exactly those, skipping 6Gen.  The delta-campaign planner
    (:mod:`repro.hitlist`) uses this to re-probe known hits; the
    result's ``run`` output is then ``None``.  ``spec.budget`` is not
    applied to explicit targets — the planner already budgeted them.

    ``allocation`` plugs in an :class:`~repro.campaign.allocation.
    AllocationPolicy`: the campaign then runs *phased* — the total
    budget (``spec.budget`` × prefix count) is re-split across
    prefixes at every phase boundary from live per-prefix feedback,
    each phase generating and scanning only its slice's fresh targets.
    With ``allocation=None`` (the default) nothing changes: the
    single-phase paths below are byte-for-byte the pre-hook behaviour.
    ``budget_ledger`` optionally bounds phase planning by a shared
    :class:`~repro.scanner.schedule.TenantBudget` (the service passes
    its tenant's ledger, so re-splits never plan past the tenant cap).
    """

    def __init__(
        self,
        truth,
        bgp,
        groups: "Mapping[Prefix, Sequence[int]]",
        spec: CampaignSpec,
        *,
        telemetry: Telemetry | None = None,
        checkpoint_path: str | None = None,
        name: str = "campaign",
        targets=None,
        allocation: "AllocationPolicy | None" = None,
        budget_ledger: "TenantBudget | None" = None,
    ):
        if allocation is not None and targets is not None:
            raise ValueError(
                "allocation re-plans generation per phase; it cannot be "
                "combined with an explicit target list"
            )
        self.truth = truth
        self.bgp = bgp
        self.groups = groups
        self.spec = spec
        self.targets = targets
        self.name = name
        self.telemetry = telemetry
        self._tele = ensure(telemetry)
        self.checkpoint_path = checkpoint_path
        self.allocation = allocation
        self.budget_ledger = budget_ledger
        self.state = "created"
        self.run_output: "MultiPrefixRun | None" = None
        self.execution: "ScanExecution | None" = None
        self.result: CampaignResult | None = None
        self._scanner: Scanner | None = None
        self._ckpt_sink = None
        self._span = None
        # Phased-path state (untouched when allocation is None).
        self.progress: "dict[Prefix, PrefixProgress]" = {}
        self._phase = -1
        self._total_budget = 0
        self._completed_stats: ScanStats | None = None
        self._all_hits: set[int] = set()
        self._probed_keys = None
        self._gen_quota: dict = {}
        self._phase_keys: dict = {}
        self._phase_alloc: dict = {}
        self._phase_remaining = 0
        self._checkpointer = None
        self._drained = False
        self.alias_probes = 0
        self.aliased_hits: set[int] = set()
        self._alias_verdicts: dict = {}

    @property
    def probes_sent(self) -> int:
        """Probes charged so far, across all phases.

        The quantity schedulers charge tenant budgets with: completed
        phases' folded stats (scan probes plus in-loop alias-test
        probes) and the live execution's counter.  For single-phase
        campaigns this is exactly the execution's counter.
        """
        sent = (
            self._completed_stats.probes_sent
            if self._completed_stats is not None
            else 0
        )
        if self.execution is not None:
            sent += self.execution.stats.probes_sent
        return sent

    # -- the monolithic path -------------------------------------------

    def run(self, *, resume: bool = False, crash: "WorkerCrash | None" = None):
        """Run the whole campaign to completion and return its result.

        This is the pre-refactor ``run_full_scan`` body verbatim —
        ``Scanner.scan`` keeps its pool paths for round 0 at
        ``workers > 1`` — so hits and stats are bit-identical to the
        old monolithic pipeline.  Phased campaigns (``allocation``
        set) run the stepwise path to completion instead.
        """
        if self.allocation is not None:
            self.begin(resume=resume, crash=crash)
            while self.step():
                pass
            return self.finish()
        spec = self.spec
        ckpt_sink, checkpointer, resume_state = self._open_checkpoint(resume)
        try:
            with self._tele.span(
                "full_scan", budget=spec.budget, port=spec.port
            ):
                if self.targets is not None:
                    run = None
                    scan_targets = self.targets
                else:
                    run = generate_per_prefix(
                        self.groups, spec.budget, loose=spec.loose,
                        telemetry=self.telemetry, progress_sink=ckpt_sink,
                        processes=spec.gen_workers,
                    )
                    scan_targets = run.iter_target_columns()
                scanner = Scanner(
                    self.truth, config=spec.scan_config,
                    telemetry=self.telemetry,
                )
                scan = scanner.scan(
                    scan_targets, port=spec.port,
                    checkpoint=checkpointer, resume=resume_state, crash=crash,
                )
                report = self._dealias(scanner, scan.hits)
        finally:
            if ckpt_sink is not None:
                ckpt_sink.close()
        self.run_output = run
        self.state = "finished"
        self.result = CampaignResult(run=run, scan=scan, report=report)
        return self.result

    # -- the stepwise path (what the service drives) -------------------

    def begin(
        self, *, resume: bool = False, crash: "WorkerCrash | None" = None
    ) -> None:
        """Run generation and arm the scan for batch-by-batch stepping.

        After ``begin()``, :attr:`execution` is live: call :meth:`step`
        until it returns False, then :meth:`finish`.  Generation runs
        here in full — it is deterministic and cheap relative to
        probing, so the schedulable unit is the probe batch.
        """
        if self.state != "created":
            raise RuntimeError(f"cannot begin a campaign in state {self.state!r}")
        if self.allocation is not None:
            if crash is not None:
                raise ValueError(
                    "crash injection targets the single-scan paths; phased "
                    "campaigns exercise faults through the scanner config"
                )
            self._begin_phased(resume)
            return
        spec = self.spec
        self._ckpt_sink, checkpointer, resume_state = self._open_checkpoint(
            resume
        )
        self._span = self._tele.span(
            "full_scan", budget=spec.budget, port=spec.port
        )
        self._span.__enter__()
        try:
            if self.targets is not None:
                scan_targets = self.targets
            else:
                self.run_output = generate_per_prefix(
                    self.groups, spec.budget, loose=spec.loose,
                    telemetry=self.telemetry, progress_sink=self._ckpt_sink,
                    processes=spec.gen_workers,
                )
                scan_targets = self.run_output.iter_target_columns()
            self._scanner = Scanner(
                self.truth, config=spec.scan_config, telemetry=self.telemetry
            )
            self.execution = self._scanner.start_execution(
                scan_targets, spec.port,
                checkpoint=checkpointer, resume=resume_state, crash=crash,
            )
        except BaseException:
            self.abort()
            raise
        self.state = "running"

    def step(self) -> bool:
        """Probe one batch; False once the scan (all phases) has finished."""
        if self.state != "running":
            raise RuntimeError(f"cannot step a campaign in state {self.state!r}")
        if self.allocation is None:
            return self.execution.step()
        if self._drained:
            return False
        if self.execution is not None and self.execution.step():
            return True
        self._complete_phase()
        if self._advance_phase():
            return True
        self._drained = True
        return False

    def finish(self) -> CampaignResult:
        """Dealias the finished scan and seal the campaign."""
        if self.state != "running":
            raise RuntimeError(f"cannot finish a campaign in state {self.state!r}")
        if self.allocation is not None:
            scan = ScanResult(
                port=self.spec.port,
                hits=set(self._all_hits),
                stats=self._completed_stats.copy(),
            )
        else:
            scan = self.execution.result()
        report = self._dealias(self._scanner, scan.hits)
        self._close()
        self.state = "finished"
        self.result = CampaignResult(run=self.run_output, scan=scan, report=report)
        return self.result

    def interrupt(self) -> CampaignResult:
        """Stop early (budget exhausted / cancelled) with a partial result.

        The partial hits pass through undealised (dealiasing a
        truncated scan would misstate §6.2's rates).  When a
        checkpoint is armed, the file keeps its resumable prefix — a
        fresh campaign over the same spec with ``resume=True`` picks
        up exactly where this one stopped.
        """
        if self.state != "running":
            raise RuntimeError(
                f"cannot interrupt a campaign in state {self.state!r}"
            )
        if self.allocation is not None:
            stats = self._completed_stats.copy()
            hits = set(self._all_hits)
            if self.execution is not None:
                live = self.execution.stats.copy()
                stats.merge(live)
                hits |= set(self.execution.hits)
        else:
            stats = self.execution.stats.copy()
            hits = set(self.execution.hits)
        scan = ScanResult(port=self.spec.port, hits=hits, stats=stats)
        report = DealiasReport(clean_hits=set(hits))
        self._close()
        self.state = "interrupted"
        self.result = CampaignResult(
            run=self.run_output, scan=scan, report=report, interrupted=True
        )
        return self.result

    def abort(self) -> None:
        """Release resources after a failure; the campaign has no result."""
        self._close()
        self.state = "failed"

    # -- the phased path (AllocationPolicy-driven) ----------------------

    def _begin_phased(self, resume: bool) -> None:
        """Arm the phase loop: features, budgets, phase-0 plan (or replay)."""
        import numpy as np

        from ..predictive.features import extract_features
        from .allocation import PrefixProgress

        spec = self.spec
        self._ckpt_sink, self._checkpointer, _ = self._open_checkpoint(False)
        self._span = self._tele.span(
            "full_scan", budget=spec.budget, port=spec.port
        )
        self._span.__enter__()
        try:
            self.progress = {}
            for prefix in sorted(self.groups):
                seeds = [int(s) for s in self.groups[prefix]]
                if not seeds:
                    continue
                self.progress[prefix] = PrefixProgress(
                    prefix=prefix,
                    seeds=len(seeds),
                    features=extract_features(seeds),
                )
            self._total_budget = spec.budget * len(self.progress)
            self._completed_stats = ScanStats()
            self._all_hits = set()
            self._probed_keys = np.empty(0, dtype="S16")
            self._gen_quota = {}
            self.alias_probes = 0
            self.aliased_hits = set()
            self._alias_verdicts = {}
            self._scanner = Scanner(
                self.truth, config=spec.scan_config, telemetry=self.telemetry
            )
            if resume:
                self._resume_phased()
            else:
                self._phase = 0
                plan = dict(
                    self.allocation.plan(0, self._total_budget, self.progress)
                )
                if not self._start_phase(plan, self._total_budget):
                    if not self._advance_phase():
                        self._drained = True
        except BaseException:
            self.abort()
            raise
        self.state = "running"

    def _remaining_budget(self) -> int:
        """Campaign budget still unspent, bounded by the tenant ledger."""
        remaining = self._total_budget - self._completed_stats.probes_sent
        if self.budget_ledger is not None:
            remaining = min(remaining, self.budget_ledger.remaining())
        return max(remaining, 0)

    def _advance_phase(self) -> bool:
        """Plan phases until one starts scanning; False when drained."""
        while self._phase + 1 < self.allocation.phases:
            self._phase += 1
            remaining = self._remaining_budget()
            if remaining <= 0:
                return False
            plan = dict(
                self.allocation.plan(self._phase, remaining, self.progress)
            )
            if self._start_phase(plan, remaining):
                return True
        return False

    def _materialise_phase(self, allocations: dict) -> dict:
        """Generate one phase's fresh targets: prefix -> (hi, lo) columns.

        Each prefix's 6Gen runs at its *cumulative* quota (6Gen target
        sets are budget-dependent, not nested, so the phase regenerates
        and filters rather than assuming extension), already-probed
        addresses and addresses inside /96s the in-loop §6.2 tests
        flagged as aliased are dropped via fused-key ledgers, and the
        survivors are capped at this phase's allocation in
        densest-cluster-first order.
        """
        import numpy as np

        from ..ipv6.addrplane import dedupe_columns, fuse

        flagged64 = sorted(
            prefix.network >> 64
            for prefix, bad in self._alias_verdicts.items()
            if bad and prefix.length == 64
        )
        flagged64 = (
            np.array(flagged64, dtype=np.uint64) if flagged64 else None
        )
        flagged96 = sorted(
            prefix.network
            for prefix, bad in self._alias_verdicts.items()
            if bad and prefix.length == 96
        )
        flagged96 = (
            np.sort(
                fuse(
                    np.array([n >> 64 for n in flagged96], dtype=np.uint64),
                    np.array(
                        [(n >> 32) & 0xFFFFFFFF for n in flagged96],
                        dtype=np.uint64,
                    ),
                )
            )
            if flagged96
            else None
        )

        spec = self.spec
        for prefix in sorted(allocations):
            self._gen_quota[prefix] = (
                self._gen_quota.get(prefix, 0) + allocations[prefix]
            )
        active = {
            prefix: self.groups[prefix]
            for prefix in sorted(allocations)
            if allocations[prefix] > 0 and prefix in self.groups
        }
        if not active:
            return {}
        quota = dict(self._gen_quota)
        self.run_output = generate_per_prefix(
            active,
            0,
            loose=spec.loose,
            budget_policy=lambda prefix, seeds, base: quota[prefix],
            telemetry=self.telemetry,
            progress_sink=self._ckpt_sink,
            processes=spec.gen_workers,
        )
        phase_cols: dict = {}
        for prefix in sorted(self.run_output.runs):
            hi, lo = dedupe_columns(*self.run_output.runs[prefix].target_columns())
            if not len(hi):
                continue
            keys = fuse(hi, lo)
            if len(self._probed_keys):
                pos = np.searchsorted(self._probed_keys, keys)
                pos[pos == len(self._probed_keys)] = 0
                fresh = self._probed_keys[pos] != keys
            else:
                fresh = np.ones(len(keys), dtype=bool)
            if flagged64 is not None:
                pos = np.searchsorted(flagged64, hi)
                pos[pos == len(flagged64)] = 0
                fresh &= flagged64[pos] != hi
            if flagged96 is not None:
                key96 = fuse(hi, lo >> np.uint64(32))
                pos = np.searchsorted(flagged96, key96)
                pos[pos == len(flagged96)] = 0
                fresh &= flagged96[pos] != key96
            take = np.flatnonzero(fresh)[: allocations[prefix]]
            if len(take):
                phase_cols[prefix] = (hi[take], lo[take])
        return phase_cols

    def _start_phase(
        self, allocations: dict, remaining: int, resume_scan=None
    ) -> bool:
        """Materialise and start scanning one phase.

        Returns False — after recording an unscanned phase event — when
        generation had nothing fresh to offer (the phase loop then
        moves on rather than burning a scan on zero targets).
        """
        import numpy as np

        from ..ipv6.addrplane import concat_columns, fuse

        phase_cols = self._materialise_phase(allocations)
        self._phase_alloc = dict(allocations)
        self._phase_keys = {
            prefix: np.sort(fuse(*cols))
            for prefix, cols in phase_cols.items()
        }
        self._phase_remaining = remaining
        if not phase_cols:
            self._record_phase_event(
                scanned=False, stats=ScanStats(), hits=set(), observations={}
            )
            return False
        targets = concat_columns(
            [phase_cols[prefix] for prefix in sorted(phase_cols)]
        )
        self.execution = self._scanner.start_execution(
            targets,
            self.spec.port,
            checkpoint=self._checkpointer,
            resume=resume_scan,
        )
        self._tele.count("campaign.phases")
        return True

    def _complete_phase(self) -> None:
        """Fold the finished phase's scan into campaign state + progress.

        Before the outcome reaches the allocation policy it is
        alias-discounted: the /96s concentrating this phase's hits get
        the §6.2 random-probe test (charged against the budget), and
        hits inside flagged /96s are excluded from the per-prefix
        observations — a raw hit rate inflated by one magic /96 must
        not attract the next phase's budget.  Raw hits still flow into
        the campaign result; final dealiasing stays where it was.
        """
        import numpy as np

        from ..ipv6.addrplane import fuse_ints
        from ..scanner.dealias import split_hits

        if self.execution is None:
            return
        scan = self.execution.result()
        self.execution = None
        verdicts, alias_cost = self._test_phase_aliases(scan.hits)
        self._alias_verdicts.update(verdicts)
        self.alias_probes += alias_cost
        phase_stats = scan.stats.copy()
        phase_stats.probes_sent += alias_cost
        flagged = {p for p, bad in self._alias_verdicts.items() if bad}
        if flagged:
            aliased_hits, clean = split_hits(scan.hits, flagged)
        else:
            aliased_hits, clean = set(), set(scan.hits)
        self.aliased_hits |= aliased_hits
        self._completed_stats.merge(phase_stats)
        self._all_hits |= scan.hits
        hit_keys = np.sort(fuse_ints(sorted(clean)))
        observations: dict[str, list[int]] = {}
        for prefix in sorted(self._phase_keys):
            keys = self._phase_keys[prefix]
            hits = 0
            if len(keys) and len(hit_keys):
                pos = np.searchsorted(keys, hit_keys)
                pos[pos == len(keys)] = 0
                hits = int((keys[pos] == hit_keys).sum())
            state = self.progress[prefix]
            state.probes += len(keys)
            state.hits += hits
            state.allocated += self._phase_alloc.get(prefix, 0)
            observations[str(prefix)] = [len(keys), hits]
        self._fold_probed_keys()
        self._record_phase_event(
            scanned=True,
            stats=phase_stats,
            hits=scan.hits,
            observations=observations,
            alias_tests=verdicts,
            alias_probes=alias_cost,
        )

    def _test_phase_aliases(self, hits: set) -> "tuple[dict, int]":
        """§6.2 random-probe tests on the prefixes concentrating ``hits``.

        Runs coarse-to-fine over ``ALIAS_TEST_LENGTHS``: untested
        prefixes holding >= ``ALIAS_TEST_MIN_HITS`` hits are probed
        (most-hit first, capped at ``ALIAS_TEST_MAX_TESTS`` per
        length), hits inside flagged prefixes are dropped before the
        next, finer pass, and verdicts are cached for the campaign's
        lifetime.  Returns the new verdicts and the probe cost, which
        the caller charges.
        """
        from ..scanner.dealias import (
            detect_aliased_prefixes,
            group_hits_by_prefix,
            split_hits,
        )

        verdicts: dict = {}
        cost = 0
        remaining = set(hits)
        for length in ALIAS_TEST_LENGTHS:
            flagged = {
                prefix
                for prefix, bad in {**self._alias_verdicts, **verdicts}.items()
                if bad
            }
            if flagged and remaining:
                _, remaining = split_hits(remaining, flagged)
            if not remaining:
                break
            groups = group_hits_by_prefix(remaining, length)
            candidates = sorted(
                (
                    prefix
                    for prefix, addrs in groups.items()
                    if len(addrs) >= ALIAS_TEST_MIN_HITS
                    and prefix not in self._alias_verdicts
                ),
                key=lambda p: (-len(groups[p]), str(p)),
            )[:ALIAS_TEST_MAX_TESTS]
            if not candidates:
                continue
            subset = [
                addr for prefix in candidates for addr in groups[prefix]
            ]
            before = self._scanner.total_probes
            aliased = detect_aliased_prefixes(
                subset,
                self._scanner,
                length=length,
                port=self.spec.port,
                rng_seed=0,
                telemetry=self.telemetry,
            )
            cost += self._scanner.total_probes - before
            verdicts.update(
                {prefix: prefix in aliased for prefix in candidates}
            )
        return verdicts, cost

    def _fold_probed_keys(self) -> None:
        import numpy as np

        if self._phase_keys:
            self._probed_keys = np.union1d(
                self._probed_keys,
                np.concatenate(list(self._phase_keys.values())),
            )

    def _record_phase_event(
        self,
        *,
        scanned: bool,
        stats: ScanStats,
        hits: set,
        observations: dict,
        alias_tests: dict | None = None,
        alias_probes: int = 0,
    ) -> None:
        if self._ckpt_sink is not None:
            self._ckpt_sink.emit(
                {
                    "event": "campaign_phase",
                    "phase": self._phase,
                    "remaining": self._phase_remaining,
                    "scanned": scanned,
                    "allocations": {
                        str(prefix): int(alloc)
                        for prefix, alloc in sorted(
                            self._phase_alloc.items(), key=lambda kv: str(kv[0])
                        )
                    },
                    "observations": observations,
                    "stats": stats.as_dict(),
                    "hits_new": sorted(hits),
                    "alias_tests": {
                        str(prefix): bool(bad)
                        for prefix, bad in sorted(
                            (alias_tests or {}).items(),
                            key=lambda kv: str(kv[0]),
                        )
                    },
                    "alias_probes": int(alias_probes),
                }
            )

    def _resume_phased(self) -> None:
        """Rebuild phase state from the checkpoint file and rejoin the loop.

        Completed phases are *replayed*, not re-scanned: each recorded
        plan is re-derived through the allocation policy (rebuilding
        the policy's model state observation-for-observation) and
        verified against the recorded split, the phase's targets are
        regenerated to rebuild the probed-address ledger, and the
        recorded outcome is folded in.  An in-flight phase resumes its
        scan through the ordinary scan-checkpoint machinery; completed
        scans' key pairs are burned so later phases draw the keys an
        uninterrupted run would.
        """
        import os

        from ..ipv6.prefix import Prefix
        from ..scanner.checkpoint import load_scan_checkpoint
        from ..scanner.dealias import split_hits
        from ..telemetry.sinks import read_jsonl

        if self.checkpoint_path is None:
            raise ValueError("resume=True requires checkpoint_path")
        events = (
            read_jsonl(self.checkpoint_path)
            if os.path.exists(self.checkpoint_path)
            else []
        )
        phase_events = [
            e for e in events if e.get("event") == "campaign_phase"
        ]
        scan_sections = sum(
            1 for e in events if e.get("event") == "scan_begin"
        )
        by_str = {str(prefix): prefix for prefix in self.progress}
        self._phase = -1
        scanned_phases = 0
        for event in phase_events:
            self._phase = int(event["phase"])
            self._phase_remaining = int(event["remaining"])
            plan = dict(
                self.allocation.plan(
                    self._phase, self._phase_remaining, self.progress
                )
            )
            recorded = {
                by_str[key]: int(value)
                for key, value in event["allocations"].items()
            }
            if {str(k): v for k, v in plan.items() if v} != {
                str(k): v for k, v in recorded.items() if v
            }:
                raise ValueError(
                    f"checkpoint does not match this campaign: phase "
                    f"{self._phase} re-plans differently (policy or world "
                    "changed since the checkpoint was written)"
                )
            phase_cols = self._materialise_phase(recorded)
            import numpy as np

            from ..ipv6.addrplane import fuse

            self._phase_alloc = recorded
            self._phase_keys = {
                prefix: np.sort(fuse(*cols))
                for prefix, cols in phase_cols.items()
            }
            stats = ScanStats.from_dict(event["stats"])
            hits = {int(h) for h in event["hits_new"]}
            self._completed_stats.merge(stats)
            self._all_hits |= hits
            self.alias_probes += int(event.get("alias_probes", 0))
            for key, bad in event.get("alias_tests", {}).items():
                self._alias_verdicts[Prefix.parse(key)] = bool(bad)
            flagged = {p for p, bad in self._alias_verdicts.items() if bad}
            if flagged and hits:
                aliased_hits, _ = split_hits(hits, flagged)
                self.aliased_hits |= aliased_hits
            for key, (probes, hits_count) in event["observations"].items():
                state = self.progress[by_str[key]]
                state.probes += int(probes)
                state.hits += int(hits_count)
                state.allocated += recorded.get(by_str[key], 0)
            self._fold_probed_keys()
            if event.get("scanned", True):
                scanned_phases += 1
        self._scanner.skip_scan_keys(scanned_phases)
        if scan_sections > scanned_phases:
            # The last scan section belongs to a phase whose event was
            # never written: re-plan it and resume its scan (a section
            # that already recorded scan_complete folds immediately).
            self._phase += 1
            remaining = self._remaining_budget()
            plan = dict(
                self.allocation.plan(self._phase, remaining, self.progress)
            )
            if not self._start_phase(
                plan, remaining,
                resume_scan=load_scan_checkpoint(self.checkpoint_path),
            ):
                raise ValueError(
                    "checkpoint does not match this campaign: the in-flight "
                    "phase regenerates no targets"
                )
        elif not self._advance_phase():
            self._drained = True

    # -- shared internals ----------------------------------------------

    def _open_checkpoint(self, resume: bool):
        if self.checkpoint_path is not None:
            import os

            from ..scanner.checkpoint import (
                ScanCheckpointer,
                load_scan_checkpoint,
            )
            from ..telemetry.sinks import JsonlSink

            resume_state = None
            if resume and os.path.exists(self.checkpoint_path):
                resume_state = load_scan_checkpoint(self.checkpoint_path)
            ckpt_sink = JsonlSink(self.checkpoint_path)
            checkpointer = ScanCheckpointer(
                ckpt_sink, every_batches=self.spec.checkpoint_every
            )
            return ckpt_sink, checkpointer, resume_state
        if resume:
            raise ValueError("resume=True requires checkpoint_path")
        return None, None, None

    def _dealias(self, scanner: Scanner, hits: set[int]) -> DealiasReport:
        if self.spec.dealias:
            return dealias(
                hits, scanner, self.bgp, port=self.spec.port,
                workers=self.spec.scan_config.workers,
                telemetry=self.telemetry,
            )
        return DealiasReport(clean_hits=set(hits))

    def _close(self) -> None:
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None
        if self._ckpt_sink is not None:
            self._ckpt_sink.close()
            self._ckpt_sink = None
