"""The campaign's generation stage: per-prefix 6Gen over a process pool.

This is the implementation behind
:func:`repro.analysis.grouping.run_per_prefix` (which stays as the
public thin wrapper, with the data types): run 6Gen on every routed
prefix's seed group, serially or across a process pool, with failure
isolation and per-prefix progress events.  The campaign pipeline calls
it directly as its first stage; targets leave as packed ``(hi, lo)``
column chunks per prefix, never as a materialised union.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.sixgen import SixGenResult, run_6gen
from ..ipv6.prefix import Prefix
from ..telemetry.spans import Telemetry, ensure
from ..analysis.grouping import (
    BudgetPolicy,
    MultiPrefixRun,
    PrefixRun,
    static_budget,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


def _run_one(
    args: tuple[Prefix, list[int], int, bool, str, int | None],
) -> tuple[Prefix, list[int], int, SixGenResult]:
    """Worker for process-pool execution (must be module-level to pickle)."""
    prefix, seeds, prefix_budget, loose, ledger, rng_seed = args
    result = run_6gen(
        seeds, prefix_budget, loose=loose, ledger=ledger, rng_seed=rng_seed
    )
    return prefix, seeds, prefix_budget, result


#: Below this many column bytes a worker ships arrays in the result
#: pickle directly; above it, through a shared-memory segment (two raw
#: uint64 buffers copy through shm far cheaper than pickling them into
#: the executor's result pipe).
_COLUMN_SHM_MIN_BYTES = 1 << 16


def _run_one_columns(
    args: tuple[Prefix, list[int], int, bool, str, int | None],
) -> tuple[Prefix, list[int], int, SixGenResult, tuple]:
    """Pool worker that also materialises packed target columns.

    The expensive part of a prefix run after clustering — expanding the
    winning ranges into concrete addresses — happens *here*, in the
    worker, so it parallelises with the other prefixes instead of
    serialising in the parent.  The result is stripped of its boxed-int
    target set before pickling (the columns are the targets), and the
    columns travel back through the PR 6 shared-memory transport in the
    reverse direction (:func:`~repro.scanner.shm.publish_arrays`) when
    large, or inline in the result pickle when small.
    """
    from ..scanner.shm import publish_arrays

    prefix, seeds, prefix_budget, loose, ledger, rng_seed = args
    result = run_6gen(
        seeds, prefix_budget, loose=loose, ledger=ledger, rng_seed=rng_seed
    )
    hi, lo = result.target_columns_by_density()
    result._targets = None
    result._columns = None
    if hi.nbytes + lo.nbytes >= _COLUMN_SHM_MIN_BYTES:
        try:
            spec = publish_arrays({"hi": hi, "lo": lo})
        except OSError:  # pragma: no cover - /dev/shm unavailable
            pass
        else:
            return prefix, seeds, prefix_budget, result, ("shm", spec)
    return prefix, seeds, prefix_budget, result, ("raw", hi, lo)


def _adopt_columns(result: SixGenResult, payload: tuple) -> None:
    """Parent-side: reattach a worker's shipped columns to its result."""
    if payload[0] == "shm":
        from ..scanner.shm import consume_arrays

        arrays = consume_arrays(payload[1])
        result._columns = (arrays["hi"], arrays["lo"])
    else:
        result._columns = (payload[1], payload[2])


def generate_per_prefix(
    groups: Mapping[Prefix, Sequence[int]],
    budget: int,
    *,
    loose: bool = True,
    ledger: str = "exact",
    budget_policy: BudgetPolicy = static_budget,
    min_seeds: int = 1,
    rng_seed: int | None = 0,
    processes: int | None = None,
    telemetry: Telemetry | None = None,
    isolate_failures: bool = True,
    progress_sink=None,
) -> MultiPrefixRun:
    """Run 6Gen on every routed prefix's seed group.

    ``budget_policy`` decides each prefix's budget from the base value;
    prefixes with fewer than ``min_seeds`` seeds are skipped (the paper
    omits <10-seed prefixes from some analyses but still scans them, so
    the default keeps everything).

    ``processes`` > 1 runs prefixes in a process pool — the
    parallelisation axis §5.6 mentions ("we could parallelize execution
    across different prefixes").  Results are identical to the serial
    path because every prefix run is independently seeded.

    ``telemetry`` records a ``generate`` span, per-prefix ``progress``
    events, and aggregate counters.  In the process-pool path the
    per-run counters still aggregate (in the parent, from each
    returned result); only the in-process per-prefix ``sixgen`` spans
    are unavailable, since telemetry objects stay in the parent.

    With ``isolate_failures`` (the default) a prefix whose 6Gen run
    raises does not kill the campaign: the run is retried once
    (deterministic inputs, so this only papers over environmental
    faults like a killed pool worker), then recorded in
    ``MultiPrefixRun.failures`` / telemetry and skipped with a
    :class:`RuntimeWarning`.  ``progress_sink`` (an optional
    :class:`~repro.telemetry.sinks.Sink`, e.g. a campaign checkpoint
    file) receives one ``prefix_generated`` event per completed prefix
    and one ``prefix_failed`` event per skipped prefix.
    """
    tele = ensure(telemetry)
    work = []
    for prefix in sorted(groups):
        seeds = [int(s) for s in groups[prefix]]
        if len(seeds) < min_seeds:
            continue
        prefix_budget = budget_policy(prefix, seeds, budget)
        work.append((prefix, seeds, prefix_budget, loose, ledger, rng_seed))

    out = MultiPrefixRun()
    started = time.perf_counter()
    targets_total = 0
    targets_known = True
    with tele.span("generate", prefixes=len(work), budget=budget):
        if processes and processes > 1 and len(work) > 1:
            from concurrent.futures import ProcessPoolExecutor

            # Seed-count distributions are heavy-tailed (Figure 4): a few
            # prefixes dominate the runtime.  Submit largest-first (one
            # future per prefix) so a giant prefix never queues behind a
            # chunk of small ones at the tail of the pool — with the
            # default (sorted-by-prefix, auto-chunked) layout the whole
            # run waits on whichever worker happened to draw the biggest
            # group last.  Per-prefix futures also isolate failures: one
            # poisoned prefix surfaces from exactly its own future.
            work.sort(key=lambda item: (-len(item[1]), item[0]))
            with ProcessPoolExecutor(max_workers=processes) as pool:
                futures = [
                    (item, pool.submit(_run_one_columns, item))
                    for item in work
                ]
                for item, future in futures:
                    try:
                        prefix, seeds, prefix_budget, result, payload = (
                            future.result()
                        )
                    except Exception:
                        if not isolate_failures:
                            raise
                        # Retry once, in the parent — same args, same
                        # seed, so a success is the run the worker
                        # would have produced.
                        tele.count("generate.prefix_retries")
                        try:
                            prefix, seeds, prefix_budget, result, payload = (
                                _run_one_columns(item)
                            )
                        except Exception as exc2:
                            _record_prefix_failure(
                                tele, out, item[0], exc2, len(work),
                                progress_sink,
                            )
                            continue
                    _adopt_columns(result, payload)
                    out.runs[prefix] = PrefixRun(
                        prefix=prefix, seeds=seeds, budget=prefix_budget,
                        result=result,
                    )
                    # Per-prefix attribution: in-process sixgen spans
                    # cannot cross the pool, so the worker's wall time
                    # and target count ride on this collection-side
                    # span instead.
                    targets = len(result._columns[0])
                    targets_total += targets
                    if tele.enabled:
                        tele.count("generate.targets_total", targets)
                        with tele.span(
                            "generate.prefix",
                            prefix=str(prefix),
                            seeds=len(seeds),
                            targets=targets,
                            worker_elapsed=result.elapsed_seconds,
                        ):
                            pass
                    _record_prefix_run(
                        tele, out.runs[prefix], len(work), progress_sink,
                        targets=targets,
                    )
        else:
            for item in work:
                prefix, seeds, prefix_budget, loose_, ledger_, seed_ = item
                # The per-prefix span wraps the whole attempt (retry
                # included) so `repro report` can attribute generation
                # time prefix by prefix; run_6gen's own sixgen span —
                # which carries generate.targets_total — nests inside.
                try:
                    with tele.span(
                        "generate.prefix",
                        prefix=str(prefix), seeds=len(seeds),
                    ):
                        try:
                            result = run_6gen(
                                seeds, prefix_budget, loose=loose_,
                                ledger=ledger_, rng_seed=seed_,
                                telemetry=telemetry,
                            )
                        except Exception:
                            if not isolate_failures:
                                raise
                            tele.count("generate.prefix_retries")
                            result = run_6gen(
                                seeds, prefix_budget, loose=loose_,
                                ledger=ledger_, rng_seed=seed_,
                                telemetry=telemetry,
                            )
                except Exception as exc2:
                    if not isolate_failures:
                        raise
                    _record_prefix_failure(
                        tele, out, prefix, exc2, len(work), progress_sink
                    )
                    continue
                out.runs[prefix] = PrefixRun(
                    prefix=prefix, seeds=seeds, budget=prefix_budget,
                    result=result,
                )
                if result._targets is not None:
                    targets = len(result._targets)
                    targets_total += targets
                else:
                    targets = None
                    targets_known = False
                _record_prefix_run(
                    tele, out.runs[prefix], len(work), progress_sink,
                    targets=targets,
                )
    elapsed = time.perf_counter() - started
    if tele.enabled and targets_known and out.runs and elapsed > 0:
        # Campaign-level rate; overwrites any per-run gauge from the
        # serial path's nested run_6gen calls (last write wins), which
        # is the value `repro report` should show.
        tele.gauge("generate.targets_per_sec", targets_total / elapsed)
    return out


def _record_prefix_run(
    telemetry: Telemetry,
    run: PrefixRun,
    total: int,
    sink=None,
    *,
    targets: int | None = None,
) -> None:
    """Per-prefix progress accounting (no-op for null telemetry).

    ``targets`` is the prefix's distinct generated-target count when the
    caller knows it (exact ledger or column path); ``None`` means
    unknown (range-sum ledger, where materialising the set just to
    count it would defeat the ledger's purpose).
    """
    if sink is not None:
        sink.emit(
            {
                "event": "prefix_generated",
                "prefix": str(run.prefix),
                "seeds": len(run.seeds),
                "budget_used": run.result.budget_used,
            }
        )
    if not telemetry.enabled:
        return
    telemetry.count("generate.prefixes")
    telemetry.count("generate.budget_used", run.result.budget_used)
    telemetry.count("generate.clusters", len(run.result.clusters))
    event = {
        "stage": "6gen",
        "prefix": str(run.prefix),
        "seeds": len(run.seeds),
        "budget_used": run.result.budget_used,
        "iterations": run.result.iterations,
        "total_prefixes": total,
    }
    if targets is not None:
        event["targets"] = targets
    telemetry.event("progress", event)


def _record_prefix_failure(
    telemetry: Telemetry,
    out: MultiPrefixRun,
    prefix: Prefix,
    exc: BaseException,
    total: int,
    sink=None,
) -> None:
    """Record a twice-failed prefix and warn; the campaign continues."""
    import warnings

    detail = f"{type(exc).__name__}: {exc}"
    out.failures[prefix] = detail
    warnings.warn(
        f"6Gen failed twice for {prefix}; skipping its targets ({detail})",
        RuntimeWarning,
        stacklevel=3,
    )
    if sink is not None:
        sink.emit(
            {"event": "prefix_failed", "prefix": str(prefix), "error": detail}
        )
    if telemetry.enabled:
        telemetry.count("generate.failed_prefixes")
        telemetry.event(
            "prefix_failed",
            {"prefix": str(prefix), "error": detail, "total_prefixes": total},
        )
