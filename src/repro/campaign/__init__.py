"""The campaign layer: generate→dedupe→permute→probe→retry→checkpoint.

A :class:`Campaign` owns one full scan campaign — per-prefix 6Gen
target generation streaming packed ``(hi, lo)`` columns, scan-side
dedupe and cyclic-permutation ordering, budgeted probing with retry
rounds, crash-safe checkpointing, and §6.2 dealiasing — as composable
stages over the packed column plane.  ``run_full_scan`` /
``run_per_prefix`` (:mod:`repro.analysis`) and the CLI are thin
wrappers over this layer; the multi-tenant scheduler
(:mod:`repro.service`) drives the same stages batch-by-batch.
"""

from .allocation import AllocationPolicy, PrefixProgress
from .generate import generate_per_prefix
from .pipeline import Campaign, CampaignResult, CampaignSpec

__all__ = [
    "AllocationPolicy",
    "Campaign",
    "CampaignResult",
    "CampaignSpec",
    "PrefixProgress",
    "generate_per_prefix",
]
