"""The campaign's mid-flight budget-allocation hook.

The paper leaves cross-network budget allocation open ("we do not
address how to best allocate probe budget across networks") and §8
argues for feeding scan results back into the generator.  This module
defines the seam the campaign pipeline exposes for that feedback: an
:class:`AllocationPolicy` splits the remaining campaign budget across
routed prefixes at each phase boundary, looking at live per-prefix
progress (:class:`PrefixProgress`).

The types live here — in :mod:`repro.campaign`, not
:mod:`repro.predictive` — so the pipeline depends only on the
protocol; the predictive allocator (and any future learned policy)
imports these and plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ipv6.prefix import Prefix
    from ..predictive.features import PrefixFeatures


@dataclass
class PrefixProgress:
    """Live per-prefix state an allocation policy plans from.

    ``allocated`` is the cumulative probe budget granted across all
    completed phases; ``probes``/``hits`` are what the scans actually
    spent and found inside this prefix so far.  ``features`` carries
    the static seed-set description (see
    :class:`repro.predictive.features.PrefixFeatures`) when the
    campaign computed one.
    """

    prefix: "Prefix"
    seeds: int
    probes: int = 0
    hits: int = 0
    allocated: int = 0
    features: "PrefixFeatures | None" = None

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


@runtime_checkable
class AllocationPolicy(Protocol):
    """Splits the remaining campaign budget across prefixes per phase.

    ``phases`` is the number of plan→generate→scan phases the campaign
    runs.  ``plan`` is called once per phase with the phase index, the
    campaign budget still unspent, and the per-prefix progress; it
    returns the probe budget each prefix gets *this phase* (prefixes
    may be omitted or given 0).  The campaign requires plans to be a
    deterministic function of their arguments — that is what keeps
    phased campaigns bit-identical at any worker count and across
    checkpoint/resume (plans are replayed and verified on resume).
    """

    phases: int

    def plan(
        self,
        phase: int,
        remaining: int,
        progress: "Mapping[Prefix, PrefixProgress]",
    ) -> "Mapping[Prefix, int]": ...
