"""Risk-weighted budget allocation across routed prefixes.

The §8 loop this implements: spend a small pilot slice of the budget
uniformly, learn per-prefix hit probabilities from what comes back
(:class:`~repro.predictive.model.HitRateModel`), then re-split the
remaining budget in proportion to expected yield — holding back an
exploration share so a prefix whose pilot round was unlucky is never
starved forever, and near-zero-weighting prefixes whose observed rate
looks like aliasing (a near-perfect response rate is the §6.2 alarm,
not a jackpot).

:class:`PredictiveAllocator` is a :class:`repro.campaign.allocation.
AllocationPolicy`: the campaign pipeline calls :meth:`plan` at every
phase boundary.  Plans are deterministic functions of the model state
and progress — integer apportionment goes through
:func:`largest_remainder_split`, which is worker-count- and
dict-order-independent by construction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Mapping

from .model import HitRateModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..campaign.allocation import PrefixProgress
    from ..ipv6.prefix import Prefix


def largest_remainder_split(total: int, weights: Mapping) -> dict:
    """Apportion ``total`` integer units proportionally to ``weights``.

    Hamilton's method: floor every proportional share, then hand the
    leftover units to the largest fractional remainders (ties broken by
    key string).  Deterministic for any iteration order of ``weights``,
    exact (allocations sum to ``total``), and zero-weight keys never
    receive units.  All-zero (or empty) weights fall back to a uniform
    split — the pilot phase's degenerate case.
    """
    keys = sorted(weights, key=str)
    out = {key: 0 for key in keys}
    if total <= 0 or not keys:
        return out
    weight_sum = float(sum(max(float(weights[k]), 0.0) for k in keys))
    if weight_sum <= 0.0:
        shares = {key: total / len(keys) for key in keys}
    else:
        shares = {
            key: total * max(float(weights[key]), 0.0) / weight_sum
            for key in keys
        }
    for key in keys:
        out[key] = int(shares[key])
    leftover = total - sum(out.values())
    by_remainder = sorted(
        keys, key=lambda k: (out[k] - shares[k], str(k))
    )
    for key in by_remainder[:leftover]:
        out[key] += 1
    return out


class PredictiveAllocator:
    """Predict-and-reallocate budget policy over a shared hit-rate model.

    ``phases`` is the total number of plan→scan phases; phase 0 is the
    uniform pilot sized by ``pilot_fraction`` of the budget, later
    phases split the rest by predicted yield (an even share per
    remaining phase, everything on the last).  ``explore_fraction`` of
    each predictive phase stays uniform across live prefixes.
    ``alias_guard`` (off by default) zero-weights prefixes whose
    observed hit rate exceeds it — a backstop for drivers feeding the
    model *raw* hit counts, where a near-perfect rate is the §6.2
    aliasing alarm.  The phased campaign path instead random-probe
    tests hit-concentrating /96s and discounts aliased hits before
    observing, so a high rate there means a genuinely dense prefix
    (the paper's best networks) and must keep its budget — don't
    combine that path with a guard.  ``policy_labels`` optionally maps
    prefixes to simnet allocation-policy names, upgrading the model's
    feature bins to the oracle labels.
    """

    def __init__(
        self,
        model: HitRateModel | None = None,
        *,
        phases: int = 3,
        pilot_fraction: float = 0.25,
        explore_fraction: float = 0.10,
        alias_guard: float | None = None,
        policy_labels: "Mapping[Prefix, str] | None" = None,
    ):
        if phases < 2:
            raise ValueError(f"predictive allocation needs >= 2 phases: {phases}")
        if not 0.0 < pilot_fraction < 1.0:
            raise ValueError(f"pilot_fraction must be in (0, 1): {pilot_fraction}")
        if not 0.0 <= explore_fraction <= 1.0:
            raise ValueError(
                f"explore_fraction must be in [0, 1]: {explore_fraction}"
            )
        self.model = model if model is not None else HitRateModel()
        self.phases = phases
        self.pilot_fraction = pilot_fraction
        self.explore_fraction = explore_fraction
        self.alias_guard = alias_guard
        self.policy_labels = dict(policy_labels) if policy_labels else {}

    # -- the AllocationPolicy hook --------------------------------------

    def plan(
        self,
        phase: int,
        remaining: int,
        progress: "Mapping[Prefix, PrefixProgress]",
    ) -> "dict[Prefix, int]":
        """Split this phase's budget slice across the live prefixes."""
        prefixes = sorted(progress)
        if not prefixes or remaining <= 0:
            return {}
        budget = self._phase_budget(phase, remaining, len(prefixes))
        if phase == 0:
            return largest_remainder_split(
                budget, {p: 1.0 for p in prefixes}
            )
        self._absorb(phase, progress)
        n = len(prefixes)
        weights: dict = {}
        for prefix in prefixes:
            key = str(prefix)
            rate = self.model.observed_rate(key)
            if (
                self.alias_guard is not None
                and rate is not None
                and rate > self.alias_guard
            ):
                # A near-perfect *raw* response rate is the §6.2
                # aliasing signature; spending more there is how
                # budgets vanish into one magic /96.
                weights[prefix] = 0.0
                continue
            predicted = self.model.predict(key, self._features(prefix, progress))
            weights[prefix] = (
                (1.0 - self.explore_fraction) * predicted
                + self.explore_fraction / n
            )
        return largest_remainder_split(budget, weights)

    # -- internals ------------------------------------------------------

    def _phase_budget(self, phase: int, remaining: int, n: int) -> int:
        if phase >= self.phases - 1:
            return remaining
        if phase == 0:
            pilot = int(remaining * self.pilot_fraction)
            # Every prefix deserves at least one pilot probe when the
            # budget allows it — a zero-probe pilot teaches nothing.
            return min(remaining, max(pilot, min(remaining, n)))
        return remaining // (self.phases - phase)

    def _features(self, prefix, progress):
        features = progress[prefix].features
        if features is None:
            raise ValueError(
                f"progress for {prefix} carries no features; the campaign "
                "must extract them before planning"
            )
        label = self.policy_labels.get(prefix)
        if label is not None and features.policy is None:
            features = replace(features, policy=label)
        return features

    def _absorb(self, phase: int, progress) -> None:
        """Fold the previous phases' outcomes into the model.

        Observations key on ``(phase, prefix)`` and fold only the delta
        between the progress totals and what the model already counted,
        so calling plan() twice for the same phase — or replaying it on
        resume — changes nothing.
        """
        for prefix in sorted(progress):
            state = progress[prefix]
            self.model.observe_total(
                phase,
                str(prefix),
                self._features(prefix, progress),
                state.probes,
                state.hits,
            )
