"""Predictive, budget-aware probe selection (the §8 allocation loop).

Classic per-prefix 6Gen splits the probe budget statically and learns
nothing mid-campaign.  This package closes the loop the paper sketches
in §8: featurise every routed prefix's seed set
(:mod:`~repro.predictive.features`), train a tiny online hit-rate
model from early scan feedback (:mod:`~repro.predictive.model`), and
re-split the remaining budget across prefixes by expected yield at
every phase boundary (:mod:`~repro.predictive.allocate`).  The
campaign pipeline drives it through the
:class:`~repro.campaign.allocation.AllocationPolicy` hook.
"""

from .allocate import PredictiveAllocator, largest_remainder_split
from .features import PrefixFeatures, extract_features, policy_labels
from .model import HitRateModel

__all__ = [
    "HitRateModel",
    "PredictiveAllocator",
    "PrefixFeatures",
    "extract_features",
    "largest_remainder_split",
    "policy_labels",
]
