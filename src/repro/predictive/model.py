"""An online, binned Beta-posterior hit-rate model.

The allocator needs ``P(probe in prefix p responds)`` *before* most of
the budget is spent, from two signal sources of very different sample
size: the prefix's own early-phase observations (few probes, exactly
the right distribution) and the pooled observations of *similar*
prefixes (many probes, approximately the right distribution).  A
conjugate Beta posterior per feature bin handles both with nothing but
counters:

* every prefix maps to a :meth:`HitRateModel.bin_key` — its policy
  label (when known) plus coarse density and IID-entropy buckets;
* observations update the bin's pooled ``(probes, hits)`` and the
  prefix's own ``(probes, hits)``;
* :meth:`predict` shrinks the prefix's empirical rate toward the bin's
  posterior mean with a fixed prior strength — prefixes with little
  evidence ride the pool, prefixes with lots of evidence speak for
  themselves.

Pure counters make the model trivially deterministic, mergeable, and
replayable: re-observing the same ``(phase, prefix)`` pair is a no-op
(see :meth:`observe`), which is what makes checkpoint/resume rebuild
identical state.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .features import PrefixFeatures


class HitRateModel:
    """Calibrated per-prefix hit-probability estimates from counters.

    ``alpha0``/``beta0`` form the Beta prior of every bin (the default
    expects roughly one hit per nine probes before any evidence —
    scans are usually sparse); ``prior_strength`` is the pseudo-probe
    weight of the bin posterior when shrinking a prefix's own rate.
    """

    def __init__(
        self,
        *,
        alpha0: float = 1.0,
        beta0: float = 8.0,
        prior_strength: float = 32.0,
    ):
        if alpha0 <= 0 or beta0 <= 0:
            raise ValueError("Beta prior parameters must be positive")
        if prior_strength < 0:
            raise ValueError(f"prior_strength must be >= 0: {prior_strength}")
        self.alpha0 = alpha0
        self.beta0 = beta0
        self.prior_strength = prior_strength
        self._bins: dict[tuple, list[int]] = {}
        self._prefixes: dict[str, list[int]] = {}
        self._seen: set[tuple[int, str]] = set()

    # -- binning --------------------------------------------------------

    @staticmethod
    def bin_key(features: "PrefixFeatures") -> tuple:
        """The pooled-evidence bucket a prefix's features fall into.

        Policy label (or ``"?"``), log2 seed-density bucket, and a
        quarter-scale IID-entropy bucket.  Coarse on purpose: bins must
        collect enough observations to be worth pooling.
        """
        density_bucket = int(math.log2(max(features.seed_density, 1.0)))
        entropy_bucket = min(int(features.mean_iid_entropy * 4), 3)
        return (features.policy or "?", density_bucket, entropy_bucket)

    # -- updates --------------------------------------------------------

    def observe(
        self,
        phase: int,
        prefix_key: str,
        features: "PrefixFeatures",
        probes: int,
        hits: int,
    ) -> bool:
        """Fold one phase's outcome for one prefix into the counters.

        Idempotent per ``(phase, prefix_key)``: a resumed campaign
        replays every recorded phase, and replays must not double-count
        evidence.  Returns True when the observation was new.
        """
        if probes < 0 or hits < 0 or hits > probes:
            raise ValueError(
                f"invalid observation: probes={probes} hits={hits}"
            )
        mark = (phase, prefix_key)
        if mark in self._seen:
            return False
        self._seen.add(mark)
        if probes == 0:
            return True
        bin_ = self._bins.setdefault(self.bin_key(features), [0, 0])
        bin_[0] += probes
        bin_[1] += hits
        own = self._prefixes.setdefault(prefix_key, [0, 0])
        own[0] += probes
        own[1] += hits
        return True

    def observe_total(
        self,
        phase: int,
        prefix_key: str,
        features: "PrefixFeatures",
        total_probes: int,
        total_hits: int,
    ) -> bool:
        """Observe *cumulative* per-prefix totals, folding only the delta.

        Callers that track running totals (the campaign's
        :class:`~repro.campaign.allocation.PrefixProgress`) pass them
        straight in; the model subtracts what it has already counted
        for the prefix.  Same idempotence contract as :meth:`observe`.
        """
        own = self._prefixes.get(prefix_key, (0, 0))
        return self.observe(
            phase,
            prefix_key,
            features,
            total_probes - own[0],
            total_hits - own[1],
        )

    # -- prediction -----------------------------------------------------

    def predict(self, prefix_key: str, features: "PrefixFeatures") -> float:
        """Posterior hit probability for the next probe in this prefix."""
        bin_probes, bin_hits = self._bins.get(
            self.bin_key(features), (0, 0)
        )
        bin_mean = (self.alpha0 + bin_hits) / (
            self.alpha0 + self.beta0 + bin_probes
        )
        own_probes, own_hits = self._prefixes.get(prefix_key, (0, 0))
        return (self.prior_strength * bin_mean + own_hits) / (
            self.prior_strength + own_probes
        )

    def observed_rate(self, prefix_key: str) -> float | None:
        """The prefix's raw empirical rate, or None before any probes."""
        probes, hits = self._prefixes.get(prefix_key, (0, 0))
        return hits / probes if probes else None

    # -- introspection --------------------------------------------------

    def state(self) -> dict:
        """A canonical, JSON-able snapshot of every counter.

        Two models that saw the same observations — in any order, with
        any replays — produce equal snapshots; the resume-idempotence
        tests compare these directly.
        """
        return {
            "bins": {
                "|".join(map(str, key)): list(value)
                for key, value in sorted(self._bins.items())
            },
            "prefixes": {
                key: list(value)
                for key, value in sorted(self._prefixes.items())
            },
            "observations": sorted(
                f"{phase}:{key}" for phase, key in self._seen
            ),
        }
