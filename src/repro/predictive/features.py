"""Per-prefix seed-set features for the predictive hit-rate model.

What makes two routed prefixes respond differently to the same probe
budget is *addressing structure*: a low-byte prefix concentrates hosts
in a tiny dense corner, a privacy-random prefix scatters them across
64 random bits.  :class:`PrefixFeatures` compresses a prefix's seed
set into the handful of signals that separate those regimes — seed
count, /64 subnet spread, per-/64 density, and the Entropy/IP nybble
curve over the interface identifier — plus the simnet's allocation-
policy label when the caller knows it (the oracle feature the
benchmark uses to measure how much of the signal the address-derived
features already capture).

Everything is computed column-natively when the seeds arrive as a
packed ``(hi, lo)`` pair (the generation plane's currency); boxed int
sequences take the scalar path with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..entropyip.entropy import nybble_entropies, nybble_entropies_columns
from ..ipv6.addrplane import is_columns
from ..ipv6.nybble import NYBBLE_COUNT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ipv6.prefix import Prefix
    from ..simnet.ground_truth import SimInternet

#: First nybble of the interface identifier (the low /64).
_IID_START = NYBBLE_COUNT // 2

#: Entropy band (normalised) counted as "structured": above constant,
#: below random — the segment Entropy/IP mines for patterns.
_STRUCTURED_LO = 0.05
_STRUCTURED_HI = 0.95


@dataclass(frozen=True)
class PrefixFeatures:
    """The model's view of one routed prefix's seed set."""

    #: Distinct seed addresses observed in the prefix.
    seed_count: int
    #: Distinct /64 subnets those seeds occupy.
    subnet_count: int
    #: Seeds per occupied /64 — the density axis that separates
    #: low-byte-style clustering from one-host-per-subnet scatter.
    seed_density: float
    #: Mean normalised nybble entropy over the interface identifier.
    mean_iid_entropy: float
    #: IID nybble positions with mid-band entropy (structure to learn).
    structured_nybbles: int
    #: Simnet allocation-policy label (``None`` outside the simulator).
    policy: str | None = None


def extract_features(
    seeds, *, policy: str | None = None
) -> PrefixFeatures:
    """Compute :class:`PrefixFeatures` from a prefix's seed set.

    ``seeds`` is either a packed ``(hi, lo)`` uint64 column pair or a
    sequence of int addresses.  Raises ``ValueError`` on an empty set
    (a prefix with no seeds has nothing to featurise — the campaign
    never plans for one).
    """
    if is_columns(seeds):
        import numpy as np

        hi, lo = seeds
        n = len(hi)
        if n == 0:
            raise ValueError("feature extraction requires at least one seed")
        subnet_count = len(np.unique(hi))
        entropies = nybble_entropies_columns(hi, lo)
    else:
        values = [int(s) for s in seeds]
        n = len(values)
        if n == 0:
            raise ValueError("feature extraction requires at least one seed")
        subnet_count = len({v >> 64 for v in values})
        entropies = nybble_entropies(values)
    iid = entropies[_IID_START:]
    return PrefixFeatures(
        seed_count=n,
        subnet_count=subnet_count,
        seed_density=n / subnet_count,
        mean_iid_entropy=sum(iid) / len(iid),
        structured_nybbles=sum(
            1 for e in iid if _STRUCTURED_LO < e < _STRUCTURED_HI
        ),
        policy=policy,
    )


def policy_labels(internet: "SimInternet") -> "dict[Prefix, str]":
    """Routed prefix -> allocation-policy name, from a built simnet.

    The oracle label channel: inside the simulator the true addressing
    policy of every network is known, so experiments can hand the
    allocator ground-truth labels and compare against the label-free
    (address-features-only) model.
    """
    return {
        network.spec.routed_prefix: network.spec.policy_name
        for network in internet.networks
    }
