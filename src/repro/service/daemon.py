"""An in-process campaign daemon: many tenants, one simnet, fair turns.

:class:`CampaignService` accepts concurrent campaign submissions into a
job queue and interleaves their probe batches over one shared simulated
Internet and worker pool.  Scheduling is round-robin with a per-tenant
batch quantum: every active job gets the same number of probe batches
per rotation, so N equal campaigns progress within one quantum of each
other (the fairness tests pin this spread).

The property that makes interleaving *safe* is the stack's
order-independent determinism: every probe verdict is a pure function
of ``(key, address, attempt)``, so executing campaign A's batches
between two batches of campaign B cannot change what either observes.
Per-campaign results under any interleaving are bit-identical to solo
runs — the parity tests and the CI service-parity job enforce it.

Tenant isolation is structural: each campaign owns its scanner and
execution state; the scheduler touches jobs only through the
:class:`~repro.campaign.Campaign` stepwise API.  A failing campaign
(bad prefix set, injected crash) is sealed with ``abort()`` and
dequeued — the rotation simply tightens around the survivors.  A
tenant whose probe budget runs out has its jobs interrupted with
partial results; other tenants never see the difference.

Preemption is stopping: :meth:`CampaignService.pause` removes a job
from the rotation (its checkpoint file, when armed, already holds a
resumable prefix), :meth:`CampaignService.resume` re-enters it.  A
cold preempt — kill the service, start a new one, resubmit with
``resume=True`` — goes through the PR 4 checkpoint layer and finishes
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..campaign import Campaign, CampaignResult, CampaignSpec
from ..scanner.schedule import RatePolicy, TenantBudget
from ..telemetry.spans import Telemetry, ensure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.models import WorkerCrash
    from ..ipv6.prefix import Prefix


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant scheduling policy.

    ``probe_budget`` caps the tenant's total first-attempt probes
    across all its campaigns (None = unlimited); enforcement is
    batch-granular, so a tenant can overshoot by at most one batch.
    ``prefix_rate`` applies a per-prefix probe rate cap (the shared
    :class:`~repro.scanner.schedule.RatePolicy` core): the service
    wraps the tenant's ground truth in the matching
    :class:`~repro.faults.RateLimiter` overlay, so scheduler-side
    policy and network-side enforcement come from one object.
    ``quantum`` is the number of probe batches the tenant's job runs
    per scheduler rotation.
    """

    probe_budget: int | None = None
    prefix_rate: RatePolicy | None = None
    rate_prefix_len: int = 64
    rate_seed: int = 0
    quantum: int = 4

    def __post_init__(self):
        if self.quantum < 1:
            raise ValueError(f"quantum must be >= 1: {self.quantum}")


@dataclass
class _Tenant:
    name: str
    policy: TenantPolicy
    budget: TenantBudget = field(default_factory=TenantBudget)


@dataclass
class CampaignJob:
    """One submitted campaign and its scheduling state."""

    job_id: str
    tenant: str
    campaign: Campaign
    state: str = "queued"  # queued|running|paused|finished|budget_exhausted|failed
    error: str | None = None
    resume: bool = False
    crash: "WorkerCrash | None" = None
    #: probes_sent already charged to the tenant's budget.
    charged: int = 0

    @property
    def active(self) -> bool:
        return self.state in ("queued", "running")

    @property
    def result(self) -> CampaignResult | None:
        return self.campaign.result


class CampaignService:
    """In-process multi-tenant campaign scheduler over one shared simnet.

    ``truth``/``bgp`` are the shared world every campaign scans.
    Register tenants, submit campaigns, then drive the scheduler with
    :meth:`step` (one rotation turn) or :meth:`run_until_idle`.
    """

    def __init__(self, truth, bgp, *, telemetry: Telemetry | None = None):
        self.truth = truth
        self.bgp = bgp
        self.telemetry = telemetry
        self._tele = ensure(telemetry)
        self.tenants: dict[str, _Tenant] = {}
        self.jobs: dict[str, CampaignJob] = {}
        self._rotation: deque[str] = deque()
        self._ids = itertools.count(1)

    # -- tenants and submission ----------------------------------------

    def register_tenant(
        self, name: str, policy: TenantPolicy | None = None
    ) -> None:
        if name in self.tenants:
            raise ValueError(f"tenant already registered: {name!r}")
        policy = policy or TenantPolicy()
        self.tenants[name] = _Tenant(
            name=name,
            policy=policy,
            budget=TenantBudget(limit=policy.probe_budget),
        )

    def submit(
        self,
        tenant: str,
        groups: "Mapping[Prefix, Sequence[int]]",
        spec: CampaignSpec,
        *,
        name: str | None = None,
        checkpoint_path: str | None = None,
        resume: bool = False,
        crash: "WorkerCrash | None" = None,
        telemetry: Telemetry | None = None,
        targets=None,
        allocation=None,
    ) -> str:
        """Queue a campaign for ``tenant``; returns its job id.

        The campaign scans the service's shared truth, wrapped in the
        tenant's rate-limit overlay when its policy sets one.  Nothing
        runs until the scheduler gives the job a turn.  ``targets``
        passes an explicit target list/column pair through to the
        campaign, bypassing generation (the delta re-probe path).
        ``allocation`` plugs an :class:`~repro.campaign.allocation.
        AllocationPolicy` into the campaign — it then runs phased,
        re-splitting budget across prefixes at quantum-compatible phase
        boundaries, with the tenant's budget ledger bounding every plan
        so a re-split never schedules probes the tenant cannot pay for.
        """
        if tenant not in self.tenants:
            raise KeyError(f"unknown tenant: {tenant!r}")
        policy = self.tenants[tenant].policy
        truth = self.truth
        if policy.prefix_rate is not None:
            from ..faults.ground import FaultyGroundTruth
            from ..faults.models import RateLimiter

            truth = FaultyGroundTruth(
                self.truth,
                RateLimiter.from_policy(
                    policy.prefix_rate,
                    seed=policy.rate_seed,
                    prefix_len=policy.rate_prefix_len,
                ),
            )
        job_id = f"job-{next(self._ids)}"
        campaign = Campaign(
            truth, self.bgp, groups, spec,
            telemetry=telemetry if telemetry is not None else self.telemetry,
            checkpoint_path=checkpoint_path,
            name=name or job_id,
            targets=targets,
            allocation=allocation,
            budget_ledger=(
                self.tenants[tenant].budget if allocation is not None else None
            ),
        )
        job = CampaignJob(
            job_id=job_id, tenant=tenant, campaign=campaign,
            resume=resume, crash=crash,
        )
        self.jobs[job_id] = job
        self._rotation.append(job_id)
        self._tele.count("service.submitted")
        return job_id

    # -- the scheduler -------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when no job is queued or running (paused jobs don't count)."""
        return not self._rotation

    def step(self) -> bool:
        """Give the next job in the rotation one turn; False when idle.

        A turn is: begin a queued campaign (generation + scan arming),
        or run up to ``quantum`` probe batches of a running one.  A job
        that finishes, fails, or exhausts its tenant's budget during
        the turn is sealed and leaves the rotation; otherwise it goes
        to the back of the queue.
        """
        if not self._rotation:
            return False
        job = self.jobs[self._rotation.popleft()]
        tenant = self.tenants[job.tenant]
        try:
            if job.state == "queued":
                if tenant.budget.exhausted:
                    # The tenant spent its budget before this job ever
                    # ran: never begin (generation is wasted work).
                    job.state = "budget_exhausted"
                    self._tele.count("service.budget_exhausted")
                    return True
                job.campaign.begin(resume=job.resume, crash=job.crash)
                job.state = "running"
                self._rotation.append(job.job_id)
                return True
            for _ in range(tenant.policy.quantum):
                more = job.campaign.step()
                self._charge(job, tenant)
                if not more:
                    job.campaign.finish()
                    job.state = "finished"
                    self._tele.count("service.finished")
                    return True
                if tenant.budget.exhausted:
                    job.campaign.interrupt()
                    job.state = "budget_exhausted"
                    self._tele.count("service.budget_exhausted")
                    return True
            self._rotation.append(job.job_id)
        except Exception as exc:
            # Isolation: this job is sealed; the rotation (already
            # popped) tightens around the other tenants' jobs.
            if job.campaign.state == "running":
                job.campaign.abort()
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self._tele.count("service.failed")
            self._tele.event(
                "service_job_failed",
                {"job": job.job_id, "tenant": job.tenant, "error": job.error},
            )
        return True

    def run_until_idle(self) -> None:
        """Drive the scheduler until every job has left the rotation."""
        while self.step():
            pass

    def _charge(self, job: CampaignJob, tenant: _Tenant) -> None:
        # Budgets are first-attempt probe budgets (the paper's unit);
        # retransmits ride free, like blacklisted targets.  The
        # campaign-level counter spans phases, so phased campaigns
        # charge correctly across their per-phase executions.
        sent = job.campaign.probes_sent
        delta = sent - job.charged
        if delta:
            tenant.budget.charge(delta)
            job.charged = sent

    # -- preemption ----------------------------------------------------

    def pause(self, job_id: str) -> None:
        """Remove a job from the rotation; its state stays in memory."""
        job = self._job(job_id)
        if not job.active:
            raise ValueError(f"cannot pause job in state {job.state!r}")
        if job_id in self._rotation:
            self._rotation.remove(job_id)
        job.state = "paused"
        self._tele.count("service.paused")

    def resume(self, job_id: str) -> None:
        """Re-enter a paused job into the rotation."""
        job = self._job(job_id)
        if job.state != "paused":
            raise ValueError(f"cannot resume job in state {job.state!r}")
        job.state = "running" if job.campaign.state == "running" else "queued"
        self._rotation.append(job_id)
        self._tele.count("service.resumed")

    # -- inspection ----------------------------------------------------

    def progress(self, job_id: str) -> dict:
        """A live progress snapshot of one job (cheap, side-effect free)."""
        job = self._job(job_id)
        out = {
            "job": job.job_id,
            "tenant": job.tenant,
            "name": job.campaign.name,
            "state": job.state,
        }
        if job.error is not None:
            out["error"] = job.error
        execution = job.campaign.execution
        if execution is not None:
            out.update(
                targets=execution.n,
                batches_done=execution.batches_done,
                probes_sent=execution.stats.probes_sent,
                retransmits=execution.stats.retransmits,
                hits=len(execution.hits),
            )
        budget = self.tenants[job.tenant].budget
        if budget.limit is not None:
            out["budget_remaining"] = budget.remaining()
        return out

    def progress_all(self) -> list[dict]:
        return [self.progress(job_id) for job_id in self.jobs]

    def result(self, job_id: str) -> CampaignResult:
        """The sealed result of a finished or interrupted job."""
        job = self._job(job_id)
        if job.campaign.result is None:
            raise RuntimeError(
                f"job {job_id} has no result (state {job.state!r})"
            )
        return job.campaign.result

    def _job(self, job_id: str) -> CampaignJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job: {job_id!r}") from None
