"""Multi-tenant campaign service: a job queue over one shared simnet.

An in-process daemon (:class:`CampaignService`) that accepts many
concurrent campaign submissions, interleaves their probe batches
fairly round-robin over one shared simulated Internet, enforces
per-tenant probe budgets and rate policies, and supports
pause/resume — warm (in memory) and cold (through the checkpoint
layer).  Order-independent probe verdicts make every interleaving
produce per-campaign results bit-identical to solo runs.
"""

from .daemon import CampaignJob, CampaignService, TenantPolicy

__all__ = ["CampaignJob", "CampaignService", "TenantPolicy"]
