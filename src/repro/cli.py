"""Command-line interface: ``repro6`` / ``python -m repro``.

Subcommands mirror the toolchain of the paper:

* ``6gen``       — run 6Gen on a hitlist file, write targets;
* ``entropy-ip`` — run Entropy/IP on a hitlist file, write targets;
* ``scan``       — scan a target hitlist against the simulated Internet;
* ``dealias``    — run the §6.2 dealiasing pipeline on a hit list;
* ``simulate``   — build the simulated Internet and emit its seed snapshot;
* ``service``    — run many tenant campaigns through the multi-tenant
  scheduler over one shared simulated Internet;
* ``hitlist``    — inspect (or export from) a living-hitlist store;
* ``experiment`` — run a named paper experiment and print its table/figure;
* ``report``     — full-pipeline markdown report, or a telemetry run
  summary / two-run delta when given ``.jsonl`` files.

The ``scan`` / ``6gen`` / ``dealias`` / ``adaptive`` / ``service``
commands accept ``--telemetry PATH`` to stream metrics, spans, and a
run manifest to a JSONL file (see ``docs/observability.md``), and
``scan`` / ``6gen`` / ``dealias`` / ``service`` accept ``--quiet`` /
``--json`` to replace the human output with nothing, or with a single
machine-readable summary line.

``scan`` and ``service`` additionally accept ``--epochs N
--churn-seed S`` to run longitudinally: the world advances one churn
epoch between passes (see :mod:`repro.simnet.dynamics`), and ``scan
--hitlist PATH`` feeds every pass's outcome into a living-hitlist
store (:mod:`repro.hitlist`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import experiments as ex
from .core.sixgen import run_6gen
from .datasets.hitlist import read_hitlist_ints, write_hitlist
from .entropyip.generator import run_entropy_ip
from .scanner.dealias import dealias
from .scanner.engine import ScanConfig, Scanner
from .simnet.dns import collect_seeds
from .simnet.ground_truth import default_internet
from .telemetry import JsonlSink, RunManifest, Telemetry


class _Output:
    """One formatting helper for every command's human/machine output.

    ``say`` prints human-readable progress lines (suppressed by
    ``--quiet`` and by ``--json``); ``finish`` prints the single
    machine-readable summary line when ``--json`` was given.  Errors
    always go to stderr regardless of mode.
    """

    def __init__(self, args: argparse.Namespace):
        self.quiet = bool(getattr(args, "quiet", False))
        self.json = bool(getattr(args, "json", False))

    def say(self, text: str) -> None:
        if not self.quiet and not self.json:
            print(text)

    def error(self, text: str) -> None:
        print(f"error: {text}", file=sys.stderr)

    def finish(self, command: str, summary: dict) -> None:
        if self.json:
            print(json.dumps({"command": command, **summary}, sort_keys=True))


def _open_telemetry(
    args: argparse.Namespace, command: str, config: dict
) -> Telemetry | None:
    """Build a JSONL-backed telemetry for ``--telemetry PATH`` (or None).

    The manifest event is written immediately, so even a run that
    crashes early leaves a self-describing file behind.
    """
    path = getattr(args, "telemetry", None)
    if not path:
        return None
    telemetry = Telemetry(JsonlSink(path))
    RunManifest.create(
        command, config, rng_seed=getattr(args, "rng_seed", None)
    ).emit(telemetry)
    return telemetry


def _close_telemetry(telemetry: Telemetry | None) -> None:
    if telemetry is not None:
        telemetry.close()


def _cmd_6gen(args: argparse.Namespace) -> int:
    out = _Output(args)
    seeds = read_hitlist_ints(args.seeds)
    if not seeds:
        out.error("no seeds in input")
        return 1
    telemetry = _open_telemetry(
        args, "6gen",
        {
            "budget": args.budget,
            "tight": args.tight,
            "ledger": args.ledger,
            "seeds": len(seeds),
        },
    )
    try:
        result = run_6gen(
            seeds,
            args.budget,
            loose=not args.tight,
            ledger=args.ledger,
            rng_seed=args.rng_seed,
            telemetry=telemetry,
        )
        count = write_hitlist(
            args.output,
            result.iter_targets(),
            header=f"6Gen targets: {len(seeds)} seeds, budget {args.budget}",
        )
    finally:
        _close_telemetry(telemetry)
    out.say(f"seeds: {len(seeds)}")
    out.say(f"clusters: {len(result.clusters)} "
            f"({len(result.grown_clusters())} grown, "
            f"{len(result.singleton_clusters())} singleton)")
    out.say(f"budget used: {result.budget_used}/{result.budget_limit}")
    out.say(f"targets written: {count} -> {args.output}")
    if args.ranges_output:
        from .datasets.rangelist import write_rangelist

        range_count = write_rangelist(
            args.ranges_output,
            (c.range for c in result.clusters),
            header=f"6Gen cluster ranges: {len(seeds)} seeds, budget {args.budget}",
        )
        out.say(f"cluster ranges written: {range_count} -> {args.ranges_output}")
    if args.show_clusters:
        for cluster in sorted(
            result.clusters, key=lambda c: -c.seed_count
        )[: args.show_clusters]:
            out.say(f"  {cluster}")
    out.finish(
        "6gen",
        {
            "seeds": len(seeds),
            "clusters": len(result.clusters),
            "clusters_grown": len(result.grown_clusters()),
            "budget_used": result.budget_used,
            "budget_limit": result.budget_limit,
            "iterations": result.iterations,
            "targets_written": count,
            "output": str(args.output),
        },
    )
    return 0


def _cmd_entropy_ip(args: argparse.Namespace) -> int:
    seeds = read_hitlist_ints(args.seeds)
    if not seeds:
        print("error: no seeds in input", file=sys.stderr)
        return 1
    targets = run_entropy_ip(seeds, args.budget)
    count = write_hitlist(
        args.output,
        targets,
        header=f"Entropy/IP targets: {len(seeds)} seeds, budget {args.budget}",
    )
    print(f"seeds: {len(seeds)}")
    print(f"targets written: {count} -> {args.output}")
    return 0


def _load_internet(args: argparse.Namespace):
    """World selection shared by scan/dealias/simulate/adaptive."""
    if getattr(args, "world", None):
        from .simnet.worldfile import load_world

        return load_world(args.world)
    return default_internet(scale=args.scale, rng_seed=args.world_seed)


def _cmd_scan(args: argparse.Namespace) -> int:
    out = _Output(args)
    targets = read_hitlist_ints(args.targets)
    internet = _load_internet(args)
    telemetry = _open_telemetry(
        args, "scan",
        {
            "port": args.port,
            "targets": len(targets),
            "world": getattr(args, "world", None),
            "scale": args.scale,
            "world_seed": args.world_seed,
            "retries": args.retries,
            "resume": bool(args.resume),
            "epochs": args.epochs,
            "churn_seed": args.churn_seed,
        },
    )
    if args.predictive:
        try:
            return _scan_predictive(args, out, targets, internet, telemetry)
        finally:
            _close_telemetry(telemetry)
    if args.epochs > 1 or args.hitlist:
        try:
            return _scan_epochs(args, out, targets, internet, telemetry)
        finally:
            _close_telemetry(telemetry)
    # --resume CKPT continues from (and keeps appending to) that file;
    # --checkpoint starts or continues recording without restoring.
    ckpt_path = args.resume or args.checkpoint
    resume_state = None
    checkpointer = None
    ckpt_sink = None
    if args.resume:
        import os

        from .scanner.checkpoint import load_scan_checkpoint

        if not os.path.exists(args.resume):
            out.error(f"checkpoint not found: {args.resume}")
            return 1
        resume_state = load_scan_checkpoint(args.resume)
        if resume_state is None:
            out.say(f"no scan checkpoint in {args.resume}; starting fresh")
    if ckpt_path:
        from .scanner.checkpoint import ScanCheckpointer

        ckpt_sink = JsonlSink(ckpt_path)
        checkpointer = ScanCheckpointer(
            ckpt_sink, every_batches=args.checkpoint_every
        )
    try:
        config = ScanConfig(retries=args.retries, workers=args.workers)
        scanner = Scanner(internet.truth, config=config, telemetry=telemetry)
        result = scanner.scan(
            targets, port=args.port,
            checkpoint=checkpointer, resume=resume_state,
        )
    finally:
        if ckpt_sink is not None:
            ckpt_sink.close()
        _close_telemetry(telemetry)
    out.say(f"targets: {len(targets)}")
    out.say(f"probes sent: {result.stats.probes_sent}")
    if args.retries:
        out.say(f"retransmits: {result.stats.retransmits} "
                f"(over {args.retries} retry rounds)")
    out.say(f"hits: {result.hit_count()} (rate {result.stats.hit_rate:.2%})")
    if ckpt_path:
        out.say(f"checkpoint -> {ckpt_path}")
    if args.output:
        write_hitlist(args.output, result.hits, header=f"TCP/{args.port} hits")
        out.say(f"hits written -> {args.output}")
    out.finish(
        "scan",
        {
            "targets": len(targets),
            "port": args.port,
            "probes_sent": result.stats.probes_sent,
            "blacklisted": result.stats.blacklisted,
            "dropped": result.stats.dropped,
            "retransmits": result.stats.retransmits,
            "retries": args.retries,
            "resumed": resume_state is not None,
            "hits": result.hit_count(),
            "hit_rate": round(result.stats.hit_rate, 6),
            "checkpoint": str(ckpt_path) if ckpt_path else None,
            "output": str(args.output) if args.output else None,
        },
    )
    return 0


def _scan_predictive(args, out, seeds, internet, telemetry) -> int:
    """The ``scan --predictive`` path: phased, budget-aware probing.

    The input hitlist acts as *seeds*, not literal targets: they are
    grouped by routed prefix, featurised, and a
    :class:`~repro.predictive.allocate.PredictiveAllocator` re-splits
    the total budget (``--budget`` × prefix count) across prefixes at
    every phase boundary from live hit-rate feedback.
    """
    from .campaign import Campaign, CampaignSpec
    from .predictive import PredictiveAllocator, policy_labels
    from .simnet.bgp import group_by_routed_prefix

    if args.epochs > 1 or args.hitlist:
        out.error("--predictive cannot be combined with --epochs/--hitlist")
        return 1
    groups = group_by_routed_prefix(seeds, internet.bgp)
    if not groups:
        out.error("no seeds fall inside routed space")
        return 1
    spec = CampaignSpec(
        budget=args.budget,
        port=args.port,
        scan_config=ScanConfig(retries=args.retries, workers=args.workers),
        checkpoint_every=args.checkpoint_every,
    )
    allocator = PredictiveAllocator(
        phases=args.phases,
        pilot_fraction=args.pilot_frac,
        policy_labels=policy_labels(internet),
    )
    campaign = Campaign(
        internet.truth, internet.bgp, groups, spec,
        telemetry=telemetry,
        checkpoint_path=args.resume or args.checkpoint,
        allocation=allocator,
    )
    result = campaign.run(resume=bool(args.resume))
    out.say(f"seeds: {len(seeds)} across {len(groups)} routed prefixes")
    out.say(f"budget: {spec.budget}/prefix "
            f"({spec.budget * len(campaign.progress)} total), "
            f"{args.phases} phases (pilot {args.pilot_frac:.0%})")
    out.say(f"probes sent: {result.probes_sent}")
    out.say(f"hits: {len(result.raw_hits)} raw, "
            f"{len(result.clean_hits)} dealiased")
    if args.output:
        write_hitlist(
            args.output, sorted(result.clean_hits),
            header=f"TCP/{args.port} predictive-scan hits",
        )
        out.say(f"hits written -> {args.output}")
    out.finish(
        "scan",
        {
            "seeds": len(seeds),
            "prefixes": len(groups),
            "port": args.port,
            "budget_per_prefix": spec.budget,
            "phases": args.phases,
            "pilot_frac": args.pilot_frac,
            "probes_sent": result.probes_sent,
            "hits": len(result.raw_hits),
            "clean_hits": len(result.clean_hits),
            "allocations": {
                str(prefix): state.allocated
                for prefix, state in sorted(
                    campaign.progress.items(), key=lambda kv: str(kv[0])
                )
            },
            "output": str(args.output) if args.output else None,
        },
    )
    return 0


def _scan_epochs(args, out, targets, internet, telemetry) -> int:
    """The longitudinal ``scan`` path: one pass per churn epoch.

    The world advances between passes; each pass is a complete scan of
    the same target list against the epoch's state (a fresh scanner per
    epoch — the stale-world guard forbids one execution spanning an
    ``advance_to``).  With ``--hitlist`` every pass's outcome lands in
    the living-hitlist store, snapshotted at the end.
    """
    from .hitlist import LivingHitlist
    from .simnet.dynamics import DynamicWorld

    if args.resume or args.checkpoint:
        out.error(
            "--epochs/--hitlist cannot be combined with "
            "--checkpoint/--resume: a checkpoint is only valid within "
            "one world epoch"
        )
        return 1
    dynamic = DynamicWorld(
        internet, churn_seed=args.churn_seed, telemetry=telemetry
    )
    store = None
    if args.hitlist:
        store = LivingHitlist.open(args.hitlist, telemetry=telemetry)
        if store.latest_epoch >= 0:
            out.say(
                f"hitlist store {args.hitlist}: {len(store)} entries "
                f"through epoch {store.latest_epoch}"
            )
    config = ScanConfig(retries=args.retries, workers=args.workers)
    start = store.latest_epoch + 1 if store is not None else 0
    epochs = []
    hits: set[int] = set()
    try:
        for epoch in range(start, start + args.epochs):
            dynamic.advance_to(epoch)
            scanner = Scanner(
                internet.truth, config=config, telemetry=telemetry
            )
            result = scanner.scan(targets, port=args.port)
            hits = result.hits
            row = {
                "epoch": epoch,
                "probes_sent": result.stats.probes_sent,
                "hits": result.hit_count(),
            }
            if store is not None:
                observed = store.observe(epoch, targets, result.hits)
                row["misses"] = observed["misses"]
                row["new_entries"] = observed["new"]
                row["store_entries"] = len(store)
            epochs.append(row)
            out.say(
                f"epoch {epoch}: {result.stats.probes_sent} probes, "
                f"{result.hit_count()} hits"
                + (f", store {len(store)} entries" if store else "")
            )
        if store is not None:
            store.snapshot()
            out.say(f"hitlist store -> {args.hitlist}")
    finally:
        if store is not None:
            store.close()
    if args.output:
        write_hitlist(
            args.output, sorted(hits),
            header=f"TCP/{args.port} hits (final epoch)",
        )
        out.say(f"final-epoch hits written -> {args.output}")
    out.finish(
        "scan",
        {
            "targets": len(targets),
            "port": args.port,
            "epochs": epochs,
            "churn_seed": args.churn_seed,
            "hitlist": str(args.hitlist) if args.hitlist else None,
            "output": str(args.output) if args.output else None,
        },
    )
    return 0


def _cmd_hitlist(args: argparse.Namespace) -> int:
    """Inspect or export a living-hitlist store."""
    import os

    from .hitlist import LivingHitlist
    from .ipv6.addrplane import unpack

    out = _Output(args)
    if not os.path.exists(args.store):
        out.error(f"no hitlist store: {args.store}")
        return 1
    store = LivingHitlist.open(args.store)
    store.close()  # inspection never appends events
    epoch = args.epoch if args.epoch is not None else store.latest_epoch
    summary = store.summary(epoch)
    out.say(f"store: {args.store}")
    out.say(f"entries: {summary['entries']} "
            f"({summary['responders']} ever responded)")
    out.say(f"as of epoch {summary['epoch']}: "
            f"{summary['believed_live']} believed live, "
            f"{summary['due_for_reprobe']} due for re-probe")
    out.say(f"mean decayed score (responders): {summary['mean_score']:.3f}")
    exported = None
    if args.export:
        addresses = unpack(*store.believed_live(epoch))
        exported = write_hitlist(
            args.export, addresses,
            header=f"believed-live addresses as of epoch {epoch}",
        )
        out.say(f"believed-live addresses written: {exported} -> {args.export}")
    out.finish(
        "hitlist",
        {
            **summary,
            "store": str(args.store),
            "exported": exported,
            "export": str(args.export) if args.export else None,
        },
    )
    return 0


def _cmd_dealias(args: argparse.Namespace) -> int:
    out = _Output(args)
    hits = read_hitlist_ints(args.hits)
    internet = _load_internet(args)
    telemetry = _open_telemetry(
        args, "dealias",
        {
            "port": args.port,
            "hits": len(hits),
            "world": getattr(args, "world", None),
            "scale": args.scale,
            "world_seed": args.world_seed,
        },
    )
    try:
        scanner = Scanner(internet.truth, telemetry=telemetry)
        report = dealias(
            hits, scanner, internet.bgp, port=args.port, telemetry=telemetry
        )
    finally:
        _close_telemetry(telemetry)
    out.say(f"hits in: {len(hits)}")
    out.say(f"aliased /96 prefixes: {len(report.aliased_prefixes)}")
    out.say(f"aliased ASNs: {sorted(report.aliased_asns) or '(none)'}")
    out.say(f"aliased hits: {len(report.aliased_hits)} "
            f"({report.aliased_fraction():.1%})")
    out.say(f"clean hits: {len(report.clean_hits)}")
    if args.output:
        write_hitlist(args.output, report.clean_hits, header="dealiased hits")
        out.say(f"clean hits written -> {args.output}")
    out.finish(
        "dealias",
        {
            "hits_in": len(hits),
            "aliased_prefixes": len(report.aliased_prefixes),
            "aliased_asns": sorted(report.aliased_asns),
            "aliased_hits": len(report.aliased_hits),
            "aliased_fraction": round(report.aliased_fraction(), 6),
            "clean_hits": len(report.clean_hits),
            "output": str(args.output) if args.output else None,
        },
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    internet = _load_internet(args)
    seeds = collect_seeds(internet, rng_seed=args.dns_seed)
    print(f"routed prefixes: {len(internet.bgp)}")
    print(f"ASes: {len(internet.registry)}")
    print(f"active hosts (TCP/80): {internet.truth.host_count(80)}")
    print(f"aliased regions: {len(internet.truth.aliased)}")
    print(f"seed records: {len(seeds)} (unique addresses: "
          f"{len(seeds.addresses())})")
    if args.output:
        write_hitlist(args.output, seeds.addresses(), header="simulated FDNS seeds")
        print(f"seed addresses written -> {args.output}")
    if args.save_world:
        from .simnet.worldfile import save_internet

        save_internet(args.save_world, internet)
        print(f"world file written -> {args.save_world}")
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    """Run N tenant campaigns through the multi-tenant scheduler."""
    from .campaign import CampaignSpec
    from .service import CampaignService, TenantPolicy
    from .simnet.bgp import group_by_routed_prefix

    out = _Output(args)
    if args.tenants < 1:
        out.error("--tenants must be >= 1")
        return 1
    internet = _load_internet(args)
    seeds = collect_seeds(internet, rng_seed=args.dns_seed)
    groups = group_by_routed_prefix(seeds.addresses(), internet.bgp)
    telemetry = _open_telemetry(
        args, "service",
        {
            "tenants": args.tenants,
            "budget": args.budget,
            "probe_budget": args.probe_budget,
            "port": args.port,
            "retries": args.retries,
            "scale": args.scale,
            "world_seed": args.world_seed,
            "epochs": args.epochs,
            "churn_seed": args.churn_seed,
        },
    )
    spec = CampaignSpec(
        budget=args.budget, port=args.port,
        scan_config=ScanConfig(retries=args.retries),
    )
    dynamic = None
    if args.epochs > 1:
        from .simnet.dynamics import DynamicWorld

        dynamic = DynamicWorld(
            internet, churn_seed=args.churn_seed, telemetry=telemetry
        )
    try:
        service = CampaignService(
            internet.truth, internet.bgp, telemetry=telemetry
        )
        for i in range(args.tenants):
            service.register_tenant(
                f"tenant-{i + 1}",
                TenantPolicy(
                    probe_budget=args.probe_budget, quantum=args.quantum
                ),
            )
        turns = 0
        summaries = []
        # Each epoch is a full submit-and-drain cycle: executions may
        # not span an advance_to (the stale-world guard would trip), so
        # the scheduler runs every campaign to completion before the
        # world moves on.
        for epoch in range(args.epochs):
            if dynamic is not None:
                dynamic.advance_to(epoch)
            jobs = []
            for i in range(args.tenants):
                tenant = f"tenant-{i + 1}"
                name = (
                    f"{tenant}-epoch-{epoch}" if args.epochs > 1 else tenant
                )
                jobs.append(service.submit(tenant, groups, spec, name=name))
            out.say(
                (f"epoch {epoch}: " if args.epochs > 1 else "")
                + f"submitted {len(jobs)} campaigns "
                  f"(budget {args.budget}/prefix each)"
            )
            while service.step():
                turns += 1
                if args.progress_every and turns % args.progress_every == 0:
                    for job_id in jobs:
                        p = service.progress(job_id)
                        if p["state"] in ("running", "queued"):
                            out.say(
                                f"  [{p['tenant']}] {p['state']}: "
                                f"{p.get('probes_sent', 0)} probes, "
                                f"{p.get('hits', 0)} hits"
                            )
            for job_id in jobs:
                p = service.progress(job_id)
                p["epoch"] = epoch
                line = (f"{p['tenant']}: {p['state']}, "
                        f"{p.get('probes_sent', 0)} probes, "
                        f"{p.get('hits', 0)} hits")
                if args.epochs > 1:
                    line = f"epoch {epoch} {line}"
                if p["state"] == "failed":
                    line += f" ({p.get('error')})"
                out.say(line)
                summaries.append(p)
    finally:
        _close_telemetry(telemetry)
    out.finish(
        "service",
        {
            "tenants": args.tenants,
            "epochs": args.epochs,
            "turns": turns,
            "jobs": summaries,
        },
    )
    return 0 if all(s["state"] != "failed" for s in summaries) else 1


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from .core.feedback import run_adaptive

    seeds = read_hitlist_ints(args.seeds)
    if not seeds:
        print("error: no seeds in input", file=sys.stderr)
        return 1
    internet = _load_internet(args)
    telemetry = _open_telemetry(
        args, "adaptive",
        {
            "budget": args.budget,
            "rounds": args.rounds,
            "port": args.port,
            "seeds": len(seeds),
        },
    )
    try:
        scanner = Scanner(internet.truth, telemetry=telemetry)
        result = run_adaptive(
            seeds, scanner, args.budget, rounds=args.rounds, port=args.port
        )
    finally:
        _close_telemetry(telemetry)
    print(f"seeds: {len(seeds)}")
    print(f"probes used: {result.probes_used}/{args.budget}")
    print(f"hits: {len(result.hits)} (rate {result.hit_rate:.2%})")
    print(f"rounds run: {result.rounds_run}")
    for status in ("completed", "early-terminated", "alias-halted",
                   "budget-exhausted"):
        count = len(result.regions_with_status(status))
        if count:
            print(f"  regions {status}: {count}")
    if args.output:
        write_hitlist(args.output, result.hits, header="adaptive scan hits")
        print(f"hits written -> {args.output}")
    return 0


_EXPERIMENTS = {
    "fig2": lambda a: ex.format_fig2(ex.fig2_runtime()),
    "fig3": lambda a: ex.format_fig3(ex.fig3_asn_cdf(budget=a.budget)),
    "table1": lambda a: ex.format_table1(ex.table1_top_ases(budget=a.budget)),
    "tight-vs-loose": lambda a: ex.format_tight_vs_loose(
        ex.tight_vs_loose(budget=a.budget)
    ),
    "fig4": lambda a: ex.format_fig4(ex.fig4_budget_sweep()),
    "fig5": lambda a: ex.format_fig5(ex.fig5_cluster_census(budget=a.budget)),
    "fig6": lambda a: ex.format_fig6(ex.fig6_dynamic_nybbles(budget=a.budget)),
    "fig7": lambda a: ex.format_fig7(ex.fig7_hits_by_seeds(budget=a.budget)),
    "table2": lambda a: ex.format_table2(ex.table2_downsampling(budget=a.budget)),
    "ns-seeds": lambda a: ex.format_ns_experiment(
        ex.ns_seed_experiment(budget=a.budget)
    ),
    "aliasing": lambda a: ex.format_aliasing_census(
        ex.aliasing_census(budget=a.budget)
    ),
    "churn": lambda a: ex.format_churn(ex.churn_analysis(budget=a.budget)),
    "fig8": lambda a: ex.format_fig8(
        ex.fig8_traintest(dataset_size=a.dataset_size)
    ),
    "fig9": lambda a: ex.format_fig9(
        ex.fig9_cdn_scan(dataset_size=a.dataset_size)
    ),
    "cross-protocol": lambda a: _ext().format_cross_protocol(
        _ext().cross_protocol_experiment(budget=a.budget)
    ),
    "prefilter": lambda a: _ext().format_prefilter(
        _ext().seed_prefilter_experiment(budget=a.budget)
    ),
    "allocation": lambda a: _ext().format_allocation(
        _ext().budget_allocation_experiment(budget_per_prefix=a.budget // 4)
    ),
    "adaptive": lambda a: _ext().format_adaptive_comparison(
        _ext().adaptive_vs_classic_experiment()
    ),
    "seed-types": lambda a: _ext().format_seed_types(
        _ext().seed_type_experiment(budget=a.budget)
    ),
    "probe-types": lambda a: _ext().format_probe_types(
        _ext().probe_type_experiment(budget=a.budget)
    ),
    "predictive": lambda a: _ext().format_predictive(
        _ext().predictive_allocation_experiment(budget_per_prefix=a.budget // 4)
    ),
}


def _ext():
    from .analysis import extensions

    return extensions


def _cmd_validate(args: argparse.Namespace) -> int:
    """Validate a world file's specs without building the world."""
    import json

    from .simnet.validate import errors, validate_specs
    from .simnet.worldfile import WorldFileError, spec_from_dict

    try:
        with open(args.world, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        specs = [spec_from_dict(d) for d in document.get("specs", [])]
    except (OSError, json.JSONDecodeError, WorldFileError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    problems = validate_specs(specs)
    for problem in problems:
        print(problem)
    hard = errors(problems)
    print(
        f"{len(specs)} specs: {len(hard)} error(s), "
        f"{len(problems) - len(hard)} warning(s)"
    )
    return 1 if hard else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Run every TGA on a seed hitlist and scan their targets."""
    from .baselines.lowbyte import run_lowbyte
    from .baselines.mra import run_mra
    from .baselines.random_gen import run_random
    from .baselines.ullrich import run_ullrich
    from .entropyip.budgeted import run_budget_aware_entropy_ip

    seeds = read_hitlist_ints(args.seeds)
    if not seeds:
        print("error: no seeds in input", file=sys.stderr)
        return 1
    internet = _load_internet(args)
    seed_set = set(seeds)
    algorithms = [
        ("6Gen", lambda: run_6gen(seeds, args.budget).new_targets(seeds)),
        ("Entropy/IP", lambda: run_entropy_ip(seeds, args.budget) - seed_set),
        (
            "E/IP+budget",
            lambda: run_budget_aware_entropy_ip(seeds, args.budget) - seed_set,
        ),
        ("Ullrich", lambda: run_ullrich(seeds, args.budget) - seed_set),
        ("MRA", lambda: run_mra(seeds, args.budget)),
        ("RFC7707", lambda: run_lowbyte(seeds, args.budget)),
        ("random", lambda: run_random(seeds, args.budget)),
    ]
    print(f"seeds: {len(seeds)}; budget: {args.budget}; port: {args.port}\n")
    print(f"{'algorithm':<14} {'targets':>9} {'hits':>7} {'hit rate':>9}")
    for name, generate in algorithms:
        targets = generate()
        scanner = Scanner(internet.truth)
        result = scanner.scan(targets, port=args.port)
        print(
            f"{name:<14} {len(targets):>9} {result.hit_count():>7} "
            f"{result.stats.hit_rate:>9.2%}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if str(args.output).endswith(".jsonl") or args.against:
        return _cmd_report_telemetry(args)
    from .analysis.experiments import run_full_scan, standard_context
    from .analysis.report import scan_report

    context = standard_context(args.scale)
    outcome = run_full_scan(
        context, args.budget, gen_workers=getattr(args, "gen_workers", None)
    )
    text = scan_report(
        outcome,
        title=f"IPv6 scan report (scale {args.scale}, budget {args.budget}/prefix)",
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"report written -> {args.output}")
    print(f"raw hits: {len(outcome.raw_hits)}, "
          f"dealiased: {len(outcome.clean_hits)}")
    return 0


def _cmd_report_telemetry(args: argparse.Namespace) -> int:
    """Summarise a telemetry JSONL run (or diff it against another)."""
    from .telemetry.report import load_run, render_delta, render_summary

    try:
        run = load_run(args.output)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.against:
        try:
            baseline = load_run(args.against)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(render_delta(run, baseline))
    else:
        print(render_summary(run))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        names = list(_EXPERIMENTS)
    else:
        names = [args.name]
    for name in names:
        print(f"=== {name} ===")
        print(_EXPERIMENTS[name](args))
        print()
    return 0


def add_output_options(parser: argparse.ArgumentParser) -> None:
    """``--quiet`` / ``--json`` shared by scan / 6gen / dealias."""
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress human-readable output",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON summary line instead",
    )


def add_telemetry_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", metavar="FILE",
        help="append telemetry events (manifest, spans, metrics) to this "
             "JSONL file; summarise later with `repro6 report FILE`",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro6",
        description=(
            "6Gen IPv6 target generation (IMC 2017 reproduction): "
            "TGAs, a simulated Internet, and the paper's experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("6gen", help="run 6Gen on a seed hitlist")
    p.add_argument("seeds", help="input hitlist (one IPv6 address per line)")
    p.add_argument("output", help="output target hitlist")
    p.add_argument("--budget", type=int, default=10_000, help="probe budget")
    p.add_argument("--tight", action="store_true", help="use tight ranges (§5.3)")
    p.add_argument(
        "--ledger",
        choices=("exact", "range-sum"),
        default="exact",
        help="budget accounting mode",
    )
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument(
        "--show-clusters", type=int, default=0, metavar="N",
        help="print the N largest clusters",
    )
    p.add_argument(
        "--ranges-output", metavar="FILE",
        help="also write the cluster ranges as a compact range list",
    )
    add_output_options(p)
    add_telemetry_option(p)
    p.set_defaults(func=_cmd_6gen)

    p = sub.add_parser("entropy-ip", help="run Entropy/IP on a seed hitlist")
    p.add_argument("seeds")
    p.add_argument("output")
    p.add_argument("--budget", type=int, default=10_000)
    p.set_defaults(func=_cmd_entropy_ip)

    def add_world_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--world", metavar="FILE",
            help="load the simulated Internet from a world file",
        )
        parser.add_argument("--scale", type=float, default=0.3)
        parser.add_argument("--world-seed", type=int, default=42)

    p = sub.add_parser("scan", help="scan targets against the simulated Internet")
    p.add_argument("targets")
    p.add_argument("--output", help="write hits to this hitlist")
    p.add_argument("--port", type=int, default=80)
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-probe non-responders for up to N extra rounds "
             "(0 = single pass; retransmissions are counted separately "
             "from the probe budget)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="shard the scan across this many worker processes",
    )
    p.add_argument(
        "--checkpoint", metavar="FILE",
        help="append crash-safe scan checkpoints to this JSONL file",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="BATCHES",
        help="checkpoint cadence in merged batches (default: 16)",
    )
    p.add_argument(
        "--resume", metavar="CKPT",
        help="resume an interrupted scan from this checkpoint file "
             "(same targets/port/retries required; continues appending "
             "to the same file)",
    )
    p.add_argument(
        "--epochs", type=int, default=1, metavar="N",
        help="scan the targets once per churn epoch, advancing the "
             "world between passes (default: 1 = static world)",
    )
    p.add_argument(
        "--churn-seed", type=int, default=0,
        help="PRF seed of the churn model (with --epochs)",
    )
    p.add_argument(
        "--hitlist", metavar="STORE",
        help="feed every pass into this living-hitlist store (JSONL; "
             "created if missing, continued from its last epoch "
             "otherwise)",
    )
    p.add_argument(
        "--predictive", action="store_true",
        help="treat the input as *seeds* and run a phased, predictive "
             "campaign: group by routed prefix, 6Gen each phase's "
             "slice, and re-split the budget across prefixes from "
             "live hit-rate feedback",
    )
    p.add_argument(
        "--budget", type=int, default=10_000,
        help="per-prefix probe budget for --predictive (default: 10000)",
    )
    p.add_argument(
        "--phases", type=int, default=3,
        help="plan->scan phases for --predictive (default: 3)",
    )
    p.add_argument(
        "--pilot-frac", type=float, default=0.25, metavar="F",
        help="budget fraction spent on the uniform pilot phase "
             "(default: 0.25)",
    )
    add_world_options(p)
    add_output_options(p)
    add_telemetry_option(p)
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser(
        "hitlist", help="inspect or export a living-hitlist store"
    )
    p.add_argument("store", help="living-hitlist JSONL store")
    p.add_argument(
        "--epoch", type=int, default=None, metavar="N",
        help="evaluate belief as of this epoch (default: the store's "
             "latest observed epoch)",
    )
    p.add_argument(
        "--export", metavar="FILE",
        help="write the believed-live addresses as a hitlist file",
    )
    add_output_options(p)
    p.set_defaults(func=_cmd_hitlist)

    p = sub.add_parser("dealias", help="run §6.2 dealiasing on a hit list")
    p.add_argument("hits")
    p.add_argument("--output", help="write clean hits to this hitlist")
    p.add_argument("--port", type=int, default=80)
    add_world_options(p)
    add_output_options(p)
    add_telemetry_option(p)
    p.set_defaults(func=_cmd_dealias)

    p = sub.add_parser("simulate", help="build the simulated Internet")
    p.add_argument("--output", help="write seed addresses to this hitlist")
    p.add_argument(
        "--save-world", metavar="FILE",
        help="write a world file reproducing this exact Internet",
    )
    add_world_options(p)
    p.add_argument("--dns-seed", type=int, default=7)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "service",
        help="run many tenant campaigns through the multi-tenant scheduler",
    )
    p.add_argument(
        "--tenants", type=int, default=2, metavar="N",
        help="number of tenants, one campaign each (default: 2)",
    )
    p.add_argument(
        "--budget", type=int, default=2_000,
        help="per-prefix probe budget for each campaign",
    )
    p.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="per-tenant total probe budget (default: unlimited); "
             "exhausted tenants are interrupted with partial results",
    )
    p.add_argument("--port", type=int, default=80)
    p.add_argument("--retries", type=int, default=0)
    p.add_argument(
        "--quantum", type=int, default=4, metavar="BATCHES",
        help="probe batches per tenant per scheduler turn (default: 4)",
    )
    p.add_argument(
        "--progress-every", type=int, default=0, metavar="TURNS",
        help="print live per-tenant progress every N scheduler turns",
    )
    p.add_argument(
        "--epochs", type=int, default=1, metavar="N",
        help="repeat the full submit-and-drain cycle once per churn "
             "epoch, advancing the world between cycles (default: 1)",
    )
    p.add_argument(
        "--churn-seed", type=int, default=0,
        help="PRF seed of the churn model (with --epochs)",
    )
    p.add_argument("--dns-seed", type=int, default=7)
    add_world_options(p)
    add_output_options(p)
    add_telemetry_option(p)
    p.set_defaults(func=_cmd_service)

    p = sub.add_parser(
        "adaptive", help="scanner-integrated adaptive scan (§8 feedback loop)"
    )
    p.add_argument("seeds", help="input hitlist of known addresses")
    p.add_argument("--output", help="write hits to this hitlist")
    p.add_argument("--budget", type=int, default=10_000)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--port", type=int, default=80)
    add_world_options(p)
    add_telemetry_option(p)
    p.set_defaults(func=_cmd_adaptive)

    p = sub.add_parser("validate", help="validate a world file's network specs")
    p.add_argument("world", help="world file to check")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "compare", help="run every TGA on a seed hitlist and scan their targets"
    )
    p.add_argument("seeds", help="input hitlist of known addresses")
    p.add_argument("--budget", type=int, default=10_000)
    p.add_argument("--port", type=int, default=80)
    add_world_options(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "report",
        help="write the full §6 markdown report, or summarise a telemetry "
             "run (`report RUN.jsonl`, optionally `--against BASELINE.jsonl`)",
    )
    p.add_argument(
        "output",
        help="markdown file to write, or a telemetry .jsonl file to summarise",
    )
    p.add_argument(
        "--against", metavar="FILE",
        help="second telemetry .jsonl: render a delta view instead",
    )
    p.add_argument("--budget", type=int, default=5_000)
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument(
        "--gen-workers", type=int, default=None, metavar="N",
        help="shard per-prefix 6Gen generation across N processes "
             "(identical output; default: serial)",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", choices=sorted(_EXPERIMENTS) + ["all"])
    p.add_argument("--budget", type=int, default=ex.DEFAULT_BUDGET)
    p.add_argument("--dataset-size", type=int, default=3_000,
                   help="CDN dataset size for fig8/fig9")
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
