"""repro — reproduction of "Target Generation for Internet-wide IPv6
Scanning" (Murdock et al., IMC 2017).

The package provides:

* :mod:`repro.ipv6` — IPv6 address/range/trie primitives;
* :mod:`repro.core` — the 6Gen target generation algorithm;
* :mod:`repro.entropyip` — the Entropy/IP comparison TGA;
* :mod:`repro.baselines` — Ullrich recursive, RFC 7707, random;
* :mod:`repro.simnet` — a simulated IPv6 Internet (ground truth,
  BGP table, DNS seed snapshot, aliased regions);
* :mod:`repro.scanner` — a ZMap-like probe engine and the §6.2
  dealiasing pipeline;
* :mod:`repro.analysis` — the per-figure/table experiment harness;
* :mod:`repro.datasets` — synthetic CDN datasets and hitlist I/O;
* :mod:`repro.hitlist` — the living hitlist store and delta-campaign
  planner for longitudinal scans over a churning world.

Quickstart::

    from repro import run_6gen, IPv6Addr

    seeds = [IPv6Addr.parse(t) for t in ("2001:db8::1", "2001:db8::2")]
    result = run_6gen(seeds, budget=1000)
    for cluster in result.clusters:
        print(cluster)
"""

from .core import SixGen, SixGenConfig, SixGenResult, run_6gen
from .entropyip import fit_entropy_ip, run_entropy_ip
from .ipv6 import IPv6Addr, NybbleRange, NybbleTree, Prefix

__version__ = "1.0.0"

__all__ = [
    "IPv6Addr",
    "NybbleRange",
    "NybbleTree",
    "Prefix",
    "SixGen",
    "SixGenConfig",
    "SixGenResult",
    "fit_entropy_ip",
    "run_6gen",
    "run_entropy_ip",
    "__version__",
]
