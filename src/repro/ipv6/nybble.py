"""Nybble-level helpers for 128-bit IPv6 addresses.

The paper (§2) analyses addresses at *nybble* granularity: each IPv6
address is a sequence of 32 hexadecimal digits, each digit covering four
bits.  We index nybbles from 0 (most significant) to 31 (least
significant), matching the paper's "nybble index" (their Figure 6 uses
1-based indices; we keep 0-based internally and convert when plotting).

Throughout the code base an address is canonically an ``int`` in
``[0, 2**128)``; this module provides the conversions between that
integer form, nybble tuples, and hexadecimal digits.
"""

from __future__ import annotations

import functools
from typing import Iterable, Sequence

#: Number of nybbles in an IPv6 address.
NYBBLE_COUNT = 32

#: Number of bits per nybble.
NYBBLE_BITS = 4

#: Number of hextets (16-bit colon-separated groups) in an address.
HEXTET_COUNT = 8

#: The full 128-bit address space size.
ADDRESS_SPACE_SIZE = 1 << 128

#: Largest valid address integer.
MAX_ADDRESS = ADDRESS_SPACE_SIZE - 1

#: The hexadecimal alphabet used in text representations (lowercase).
HEX_DIGITS = "0123456789abcdef"

#: Wildcard character used in the paper's range notation (e.g. 2001:db8::?).
WILDCARD_CHAR = "?"

#: Bitmask with all 16 nybble values allowed (used by ranges).
FULL_MASK = 0xFFFF

_HEX_VALUE = {c: i for i, c in enumerate(HEX_DIGITS)}
_HEX_VALUE.update({c.upper(): i for i, c in enumerate(HEX_DIGITS) if c.isalpha()})


def nybble_shift(index: int) -> int:
    """Bit shift that brings nybble ``index`` to the least-significant slot.

    ``index`` 0 is the most significant nybble.
    """
    if not 0 <= index < NYBBLE_COUNT:
        raise IndexError(f"nybble index out of range: {index}")
    return NYBBLE_BITS * (NYBBLE_COUNT - 1 - index)


def get_nybble(value: int, index: int) -> int:
    """Return the 4-bit nybble at ``index`` of a 128-bit integer address."""
    return (value >> nybble_shift(index)) & 0xF


def set_nybble(value: int, index: int, nybble: int) -> int:
    """Return ``value`` with the nybble at ``index`` replaced by ``nybble``."""
    if not 0 <= nybble <= 0xF:
        raise ValueError(f"nybble value out of range: {nybble}")
    shift = nybble_shift(index)
    return (value & ~(0xF << shift)) | (nybble << shift)


def to_nybbles(value: int) -> tuple[int, ...]:
    """Explode a 128-bit integer into a tuple of 32 nybbles, MSB first."""
    if not 0 <= value <= MAX_ADDRESS:
        raise ValueError(f"address integer out of range: {value}")
    return tuple((value >> (NYBBLE_BITS * i)) & 0xF for i in range(NYBBLE_COUNT - 1, -1, -1))


def from_nybbles(nybbles: Sequence[int]) -> int:
    """Assemble a 128-bit integer from 32 nybbles, MSB first."""
    if len(nybbles) != NYBBLE_COUNT:
        raise ValueError(f"expected {NYBBLE_COUNT} nybbles, got {len(nybbles)}")
    value = 0
    for nyb in nybbles:
        if not 0 <= nyb <= 0xF:
            raise ValueError(f"nybble value out of range: {nyb}")
        value = (value << NYBBLE_BITS) | nyb
    return value


def hex_digit(nybble: int) -> str:
    """Lowercase hexadecimal digit for a nybble value."""
    return HEX_DIGITS[nybble]


def hex_value(digit: str) -> int:
    """Nybble value of a hexadecimal digit (either case)."""
    try:
        return _HEX_VALUE[digit]
    except KeyError:
        raise ValueError(f"not a hexadecimal digit: {digit!r}") from None


def popcount16(mask: int) -> int:
    """Number of allowed values in a 16-bit nybble mask."""
    return (mask & FULL_MASK).bit_count()


def mask_of(values: Iterable[int]) -> int:
    """Build a 16-bit mask with the given nybble values allowed."""
    mask = 0
    for v in values:
        if not 0 <= v <= 0xF:
            raise ValueError(f"nybble value out of range: {v}")
        mask |= 1 << v
    return mask


@functools.lru_cache(maxsize=None)
def mask_values(mask: int) -> tuple[int, ...]:
    """Tuple of nybble values allowed by a 16-bit mask, ascending.

    Cached: there are at most 2**16 masks and range expansion asks for
    the same handful tens of thousands of times per emission.
    """
    return tuple(v for v in range(16) if mask & (1 << v))


def mask_contains(mask: int, nybble: int) -> bool:
    """True if the nybble value is allowed by the mask."""
    return bool(mask & (1 << nybble))
