"""CIDR prefixes over the IPv6 address space.

A :class:`Prefix` is an aligned power-of-two block ``network/length``.
The BGP substrate (:mod:`repro.simnet.bgp`), the aliased-region model
(:mod:`repro.simnet.aliasing`) and the /96 dealiasing probe method
(:mod:`repro.scanner.dealias`) are all built on this type.
"""

from __future__ import annotations

import functools
import random
from typing import Iterator

from .address import AddressError, IPv6Addr, format_address_int, parse_address_int
from .nybble import MAX_ADDRESS


class PrefixError(ValueError):
    """Raised for malformed prefixes."""


@functools.total_ordering
class Prefix:
    """An IPv6 CIDR prefix (aligned block of addresses).

    The network integer must have all host bits zero; use
    :meth:`containing` to derive the prefix that covers an arbitrary
    address.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network: int, length: int):
        if not 0 <= length <= 128:
            raise PrefixError(f"prefix length out of range: {length}")
        if not 0 <= network <= MAX_ADDRESS:
            raise PrefixError(f"network integer out of range: {network}")
        if network & host_mask(length):
            raise PrefixError(
                f"network has host bits set: {format_address_int(network)}/{length}"
            )
        object.__setattr__(self, "_network", network)
        object.__setattr__(self, "_length", length)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Prefix is immutable")

    def __reduce__(self):
        # immutability guard blocks default unpickling; rebuild via ctor
        return (Prefix, (self._network, self._length))

    # -- constructors ---------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``addr/len`` CIDR text."""
        addr_text, _, len_text = text.strip().partition("/")
        if not len_text:
            raise PrefixError(f"missing '/length' in prefix: {text!r}")
        try:
            length = int(len_text)
        except ValueError:
            raise PrefixError(f"invalid prefix length: {len_text!r}") from None
        try:
            network = parse_address_int(addr_text)
        except AddressError as exc:
            raise PrefixError(str(exc)) from None
        return cls(network, length)

    @classmethod
    def containing(cls, addr: IPv6Addr | int, length: int) -> "Prefix":
        """The /length prefix that contains ``addr``."""
        value = int(addr)
        return cls(value & network_mask(length), length)

    # -- accessors -------------------------------------------------------
    @property
    def network(self) -> int:
        """The network integer (host bits all zero)."""
        return self._network

    @property
    def length(self) -> int:
        """The prefix length in bits."""
        return self._length

    @property
    def first(self) -> int:
        """Lowest address integer in the block."""
        return self._network

    @property
    def last(self) -> int:
        """Highest address integer in the block."""
        return self._network | host_mask(self._length)

    def size(self) -> int:
        """Number of addresses in the block (2**(128-length))."""
        return 1 << (128 - self._length)

    def contains(self, addr: IPv6Addr | int) -> bool:
        """True if the address lies within this block."""
        return (int(addr) & network_mask(self._length)) == self._network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is fully contained in (or equal to) this block."""
        return other._length >= self._length and self.contains(other._network)

    def supernet(self, length: int) -> "Prefix":
        """The shorter prefix of the given length containing this one."""
        if length > self._length:
            raise PrefixError(
                f"supernet length {length} longer than prefix length {self._length}"
            )
        return Prefix.containing(self._network, length)

    def subnets(self, length: int) -> Iterator["Prefix"]:
        """Iterate the sub-blocks of the given longer (or equal) length."""
        if length < self._length:
            raise PrefixError(
                f"subnet length {length} shorter than prefix length {self._length}"
            )
        step = 1 << (128 - length)
        for net in range(self._network, self.last + 1, step):
            yield Prefix(net, length)

    def random_address(self, rng: random.Random) -> IPv6Addr:
        """A uniformly random address within the block."""
        return IPv6Addr(self._network | rng.getrandbits(128 - self._length))

    def addresses(self) -> Iterator[IPv6Addr]:
        """Iterate every address in the block (guard the size first!)."""
        for value in range(self._network, self.last + 1):
            yield IPv6Addr(value)

    # -- formatting & protocol --------------------------------------------
    def __str__(self) -> str:
        return f"{format_address_int(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, Prefix):
            return (self._network, self._length) == (other._network, other._length)
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, Prefix):
            return (self._network, self._length) < (other._network, other._length)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._length))


def network_mask(length: int) -> int:
    """128-bit mask covering the top ``length`` bits."""
    if not 0 <= length <= 128:
        raise PrefixError(f"prefix length out of range: {length}")
    return MAX_ADDRESS ^ host_mask(length)


def host_mask(length: int) -> int:
    """128-bit mask covering the low ``128 - length`` bits."""
    if not 0 <= length <= 128:
        raise PrefixError(f"prefix length out of range: {length}")
    return (1 << (128 - length)) - 1
