"""Nybble-level Hamming distance (the paper's similarity metric, §5.2).

The distance between two addresses counts differing nybble positions.
The distance from an address to a *range* treats any position whose
value-set already contains the address's nybble as distance zero — so
the metric also equals the number of positions that would become newly
dynamic if the address were clustered into the range.
"""

from __future__ import annotations

from .nybble import NYBBLE_COUNT, mask_contains
from .range_ import NybbleRange


def addr_distance(a: int, b: int) -> int:
    """Nybble Hamming distance between two 128-bit address integers."""
    diff = int(a) ^ int(b)
    distance = 0
    while diff:
        if diff & 0xF:
            distance += 1
        diff >>= 4
    return distance


def bit_distance(a: int, b: int) -> int:
    """Bit-level Hamming distance (for the §5.2 granularity ablation)."""
    return (int(a) ^ int(b)).bit_count()


def range_distance(range_: NybbleRange, addr: int) -> int:
    """Nybble Hamming distance from a range to an address.

    Counts positions where the address's nybble is outside the range's
    allowed set; wildcarded positions therefore contribute zero.
    """
    value = int(addr)
    distance = 0
    masks = range_.masks
    for i in range(NYBBLE_COUNT):
        nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
        if not mask_contains(masks[i], nybble):
            distance += 1
    return distance


def range_range_distance(a: NybbleRange, b: NybbleRange) -> int:
    """Number of positions where two ranges share no common value.

    A generalisation used for overlap analysis; zero iff the ranges
    overlap.
    """
    return sum(
        1 for ma, mb in zip(a.masks, b.masks) if (ma & mb) == 0
    )
