"""IPv6 address primitives: addresses, prefixes, nybble ranges, and tries.

This subpackage is the substrate the rest of the reproduction builds on.
See the module docstrings for details; the most commonly used names are
re-exported here.
"""

from .address import AddressError, IPv6Addr, iter_hitlist, parse_hitlist_line
from .distance import addr_distance, bit_distance, range_distance
from .nybble import NYBBLE_COUNT
from .nybble_tree import NybbleTree
from .prefix import Prefix, PrefixError
from .range_ import NybbleRange, RangeError, spanning_range

__all__ = [
    "AddressError",
    "IPv6Addr",
    "NYBBLE_COUNT",
    "NybbleRange",
    "NybbleTree",
    "Prefix",
    "PrefixError",
    "RangeError",
    "addr_distance",
    "bit_distance",
    "iter_hitlist",
    "parse_hitlist_line",
    "range_distance",
    "spanning_range",
]
