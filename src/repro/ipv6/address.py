"""IPv6 address type with nybble-level accessors.

Addresses are represented by :class:`IPv6Addr`, a thin immutable wrapper
around a 128-bit integer.  Parsing and formatting implement RFC 4291
text forms and RFC 5952 canonical compression (longest run of all-zero
hextets replaced by ``::``, ties broken toward the leftmost run, runs of
a single zero hextet never compressed).

We implement parsing from scratch (rather than deferring to the stdlib
``ipaddress`` module) because the rest of the code base extends the same
grammar with the paper's wildcard notation (see :mod:`repro.ipv6.range_`);
tests cross-validate against ``ipaddress``.
"""

from __future__ import annotations

import functools
import re
from typing import Iterable, Iterator

from . import nybble as nyb
from .nybble import HEXTET_COUNT, MAX_ADDRESS


class AddressError(ValueError):
    """Raised for malformed IPv6 address text or out-of-range values."""


_HEXTET_RE = re.compile(r"^[0-9a-fA-F]{1,4}$")


def _parse_hextet(text: str) -> int:
    if not _HEXTET_RE.match(text):
        raise AddressError(f"invalid hextet: {text!r}")
    return int(text, 16)


def parse_address_int(text: str) -> int:
    """Parse IPv6 text (full or ``::``-compressed) into a 128-bit integer.

    Embedded IPv4 dotted-quad suffixes (e.g. ``::ffff:1.2.3.4``) are
    accepted, mirroring RFC 4291 §2.2 form 3.
    """
    text = text.strip()
    if not text:
        raise AddressError("empty address")
    if "%" in text:  # zone identifiers are not meaningful for scanning
        raise AddressError(f"zone identifiers not supported: {text!r}")

    # Handle an embedded IPv4 dotted quad in the final position: split it
    # off and parse the rest as a (two-groups-shorter) IPv6 head.
    v4_tail: list[int] = []
    if "." in text:
        head, sep, quad = text.rpartition(":")
        if not sep:
            raise AddressError(f"invalid IPv4-embedded address: {text!r}")
        parts = quad.split(".")
        if len(parts) != 4:
            raise AddressError(f"invalid embedded IPv4: {quad!r}")
        octets = []
        for p in parts:
            if not p.isdigit() or (len(p) > 1 and p[0] == "0") or int(p) > 255:
                raise AddressError(f"invalid embedded IPv4 octet: {p!r}")
            octets.append(int(p))
        v4_tail = [(octets[0] << 8) | octets[1], (octets[2] << 8) | octets[3]]
        # ``head`` lost the colon separating it from the quad.  If it now
        # ends with ":", that colon was the first half of a "::" — put the
        # second half back so compression parsing still sees it.
        if not head:
            raise AddressError(f"invalid IPv4-embedded address: {text!r}")
        text = head + ":" if head.endswith(":") else head

    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in address: {text!r}")

    group_target = HEXTET_COUNT - len(v4_tail)

    if "::" in text:
        left_text, right_text = text.split("::", 1)
        # Reject stray single colons at the edges, e.g. ":1::2" / "1::2:".
        if left_text.startswith(":") or right_text.endswith(":"):
            raise AddressError(f"invalid colon placement: {text!r}")
        left = [_parse_hextet(h) for h in left_text.split(":")] if left_text else []
        right = [_parse_hextet(h) for h in right_text.split(":")] if right_text else []
        fill = group_target - len(left) - len(right)
        if fill < 1:
            raise AddressError(f"'::' must replace at least one group: {text!r}")
        hextets = left + [0] * fill + right + v4_tail
    else:
        parts = text.split(":") if text else []
        hextets = [_parse_hextet(h) for h in parts] + v4_tail
        if len(hextets) != HEXTET_COUNT:
            raise AddressError(
                f"expected {HEXTET_COUNT} groups, got {len(hextets)}: {text!r}"
            )

    value = 0
    for h in hextets:
        value = (value << 16) | h
    return value


def format_address_int(value: int, compress: bool = True) -> str:
    """Format a 128-bit integer as IPv6 text.

    With ``compress=True`` produces the RFC 5952 canonical form;
    otherwise all eight hextets are printed (leading zeros still
    dropped per RFC 5952 §4.1).
    """
    if not 0 <= value <= MAX_ADDRESS:
        raise AddressError(f"address integer out of range: {value}")
    hextets = [(value >> (16 * i)) & 0xFFFF for i in range(HEXTET_COUNT - 1, -1, -1)]
    if not compress:
        return ":".join(format(h, "x") for h in hextets)

    # Locate the longest run of zero hextets (leftmost wins ties).
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, h in enumerate(hextets + [1]):  # sentinel terminates final run
        if h == 0:
            if run_len == 0:
                run_start = i
            run_len += 1
        else:
            if run_len > best_len:
                best_start, best_len = run_start, run_len
            run_len = 0
    if best_len < 2:  # RFC 5952 §4.2.2: never compress a single group
        return ":".join(format(h, "x") for h in hextets)
    left = ":".join(format(h, "x") for h in hextets[:best_start])
    right = ":".join(format(h, "x") for h in hextets[best_start + best_len:])
    return f"{left}::{right}"


@functools.total_ordering
class IPv6Addr:
    """An immutable IPv6 address with nybble-level accessors.

    Construct from an integer, text, or 32 nybbles::

        IPv6Addr(0x20010db8 << 96)
        IPv6Addr.parse("2001:db8::1")
        IPv6Addr.from_nybbles([2, 0, 0, 1, ...])

    Instances order and hash by their integer value, so they can be
    freely mixed in sets with plain ints where convenient (they are not
    equal to ints, however — comparisons with non-addresses return
    ``NotImplemented``).
    """

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise TypeError(f"IPv6Addr expects an int, got {type(value).__name__}")
        if not 0 <= value <= MAX_ADDRESS:
            raise AddressError(f"address integer out of range: {value}")
        object.__setattr__(self, "_value", value)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("IPv6Addr is immutable")

    def __reduce__(self):
        # immutability guard blocks default unpickling; rebuild via ctor
        return (IPv6Addr, (self._value,))

    # -- constructors ---------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "IPv6Addr":
        """Parse IPv6 text into an address."""
        return cls(parse_address_int(text))

    @classmethod
    def from_nybbles(cls, nybbles: Iterable[int]) -> "IPv6Addr":
        """Build an address from 32 nybble values, most significant first."""
        return cls(nyb.from_nybbles(tuple(nybbles)))

    # -- accessors -------------------------------------------------------
    @property
    def value(self) -> int:
        """The 128-bit integer value."""
        return self._value

    def nybble(self, index: int) -> int:
        """The 4-bit value of the nybble at ``index`` (0 = most significant)."""
        return nyb.get_nybble(self._value, index)

    def nybbles(self) -> tuple[int, ...]:
        """All 32 nybbles, most significant first."""
        return nyb.to_nybbles(self._value)

    def with_nybble(self, index: int, value: int) -> "IPv6Addr":
        """A copy of this address with one nybble replaced."""
        return IPv6Addr(nyb.set_nybble(self._value, index, value))

    def interface_id(self) -> int:
        """The low 64 bits (standard interface identifier, RFC 4291)."""
        return self._value & ((1 << 64) - 1)

    def network_id(self) -> int:
        """The high 64 bits (standard network identifier, RFC 4291)."""
        return self._value >> 64

    # -- formatting ------------------------------------------------------
    def compressed(self) -> str:
        """RFC 5952 canonical text form."""
        return format_address_int(self._value, compress=True)

    def exploded(self) -> str:
        """Uncompressed text form (all eight hextets)."""
        return format_address_int(self._value, compress=False)

    def full_hex(self) -> str:
        """All 32 hex digits without separators (useful for nybble work)."""
        return format(self._value, "032x")

    def __str__(self) -> str:
        return self.compressed()

    def __repr__(self) -> str:
        return f"IPv6Addr({self.compressed()!r})"

    # -- protocol --------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, IPv6Addr):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, IPv6Addr):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value


def parse_hitlist_line(line: str) -> IPv6Addr | None:
    """Parse one hitlist line; returns ``None`` for blanks and comments."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    return IPv6Addr.parse(line)


def iter_hitlist(lines: Iterable[str]) -> Iterator[IPv6Addr]:
    """Yield addresses from hitlist lines, skipping blanks and comments."""
    for line in lines:
        addr = parse_hitlist_line(line)
        if addr is not None:
            yield addr
