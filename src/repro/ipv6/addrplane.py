"""Packed array plane for 128-bit addresses: the scan path's native currency.

Python-int addresses are flexible but expensive: every batch operation
on them is a Python-level loop over boxed 128-bit integers.  This
module gives the hot paths a columnar alternative — an address batch is
a pair of ``uint64`` numpy arrays ``(hi, lo)``, where ``hi`` holds the
top 64 bits and ``lo`` the bottom 64 — plus the two lookup structures
every scan-path membership question reduces to:

:class:`FrozenKeySet`
    A frozen host set as a *sorted* array of 16-byte big-endian keys.
    Membership is one vectorised ``np.searchsorted`` (plus an equality
    check) instead of one Python set probe per address.

:class:`PrefixMaskTable`
    A frozen prefix set (blacklist entries, aliased regions) as one
    ``FrozenKeySet`` of masked networks per prefix length.  A batch
    lookup is "mask the columns, search the table" per length —
    vectorised prefix-mask compares instead of per-address dict walks.

The 16-byte key encoding (:func:`fuse`) views the two big-endian
``uint64`` columns as numpy ``S16`` byte strings: byte-wise
lexicographic comparison of big-endian fixed-width integers equals
numeric comparison, so sorting / searching the keys is sorting /
searching the 128-bit values.  (numpy compares ``S`` dtypes ignoring
trailing NUL bytes; with a *fixed* 16-byte width two distinct values
can never collide, because equal-after-stripping would require the
same byte prefix with different trailing-NUL counts — impossible at
equal total width.)

Everything here is shape-preserving and allocation-light on purpose:
these arrays travel through :mod:`multiprocessing.shared_memory`
segments into scan workers (see :mod:`repro.scanner.shm`), so lookup
tables are plain contiguous ndarrays with no Python object graphs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .address import IPv6Addr

_M64 = (1 << 64) - 1

#: Number of bits in one column.
COLUMN_BITS = 64


def _mix64_np(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over uint64 (wrapping arithmetic)."""
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


_HASH_SALT = np.uint64(0x9E3779B97F4A7C15)


def hash_columns(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """64-bit mixed hash of address columns (membership acceleration).

    One hash per address, chaining both halves through splitmix64.
    :meth:`FrozenKeySet.member` sorts its entries by this hash and
    binary-searches uint64 hashes instead of ``S16`` byte strings —
    roughly twice as fast per probe — then confirms candidates by
    comparing the actual columns, so lookups stay exact.
    """
    return _mix64_np(hi ^ _mix64_np(lo ^ _HASH_SALT))


# -- packing ----------------------------------------------------------------
def split_int(addr: int) -> tuple[int, int]:
    """One 128-bit integer -> its ``(hi, lo)`` 64-bit halves."""
    value = int(addr)
    return value >> 64, value & _M64


def join_int(hi: int, lo: int) -> int:
    """Inverse of :func:`split_int`."""
    return (int(hi) << 64) | int(lo)


def pack(addrs: Sequence[int] | Iterable[int]) -> tuple[np.ndarray, np.ndarray]:
    """Pack addresses (ints or :class:`IPv6Addr`) into hi/lo columns.

    Accepts anything indexable/iterable whose elements coerce via
    ``int()``; already-int inputs (the scan path's deduplicated target
    lists) take the fast path with no per-element method calls beyond
    the two shifts.
    """
    if not isinstance(addrs, (list, tuple)):
        addrs = [int(a) for a in addrs]
    n = len(addrs)
    if n and not isinstance(addrs[0], int):
        addrs = [int(a) for a in addrs]
    hi = np.fromiter((a >> 64 for a in addrs), dtype=np.uint64, count=n)
    lo = np.fromiter((a & _M64 for a in addrs), dtype=np.uint64, count=n)
    return hi, lo


def unpack(hi: np.ndarray, lo: np.ndarray) -> list[int]:
    """Inverse of :func:`pack`: hi/lo columns -> Python-int addresses.

    ``tolist()`` converts each column to Python ints in one C-level
    pass; the join is then plain int arithmetic.
    """
    return [(h << 64) | l for h, l in zip(hi.tolist(), lo.tolist())]


def pack_addrs(addrs: Iterable["IPv6Addr"]) -> tuple[np.ndarray, np.ndarray]:
    """Pack :class:`IPv6Addr` instances (alias of :func:`pack`)."""
    return pack([int(a) for a in addrs])


def unpack_addrs(hi: np.ndarray, lo: np.ndarray) -> "list[IPv6Addr]":
    """Hi/lo columns -> :class:`IPv6Addr` instances."""
    from .address import IPv6Addr

    return [IPv6Addr(v) for v in unpack(hi, lo)]


# -- fused 128-bit keys -----------------------------------------------------
def fuse(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Hi/lo columns -> ``S16`` big-endian keys (order-preserving)."""
    buf = np.empty((len(hi), 2), dtype=">u8")
    buf[:, 0] = hi
    buf[:, 1] = lo
    return buf.view("S16").ravel()


def fuse_ints(addrs: Iterable[int]) -> np.ndarray:
    """Python-int addresses -> sorted-comparable ``S16`` keys."""
    return fuse(*pack(list(addrs)))


# -- column-level set operations --------------------------------------------
def is_columns(obj) -> bool:
    """True if ``obj`` is a packed ``(hi, lo)`` column pair.

    The target-source detection used by the scan/generation handoff:
    a 2-tuple of equal-length 1-D uint64 arrays.
    """
    return (
        isinstance(obj, tuple)
        and len(obj) == 2
        and isinstance(obj[0], np.ndarray)
        and isinstance(obj[1], np.ndarray)
        and obj[0].dtype == np.uint64
        and obj[1].dtype == np.uint64
        and obj[0].ndim == 1
        and obj[0].shape == obj[1].shape
    )


def concat_columns(
    chunks: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate column chunks into one ``(hi, lo)`` pair."""
    parts = [c for c in chunks if len(c[0])]
    if not parts:
        empty = np.empty(0, dtype=np.uint64)
        return empty, empty
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([c[0] for c in parts]),
        np.concatenate([c[1] for c in parts]),
    )


def dedupe_columns(
    hi: np.ndarray, lo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """First-seen dedupe of address columns, order-preserving.

    ``np.unique`` over the fused keys yields the first-occurrence index
    of every distinct address; sorting those indices reconstructs the
    insertion order — the exact sequence ``dict.fromkeys`` produces on
    the unpacked list, without boxing a single int.
    """
    if not len(hi):
        return hi, lo
    first = _first_occurrence(hi, lo)[2]
    if len(first) == len(hi):
        return hi, lo
    first.sort()
    return hi[first], lo[first]


def _first_occurrence(
    hi: np.ndarray, lo: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct addresses in ascending order plus first-seen indices.

    Returns ``(sorted_hi, sorted_lo, first)`` where ``first`` holds the
    input index of each distinct address's first occurrence, aligned
    with the sorted columns.  A numeric ``lexsort`` over the uint64
    halves replaces ``np.unique`` on fused S16 keys — integer compares
    beat 16-byte memcmps by a wide margin, and lexsort's stability is
    what makes ``first`` the *first* occurrence.
    """
    if len(hi) > 1:
        ascending = bool(
            ((hi[1:] > hi[:-1]) | ((hi[1:] == hi[:-1]) & (lo[1:] > lo[:-1]))).all()
        )
    else:
        ascending = True
    if ascending:
        # Already strictly ascending (the common case: one range
        # expands in address order) — nothing to sort or dedupe.
        return hi, lo, np.arange(len(hi))
    order = np.lexsort((lo, hi))
    shi, slo = hi[order], lo[order]
    dup = (shi[1:] == shi[:-1]) & (slo[1:] == slo[:-1])
    keep = np.concatenate(([True], ~dup))
    return shi[keep], slo[keep], order[keep]


class ColumnDeduper:
    """Streaming first-seen dedupe across column chunks.

    Feed chunks through :meth:`add`; each call returns the chunk's
    fresh addresses (never seen in any earlier chunk or earlier in this
    one) in their first-seen order.  Concatenating the outputs equals
    ``dict.fromkeys`` over the concatenated unpacked input — the
    invariant that lets generation stream columns prefix-to-prefix into
    the scanner without materialising a global boxed list.

    Seen keys live in a small stack of sorted runs merged geometrically
    (each run at least double the one above it), so ``n`` addresses
    arriving in many small chunks cost O(n log² n) total instead of the
    O(n²) a single re-inserted sorted array would — the difference is
    decisive when a prefix emits one chunk per cluster.
    """

    __slots__ = ("_runs",)

    def __init__(self) -> None:
        self._runs: list[np.ndarray] = []

    def __len__(self) -> int:
        """Number of distinct addresses seen so far."""
        return sum(len(run) for run in self._runs)

    def add(
        self, hi: np.ndarray, lo: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if not len(hi):
            return hi, lo
        shi, slo, first = _first_occurrence(hi, lo)
        uniq = fuse(shi, slo)
        for run in self._runs:
            if not len(uniq):
                break
            pos = np.searchsorted(run, uniq)
            pos[pos == len(run)] = 0
            fresh = run[pos] != uniq
            uniq, first = uniq[fresh], first[fresh]
        if not len(uniq):
            return hi[:0], lo[:0]
        self._runs.append(uniq)
        while (
            len(self._runs) > 1
            and len(self._runs[-2]) < 2 * len(self._runs[-1])
        ):
            top = self._runs.pop()
            base = self._runs.pop()
            # Both runs are sorted and disjoint: one searchsorted plus
            # two scatter copies beats re-sorting S16 keys by a wide
            # margin (and ``np.insert``'s per-call overhead).
            idx = np.searchsorted(base, top) + np.arange(len(top))
            merged = np.empty(len(base) + len(top), dtype=base.dtype)
            at_top = np.zeros(len(merged), dtype=bool)
            at_top[idx] = True
            merged[idx] = top
            merged[~at_top] = base
            self._runs.append(merged)
        first.sort()
        return hi[first], lo[first]


# -- frozen lookup tables ---------------------------------------------------
class FrozenKeySet:
    """An immutable address set with vectorised membership tests.

    Holds the member addresses as a sorted, deduplicated ``S16`` key
    array; :meth:`member_keys` answers a whole batch with one
    ``searchsorted``.  The backing array is a plain contiguous ndarray,
    so a frozen set round-trips through shared memory unchanged (the
    hash acceleration below is rebuilt lazily per process and never
    shipped).
    """

    __slots__ = ("keys", "_hash_tables")

    def __init__(self, keys: np.ndarray):
        self.keys = keys
        # None = unbuilt; () = hash collision, use the S16 path;
        # else (sorted hashes, entry hi, entry lo) aligned by hash.
        self._hash_tables: tuple | None = None

    @classmethod
    def from_ints(cls, values: Iterable[int]) -> "FrozenKeySet":
        keys = fuse_ints(values)
        keys = np.unique(keys) if len(keys) else keys
        return cls(keys)

    @classmethod
    def from_columns(cls, hi: np.ndarray, lo: np.ndarray) -> "FrozenKeySet":
        keys = fuse(hi, lo)
        keys = np.unique(keys) if len(keys) else keys
        return cls(keys)

    def __len__(self) -> int:
        return len(self.keys)

    def member_keys(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership flags for pre-fused query keys."""
        if not len(self.keys) or not len(keys):
            return np.zeros(len(keys), dtype=bool)
        pos = np.searchsorted(self.keys, keys)
        pos[pos == len(self.keys)] = 0  # compare out-of-range against [0]
        return self.keys[pos] == keys

    def _hashed(self) -> tuple:
        """Hash-sorted entry tables, built lazily (see ``hash_columns``).

        Returns ``()`` — meaning "use the exact S16 path" — if any two
        distinct entries share a hash: with duplicate hashes a single
        ``searchsorted`` position cannot confirm both, so the
        acceleration would produce false negatives.  (With 64-bit mixed
        hashes this is astronomically unlikely, but exactness here is a
        parity guarantee, not a probabilistic one.)
        """
        tables = self._hash_tables
        if tables is None:
            cols = (
                self.keys.view(">u8").reshape(-1, 2).astype(np.uint64)
            )
            hi = np.ascontiguousarray(cols[:, 0])
            lo = np.ascontiguousarray(cols[:, 1])
            hashes = hash_columns(hi, lo)
            order = np.argsort(hashes, kind="stable")
            hashes = hashes[order]
            if len(hashes) > 1 and bool((hashes[1:] == hashes[:-1]).any()):
                tables = ()
            else:
                tables = (hashes, hi[order], lo[order])
            self._hash_tables = tables
        return tables

    def member(
        self,
        hi: np.ndarray,
        lo: np.ndarray,
        hashes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boolean membership flags for hi/lo query columns.

        ``hashes`` may carry precomputed ``hash_columns(hi, lo)`` so
        callers probing several tables hash each batch only once.  The
        position the hash search finds is confirmed against the actual
        columns, so the verdict is exact: a pair that compares equal at
        the found position *is* in the table, and a member pair always
        lands on its own entry (entry hashes are unique here).
        """
        if not len(self.keys) or not len(hi):
            return np.zeros(len(hi), dtype=bool)
        tables = self._hashed()
        if not tables:  # pragma: no cover - needs a 64-bit hash collision
            return self.member_keys(fuse(hi, lo))
        entry_hash, entry_hi, entry_lo = tables
        if hashes is None:
            hashes = hash_columns(hi, lo)
        pos = np.searchsorted(entry_hash, hashes)
        pos[pos == len(entry_hash)] = 0
        return (entry_hi[pos] == hi) & (entry_lo[pos] == lo)


def mask_columns(length: int) -> tuple[np.uint64, np.uint64]:
    """The /length network mask, split into hi/lo column masks."""
    if not 0 <= length <= 128:
        raise ValueError(f"prefix length out of range: {length}")
    mask = ((1 << length) - 1) << (128 - length)
    return np.uint64(mask >> 64), np.uint64(mask & _M64)


class PrefixMaskTable:
    """A frozen prefix set answering "does any prefix contain addr?".

    One ``(hi mask, lo mask, FrozenKeySet of networks)`` entry per
    distinct prefix length, checked shortest-length first (matching the
    scalar walk order in :class:`~repro.scanner.blacklist.Blacklist`
    and :class:`~repro.simnet.aliasing.AliasedRegionSet`).  Already-
    matched rows are skipped in later length passes.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: list[tuple[int, FrozenKeySet]]):
        self.entries = [
            (length, *mask_columns(length), keys) for length, keys in entries
        ]

    @classmethod
    def from_networks(
        cls, networks_by_length: dict[int, Iterable[int]]
    ) -> "PrefixMaskTable":
        return cls(
            [
                (length, FrozenKeySet.from_ints(networks_by_length[length]))
                for length in sorted(networks_by_length)
            ]
        )

    def __len__(self) -> int:
        return sum(len(keys) for _, _, _, keys in self.entries)

    def match_any(
        self,
        hi: np.ndarray,
        lo: np.ndarray,
        hashes: np.ndarray | None = None,
    ) -> np.ndarray:
        """True where any table prefix contains the address.

        ``hashes`` may carry the batch's ``hash_columns(hi, lo)``;
        ``/128`` entries (identity mask) then probe on them directly
        instead of re-masking and re-hashing the columns.  The first
        length pass writes its flags wholesale — no all-true boolean
        indexing — so single-length tables cost one membership test.
        """
        flags: np.ndarray | None = None
        for length, mask_hi, mask_lo, table in self.entries:
            exact = hashes if length == 128 and hashes is not None else None
            if flags is None:
                if exact is not None:
                    flags = table.member(hi, lo, hashes=exact)
                else:
                    flags = table.member(hi & mask_hi, lo & mask_lo)
                continue
            pending = ~flags
            if not pending.any():
                break
            sub_hi, sub_lo = hi[pending], lo[pending]
            if exact is not None:
                flags[pending] = table.member(
                    sub_hi, sub_lo, hashes=exact[pending]
                )
            else:
                flags[pending] = table.member(
                    sub_hi & mask_hi, sub_lo & mask_lo
                )
        if flags is None:
            flags = np.zeros(len(hi), dtype=bool)
        return flags
