"""16-ary nybble tree over IPv6 addresses (the paper's §5.5 optimization).

Each level of the tree corresponds to one nybble position (level 0 is
the most significant nybble) and branching corresponds to that
position's value.  Every node carries the count of addresses in its
subtree, which lets range queries short-circuit once the remainder of
the query range is fully wildcarded.

The tree supports the two operations 6Gen needs:

* counting the seeds inside a :class:`~repro.ipv6.range_.NybbleRange`
  (to compute a grown cluster's seed-set size without storing seed sets);
* iterating those seeds (to reconstruct a cluster's seed set on demand).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .nybble import FULL_MASK, NYBBLE_COUNT, mask_contains
from .range_ import NybbleRange


class _Node:
    """Internal tree node: subtree count plus children keyed by nybble."""

    __slots__ = ("count", "children")

    def __init__(self) -> None:
        self.count = 0
        self.children: dict[int, "_Node"] = {}


class NybbleTree:
    """A set of IPv6 addresses indexed for nybble-range queries.

    Duplicate inserts are ignored (the tree models a *set* of seeds, as
    in the paper).
    """

    def __init__(self, addrs: Iterable[int] = ()) -> None:
        self._root = _Node()
        for addr in addrs:
            self.insert(addr)

    # -- mutation ---------------------------------------------------------
    def insert(self, addr: int) -> bool:
        """Insert an address; returns True if it was not already present."""
        value = int(addr)
        path: list[_Node] = [self._root]
        node = self._root
        for i in range(NYBBLE_COUNT):
            nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
            child = node.children.get(nybble)
            if child is None:
                child = _Node()
                node.children[nybble] = child
            path.append(child)
            node = child
        if node.count:  # leaf already holds this exact address
            return False
        for n in path:
            n.count += 1
        return True

    def remove(self, addr: int) -> bool:
        """Remove an address; returns True if it was present."""
        value = int(addr)
        path: list[tuple[_Node, int]] = []
        node = self._root
        for i in range(NYBBLE_COUNT):
            nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
            child = node.children.get(nybble)
            if child is None:
                return False
            path.append((node, nybble))
            node = child
        if not node.count:
            return False
        self._root.count -= 1
        for parent, nybble in path:
            child = parent.children[nybble]
            child.count -= 1
            if child.count == 0:
                del parent.children[nybble]
                break  # descendants are unreachable; let GC reclaim them
        return True

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return self._root.count

    def __bool__(self) -> bool:
        return self._root.count > 0

    def __contains__(self, addr) -> bool:
        value = int(addr)
        node = self._root
        for i in range(NYBBLE_COUNT):
            nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
            node = node.children.get(nybble)
            if node is None:
                return False
        return True

    def count_in_range(self, range_: NybbleRange) -> int:
        """Number of stored addresses that lie within the range."""
        masks = range_.masks
        # Precompute, for each depth, whether all remaining masks are full
        # wildcards; if so the whole subtree count can be used directly.
        suffix_full = [True] * (NYBBLE_COUNT + 1)
        for i in range(NYBBLE_COUNT - 1, -1, -1):
            suffix_full[i] = suffix_full[i + 1] and masks[i] == FULL_MASK

        def visit(node: _Node, depth: int) -> int:
            if suffix_full[depth]:
                return node.count
            mask = masks[depth]
            total = 0
            for nybble, child in node.children.items():
                if mask_contains(mask, nybble):
                    total += visit(child, depth + 1)
            return total

        return visit(self._root, 0)

    def count_in_ranges(self, ranges: Sequence[NybbleRange]) -> list[int]:
        """Count stored addresses within each of several ranges at once.

        Equivalent to ``[self.count_in_range(r) for r in ranges]`` but
        traverses the tree once, carrying the set of ranges still
        "active" on the current path — 6Gen's candidate spans of one
        cluster share long fixed prefixes, so the upper levels of the
        walk are shared instead of repeated per range.
        """
        counts = [0] * len(ranges)
        if not ranges:
            return counts
        masks_list = [r.masks for r in ranges]
        suffix_full: list[list[bool]] = []
        for masks in masks_list:
            full = [True] * (NYBBLE_COUNT + 1)
            for i in range(NYBBLE_COUNT - 1, -1, -1):
                full[i] = full[i + 1] and masks[i] == FULL_MASK
            suffix_full.append(full)

        def visit(node: _Node, depth: int, active: list[int]) -> None:
            live: list[int] = []
            for idx in active:
                if suffix_full[idx][depth]:
                    counts[idx] += node.count
                else:
                    live.append(idx)
            if not live:
                return
            for nybble, child in node.children.items():
                sub = [
                    idx
                    for idx in live
                    if mask_contains(masks_list[idx][depth], nybble)
                ]
                if sub:
                    visit(child, depth + 1, sub)

        visit(self._root, 0, list(range(len(ranges))))
        return counts

    def iter_in_range(self, range_: NybbleRange) -> Iterator[int]:
        """Iterate stored addresses within the range, ascending."""
        masks = range_.masks

        def visit(node: _Node, depth: int, prefix: int) -> Iterator[int]:
            if depth == NYBBLE_COUNT:
                yield prefix
                return
            mask = masks[depth]
            for nybble in sorted(node.children):
                if mask_contains(mask, nybble):
                    yield from visit(
                        node.children[nybble], depth + 1, (prefix << 4) | nybble
                    )

        return visit(self._root, 0, 0)

    def iter_all(self) -> Iterator[int]:
        """Iterate all stored addresses, ascending."""
        return self.iter_in_range(NybbleRange.full())

    def count_with_prefix_nybbles(self, nybbles: Iterable[int]) -> int:
        """Count addresses whose leading nybbles equal the given sequence."""
        node = self._root
        for nybble in nybbles:
            node = node.children.get(int(nybble))
            if node is None:
                return 0
        return node.count

    def densest_child(self, nybbles: Iterable[int]) -> tuple[int, int] | None:
        """(nybble value, count) of the heaviest child under a prefix path.

        Returns ``None`` if the path does not exist.  Useful for
        density-guided exploration (e.g. the Ullrich baseline).
        """
        node = self._root
        for nybble in nybbles:
            node = node.children.get(int(nybble))
            if node is None:
                return None
        if not node.children:
            return None
        value, child = max(node.children.items(), key=lambda kv: (kv[1].count, -kv[0]))
        return value, child.count
