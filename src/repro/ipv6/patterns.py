"""Recognisers for known IPv6 address-assignment practices (RFC 7707, §3.2).

These helpers classify interface identifiers (the low 64 bits) into the
allocation practices the paper cites: low-byte addresses, SLAAC/EUI-64
identifiers, embedded IPv4 addresses, embedded service ports, and
human-readable hex words.  The simulated Internet
(:mod:`repro.simnet.allocation`) generates addresses with these same
practices, and the RFC 7707 baseline (:mod:`repro.baselines.lowbyte`)
predicts with them.
"""

from __future__ import annotations

from .address import IPv6Addr

#: Human-readable strings expressible in hex digits (RFC 7707 §B).
HEX_WORDS = (
    "dead", "beef", "cafe", "babe", "face", "fade", "feed",
    "f00d", "c0de", "b00c", "abba", "d00d", "5eed", "ace",
)

#: Service ports commonly embedded in addresses (decimal digits reused as hex).
COMMON_PORTS = (80, 443, 25, 53, 22, 8080, 993, 587)

_IID_MASK = (1 << 64) - 1


def interface_id(addr: IPv6Addr | int) -> int:
    """The low 64 bits of an address."""
    return int(addr) & _IID_MASK


def is_low_byte(addr: IPv6Addr | int, bits: int = 8) -> bool:
    """True if the interface identifier is non-zero only in its low bits.

    Czyz et al. (cited in §3.2) report that most router and server
    addresses have non-zero values in only the least significant 8 or
    16 bits of the interface identifier.
    """
    if not 0 < bits <= 64:
        raise ValueError(f"bits out of range: {bits}")
    iid = interface_id(addr)
    return iid != 0 and (iid >> bits) == 0


def is_subnet_anycast(addr: IPv6Addr | int) -> bool:
    """True for the all-zero interface identifier (subnet-router anycast)."""
    return interface_id(addr) == 0


def is_eui64(addr: IPv6Addr | int) -> bool:
    """True if the interface identifier has the SLAAC EUI-64 shape.

    EUI-64 identifiers insert the bytes ``ff:fe`` between the two MAC
    halves (bytes 3 and 4 of the IID).
    """
    iid = interface_id(addr)
    return ((iid >> 24) & 0xFFFF) == 0xFFFE


def eui64_iid_from_mac(mac: int) -> int:
    """Build an EUI-64 interface identifier from a 48-bit MAC address.

    Follows RFC 4291 appendix A: split the MAC, insert ``ff:fe``, and
    flip the universal/local bit.
    """
    if not 0 <= mac < (1 << 48):
        raise ValueError(f"MAC out of range: {mac:#x}")
    upper = mac >> 24
    lower = mac & 0xFFFFFF
    iid = (upper << 40) | (0xFFFE << 24) | lower
    return iid ^ (1 << 57)  # universal/local bit is bit 6 of the first byte


def mac_from_eui64_iid(iid: int) -> int | None:
    """Recover the MAC address from an EUI-64 IID, or ``None`` if not EUI-64."""
    if ((iid >> 24) & 0xFFFF) != 0xFFFE:
        return None
    iid ^= 1 << 57
    return ((iid >> 40) << 24) | (iid & 0xFFFFFF)


def is_ipv4_embedded(addr: IPv6Addr | int) -> bool:
    """Heuristic for IPv4 addresses embedded in the low 32 bits.

    Detects the common practice of writing an IPv4 address's four
    decimal octets directly into the final two hextets (e.g.
    ``2001:db8::192.0.2.1`` stored as ``c000:0201``) with the rest of
    the IID zero.
    """
    iid = interface_id(addr)
    return iid != 0 and (iid >> 32) == 0 and (iid >> 16) != 0 and not is_low_byte(addr, 16)


def embedded_port(addr: IPv6Addr | int) -> int | None:
    """The embedded service port, if the IID spells one in decimal digits.

    A port is considered embedded when the IID equals the port number's
    decimal digits read as hex (e.g. ``::443`` has IID ``0x443``), a
    practice RFC 7707 documents for servers.
    """
    iid = interface_id(addr)
    text = format(iid, "x")
    if text.isdigit() and int(text) in COMMON_PORTS:
        return int(text)
    return None


def contains_hex_word(addr: IPv6Addr | int) -> str | None:
    """The first known hex word appearing in the IID's hex digits, if any."""
    iid_text = format(interface_id(addr), "016x")
    for word in HEX_WORDS:
        if word in iid_text:
            return word
    return None


def classify_iid(addr: IPv6Addr | int) -> str:
    """Best-effort label for the interface identifier's allocation practice.

    Returns one of ``subnet-anycast``, ``low-byte``, ``low-word``,
    ``eui64``, ``port``, ``hex-word``, ``ipv4``, or ``random``.
    The checks are ordered from most to least specific.
    """
    if is_subnet_anycast(addr):
        return "subnet-anycast"
    port = embedded_port(addr)
    if port is not None:
        return "port"
    if is_low_byte(addr, 8):
        return "low-byte"
    if is_low_byte(addr, 16):
        return "low-word"
    if is_eui64(addr):
        return "eui64"
    word = contains_hex_word(addr)
    if word is not None:
        return "hex-word"
    if is_ipv4_embedded(addr):
        return "ipv4"
    return "random"
