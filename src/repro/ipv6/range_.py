"""Nybble-wildcard address ranges (the paper's cluster ranges, §5.3).

A :class:`NybbleRange` constrains each of the 32 nybble positions of an
IPv6 address to a set of allowed values, stored as a 16-bit mask per
position (bit ``v`` set means hex value ``v`` is allowed).  The range
covers exactly the product set of the per-position value sets.

Two clustering granularities from the paper are supported:

* **loose** — a position is either fixed to a single value or a full
  wildcard ``?`` accepting all 16 values;
* **tight** — positions may carry any subset of values, written with the
  paper's bracket syntax, e.g. ``[1-2,8-a]``.

Text syntax extends standard IPv6 notation: ``2001:db8::?:100?`` is a
range of 256 addresses; ``2001:db8::[0-3]1`` bounds one nybble to the
values 0–3.
"""

from __future__ import annotations

import itertools
import random
import re
from typing import Iterable, Iterator, Sequence

import numpy as np

from .address import AddressError
from .nybble import (
    FULL_MASK,
    HEXTET_COUNT,
    NYBBLE_COUNT,
    hex_digit,
    hex_value,
    mask_contains,
    mask_values,
    popcount16,
)
from .prefix import Prefix


class RangeError(ValueError):
    """Raised for malformed range text or invalid range operations."""


_BRACKET_RE = re.compile(r"^\[([0-9a-fA-F,\-]+)\]$")


def _parse_bracket(token: str) -> int:
    """Parse a ``[1-2,8-a]`` bracket expression into a 16-bit mask."""
    match = _BRACKET_RE.match(token)
    if not match:
        raise RangeError(f"invalid bracket expression: {token!r}")
    mask = 0
    for part in match.group(1).split(","):
        if not part:
            raise RangeError(f"empty item in bracket expression: {token!r}")
        lo_text, dash, hi_text = part.partition("-")
        lo = hex_value(lo_text) if len(lo_text) == 1 else None
        if lo is None:
            raise RangeError(f"invalid bracket item: {part!r}")
        if dash:
            hi = hex_value(hi_text) if len(hi_text) == 1 else None
            if hi is None or hi < lo:
                raise RangeError(f"invalid bracket span: {part!r}")
        else:
            hi = lo
        for v in range(lo, hi + 1):
            mask |= 1 << v
    return mask


def _format_mask(mask: int) -> str:
    """Format one position's mask as a digit, ``?``, or bracket expression."""
    if mask == FULL_MASK:
        return "?"
    values = mask_values(mask)
    if len(values) == 1:
        return hex_digit(values[0])
    # Collapse consecutive runs into spans.
    parts: list[str] = []
    run_start = prev = values[0]
    for v in values[1:] + (None,):  # type: ignore[operator]
        if v is not None and v == prev + 1:
            prev = v
            continue
        if run_start == prev:
            parts.append(hex_digit(run_start))
        else:
            parts.append(f"{hex_digit(run_start)}-{hex_digit(prev)}")
        if v is not None:
            run_start = prev = v
    return "[" + ",".join(parts) + "]"


def _tokenize_group(group: str) -> list[str]:
    """Split one colon-separated group into per-nybble tokens."""
    tokens: list[str] = []
    i = 0
    while i < len(group):
        ch = group[i]
        if ch == "[":
            end = group.find("]", i)
            if end == -1:
                raise RangeError(f"unterminated bracket in group: {group!r}")
            tokens.append(group[i : end + 1])
            i = end + 1
        else:
            tokens.append(ch)
            i += 1
    if not 1 <= len(tokens) <= 4:
        raise RangeError(f"group must contain 1-4 nybbles: {group!r}")
    return tokens


class NybbleRange:
    """A product-set region of IPv6 address space, one value-mask per nybble.

    Immutable; all growth operations return new ranges.
    """

    __slots__ = ("_masks", "_size")

    def __init__(self, masks: Sequence[int]):
        masks = tuple(masks)
        if len(masks) != NYBBLE_COUNT:
            raise RangeError(f"expected {NYBBLE_COUNT} masks, got {len(masks)}")
        size = 1
        for m in masks:
            if not 0 < m <= FULL_MASK:
                raise RangeError(f"invalid nybble mask: {m:#x}")
            size *= popcount16(m)
        object.__setattr__(self, "_masks", masks)
        object.__setattr__(self, "_size", size)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("NybbleRange is immutable")

    def __reduce__(self):
        # immutability guard blocks default unpickling; rebuild via ctor
        return (NybbleRange, (self._masks,))

    # -- constructors ---------------------------------------------------
    @classmethod
    def _make(cls, masks: tuple[int, ...], size: int) -> "NybbleRange":
        """Trusted constructor: masks known valid, size precomputed.

        Used by the vectorised 6Gen kernel, which builds span masks from
        an existing (validated) range and tracks the size incrementally;
        skipping the 32-position validation loop matters when thousands
        of candidate spans are built per run.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_masks", masks)
        object.__setattr__(self, "_size", size)
        return self

    @classmethod
    def from_address(cls, addr: int) -> "NybbleRange":
        """The singleton range covering exactly one address."""
        value = int(addr)
        masks = [
            1 << ((value >> (4 * i)) & 0xF) for i in range(NYBBLE_COUNT - 1, -1, -1)
        ]
        return cls(masks)

    @classmethod
    def full(cls) -> "NybbleRange":
        """The range covering the entire 128-bit address space."""
        return cls([FULL_MASK] * NYBBLE_COUNT)

    @classmethod
    def from_prefix(cls, prefix: Prefix) -> "NybbleRange":
        """A range equivalent to a nybble-aligned CIDR prefix.

        The prefix length must be a multiple of 4 (a bit-aligned prefix
        has no exact nybble-mask representation otherwise).
        """
        if prefix.length % 4 != 0:
            raise RangeError(
                f"prefix length {prefix.length} is not nybble-aligned"
            )
        fixed = prefix.length // 4
        masks = []
        for i in range(NYBBLE_COUNT):
            if i < fixed:
                masks.append(1 << ((prefix.network >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF))
            else:
                masks.append(FULL_MASK)
        return cls(masks)

    @classmethod
    def parse(cls, text: str) -> "NybbleRange":
        """Parse wildcard range text (IPv6 grammar + ``?`` + brackets)."""
        text = text.strip()
        if not text:
            raise RangeError("empty range")
        if text.count("::") > 1:
            raise RangeError(f"multiple '::' in range: {text!r}")

        def groups_to_masks(groups: list[str]) -> list[int]:
            masks: list[int] = []
            for group in groups:
                tokens = _tokenize_group(group)
                group_masks = []
                for token in tokens:
                    if token == "?":
                        group_masks.append(FULL_MASK)
                    elif token.startswith("["):
                        group_masks.append(_parse_bracket(token))
                    else:
                        try:
                            group_masks.append(1 << hex_value(token))
                        except ValueError:
                            raise RangeError(
                                f"invalid character {token!r} in range {text!r}"
                            ) from None
                # Implied leading zeros for short groups (e.g. "?" == "000?").
                masks.extend([1 << 0] * (4 - len(group_masks)))
                masks.extend(group_masks)
            return masks

        if "::" in text:
            left_text, right_text = text.split("::", 1)
            left = [g for g in left_text.split(":") if g] if left_text else []
            right = [g for g in right_text.split(":") if g] if right_text else []
            fill = HEXTET_COUNT - len(left) - len(right)
            if fill < 1:
                raise RangeError(f"'::' must replace at least one group: {text!r}")
            left_masks = groups_to_masks(left)
            right_masks = groups_to_masks(right)
            masks = left_masks + [1 << 0] * (4 * fill) + right_masks
        else:
            groups = text.split(":")
            if len(groups) != HEXTET_COUNT:
                raise RangeError(
                    f"expected {HEXTET_COUNT} groups, got {len(groups)}: {text!r}"
                )
            masks = groups_to_masks(groups)
        if len(masks) != NYBBLE_COUNT:
            raise RangeError(f"range does not span 32 nybbles: {text!r}")
        return cls(masks)

    # -- accessors -------------------------------------------------------
    @property
    def masks(self) -> tuple[int, ...]:
        """Per-position 16-bit value masks (index 0 = most significant)."""
        return self._masks

    def size(self) -> int:
        """Number of addresses covered (product of per-position set sizes)."""
        return self._size

    def mask(self, index: int) -> int:
        """The value mask at one nybble position."""
        return self._masks[index]

    def values_at(self, index: int) -> tuple[int, ...]:
        """Allowed nybble values at one position, ascending."""
        return mask_values(self._masks[index])

    def is_singleton(self) -> bool:
        """True if the range covers exactly one address."""
        return self._size == 1

    def dynamic_positions(self) -> tuple[int, ...]:
        """Indices of positions allowing more than one value (paper Fig. 6)."""
        return tuple(i for i, m in enumerate(self._masks) if popcount16(m) > 1)

    def fixed_positions(self) -> tuple[int, ...]:
        """Indices of positions fixed to a single value."""
        return tuple(i for i, m in enumerate(self._masks) if popcount16(m) == 1)

    # -- membership & set relations ---------------------------------------
    def contains(self, addr: int) -> bool:
        """True if the address lies within the range."""
        value = int(addr)
        for i in range(NYBBLE_COUNT):
            nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
            if not mask_contains(self._masks[i], nybble):
                return False
        return True

    def is_subset(self, other: "NybbleRange") -> bool:
        """True if every address in this range is also in ``other``."""
        return all(
            (mine & ~theirs) == 0 for mine, theirs in zip(self._masks, other._masks)
        )

    def is_strict_subset(self, other: "NybbleRange") -> bool:
        """True if this range is a subset of ``other`` and not equal to it."""
        return self._masks != other._masks and self.is_subset(other)

    def overlaps(self, other: "NybbleRange") -> bool:
        """True if the ranges share at least one address."""
        return all(
            (mine & theirs) != 0 for mine, theirs in zip(self._masks, other._masks)
        )

    def intersection(self, other: "NybbleRange") -> "NybbleRange | None":
        """The shared region, or ``None`` if the ranges are disjoint."""
        masks = [mine & theirs for mine, theirs in zip(self._masks, other._masks)]
        if any(m == 0 for m in masks):
            return None
        return NybbleRange(masks)

    # -- growth (cluster expansion, §5.4) ----------------------------------
    def span_tight(self, addr: int) -> "NybbleRange":
        """Smallest tight range covering this range plus one address.

        Each differing position gains exactly the address's nybble value.
        """
        value = int(addr)
        masks = list(self._masks)
        for i in range(NYBBLE_COUNT):
            nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
            masks[i] |= 1 << nybble
        return NybbleRange(masks)

    def span_loose(self, addr: int) -> "NybbleRange":
        """Loose range covering this range plus one address.

        Each position whose mask does not already contain the address's
        nybble becomes a full ``?`` wildcard.
        """
        value = int(addr)
        masks = list(self._masks)
        for i in range(NYBBLE_COUNT):
            nybble = (value >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF
            if not mask_contains(masks[i], nybble):
                masks[i] = FULL_MASK
        return NybbleRange(masks)

    def span(self, addr: int, loose: bool) -> "NybbleRange":
        """Dispatch to :meth:`span_loose` or :meth:`span_tight`."""
        return self.span_loose(addr) if loose else self.span_tight(addr)

    # -- enumeration & sampling -------------------------------------------
    def iter_ints(self) -> Iterator[int]:
        """Iterate covered addresses as integers, ascending.

        The caller is responsible for checking :meth:`size` first; a
        range can cover up to 2**128 addresses.
        """
        value_lists = [mask_values(m) for m in self._masks]
        for combo in itertools.product(*value_lists):
            value = 0
            for nybble in combo:
                value = (value << 4) | nybble
            yield value

    def iter_new_ints(self, old: "NybbleRange") -> Iterator[int]:
        """Iterate addresses in this range that are *not* in ``old``.

        ``old`` must be a subset of this range (the cluster-growth case:
        a grown range always contains its pre-growth range).  The cost is
        proportional to the size of the *difference*, not of the full
        range: the difference of two product sets is partitioned by the
        first widened position that takes a newly added value.
        """
        if not old.is_subset(self):
            raise RangeError("iter_new_ints requires old ⊆ new")
        widened = [
            i
            for i in range(NYBBLE_COUNT)
            if self._masks[i] != old._masks[i]
        ]
        for k, pivot in enumerate(widened):
            # Positions before the pivot (among widened ones) take OLD
            # values, the pivot takes NEW-ONLY values, later widened
            # positions take NEW values; unchanged positions keep their
            # common mask.
            value_lists: list[tuple[int, ...]] = []
            for i in range(NYBBLE_COUNT):
                if i == pivot:
                    values = mask_values(self._masks[i] & ~old._masks[i])
                elif i in widened[:k]:
                    values = mask_values(old._masks[i])
                else:
                    values = mask_values(self._masks[i])
                value_lists.append(values)
            for combo in itertools.product(*value_lists):
                value = 0
                for nybble in combo:
                    value = (value << 4) | nybble
                yield value

    def difference_size(self, old: "NybbleRange") -> int:
        """``len(self \\ old)`` for ``old`` a subset of this range."""
        if not old.is_subset(self):
            raise RangeError("difference_size requires old ⊆ new")
        return self._size - old._size

    def sample_new_ints(
        self, old: "NybbleRange", count: int, rng: random.Random
    ) -> list[int]:
        """``count`` distinct random addresses from ``self \\ old``.

        Implements the paper's final-growth sampling (§5.4): when the
        last cluster growth would exceed the probe budget, the budget is
        consumed exactly by randomly selecting addresses of the grown
        range that were not already in the pre-growth range.  Uses
        rejection sampling when the difference is large (the acceptance
        rate is at least 1/16 per widened position because masks only
        widen), falling back to enumeration for small differences.
        """
        diff_size = self.difference_size(old)
        if count > diff_size:
            raise RangeError(
                f"cannot sample {count} addresses from difference of size {diff_size}"
            )
        if diff_size <= 4 * count or diff_size <= 4096:
            population = list(self.iter_new_ints(old))
            return rng.sample(population, count)
        chosen: set[int] = set()
        while len(chosen) < count:
            candidate = self.random_int(rng)
            if not old.contains(candidate):
                chosen.add(candidate)
        return sorted(chosen)

    def random_int(self, rng: random.Random) -> int:
        """A uniformly random covered address."""
        value = 0
        for m in self._masks:
            values = mask_values(m)
            value = (value << 4) | rng.choice(values)
        return value

    def sample_ints(self, count: int, rng: random.Random) -> list[int]:
        """``count`` distinct covered addresses, uniformly at random.

        Raises :class:`RangeError` if the range holds fewer than
        ``count`` addresses.  Uses rejection sampling (cheap because the
        per-position draws are independent) with an enumeration fallback
        for small ranges.
        """
        if count > self._size:
            raise RangeError(
                f"cannot sample {count} distinct addresses from range of size {self._size}"
            )
        if self._size <= 4 * count:
            population = list(self.iter_ints())
            return rng.sample(population, count)
        chosen: set[int] = set()
        while len(chosen) < count:
            chosen.add(self.random_int(rng))
        return sorted(chosen)

    # -- formatting & protocol --------------------------------------------
    def wildcard_text(self) -> str:
        """Paper-style text form with ``?`` wildcards and brackets.

        Runs of two or more all-zero groups are compressed with ``::``
        like plain addresses.
        """
        group_texts = []
        for g in range(HEXTET_COUNT):
            masks = self._masks[4 * g : 4 * g + 4]
            tokens = [_format_mask(m) for m in masks]
            # Strip implied leading zeros, keeping at least one token.
            while len(tokens) > 1 and tokens[0] == "0":
                tokens.pop(0)
            group_texts.append("".join(tokens))
        # Compress the longest run (>= 2) of "0" groups, leftmost first.
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, g in enumerate(group_texts + ["x"]):
            if g == "0":
                if run_len == 0:
                    run_start = i
                run_len += 1
            else:
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
                run_len = 0
        if best_len < 2:
            return ":".join(group_texts)
        left = ":".join(group_texts[:best_start])
        right = ":".join(group_texts[best_start + best_len:])
        return f"{left}::{right}"

    def __str__(self) -> str:
        return self.wildcard_text()

    def __repr__(self) -> str:
        return f"NybbleRange({self.wildcard_text()!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, NybbleRange):
            return self._masks == other._masks
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._masks)

    def __contains__(self, addr) -> bool:
        try:
            return self.contains(int(addr))
        except (TypeError, ValueError, AddressError):
            return False


# -- column-native expansion (generation plane) -----------------------------
def _expand_half_arr(masks: Sequence[int]) -> np.ndarray:
    """Cartesian product of 16 nybble positions as one uint64 column.

    Fixed positions fold into one constant; each dynamic position then
    contributes a single repeat/tile pass over the full-size output —
    leftmost varying slowest, exactly the ``itertools.product`` order
    of :meth:`NybbleRange.iter_ints`.  One full-size array op per
    *dynamic* position (typically 1–3) instead of one per position.
    """
    size = 1
    const = 0
    dynamic: list[tuple[int, tuple[int, ...]]] = []
    for i, m in enumerate(masks):
        shift = 4 * (len(masks) - 1 - i)
        values = mask_values(m)
        if len(values) == 1:
            const |= values[0] << shift
        else:
            dynamic.append((shift, values))
            size *= len(values)
    out = np.full(size, np.uint64(const), dtype=np.uint64)
    stride = size
    for shift, values in dynamic:
        stride //= len(values)
        shifted = np.array([v << shift for v in values], dtype=np.uint64)
        block = np.repeat(shifted, stride)
        if len(block) == size:
            out |= block
        else:
            out |= np.tile(block, size // len(block))
    return out


def _expand_prefix_arr(
    masks: Sequence[int], n: int
) -> tuple[np.ndarray, np.ndarray]:
    """The first ``n`` addresses of the product set, as hi/lo columns.

    The product order is a mixed-radix counter (rightmost position is
    the fastest digit), so address ``j`` decodes positionally:
    ``digit = (j // stride) % count`` with ``stride`` the product of all
    value counts to the right.  Positions whose stride already exceeds
    ``n`` never advance and contribute their first value as a constant.
    """
    idx = np.arange(n, dtype=np.uint64)
    hi = np.zeros(n, dtype=np.uint64)
    lo = np.zeros(n, dtype=np.uint64)
    stride = 1
    for pos in range(NYBBLE_COUNT - 1, -1, -1):
        values = mask_values(masks[pos])
        count = len(values)
        nybble_index = NYBBLE_COUNT - 1 - pos  # 0 = least significant
        column = hi if nybble_index >= 16 else lo
        shift = np.uint64(4 * (nybble_index % 16))
        if count == 1 or stride >= n:
            if values[0]:
                column |= np.uint64(values[0]) << shift
        else:
            digits = (idx // np.uint64(stride)) % np.uint64(count)
            column |= np.array(values, dtype=np.uint64)[digits] << shift
        stride *= count
    return hi, lo


def expand_range_arr(
    range_: NybbleRange, *, limit: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Materialise a range directly into packed ``(hi, lo)`` columns.

    Column-native counterpart of :meth:`NybbleRange.iter_ints`: the
    output order is exactly the scalar iteration order (ascending), and
    with ``limit`` the first ``limit`` addresses of that order.  No
    Python big-ints are boxed along the way.  As with ``iter_ints``, the
    caller is responsible for keeping ``min(size, limit)`` sane.
    """
    size = range_.size()
    n = size if limit is None else min(limit, size)
    if n <= 0:
        empty = np.empty(0, dtype=np.uint64)
        return empty, empty
    if n < size:
        return _expand_prefix_arr(range_.masks, n)
    hi = _expand_half_arr(range_.masks[:16])
    lo = _expand_half_arr(range_.masks[16:])
    return np.repeat(hi, len(lo)), np.tile(lo, len(hi))


def expand_ranges_arr(
    ranges: Iterable[NybbleRange], *, limit: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Column-native :func:`repro.datasets.rangelist.expand_ranges`.

    Same contract as the scalar version: distinct addresses, ranges
    expanded in the given order (each ascending internally), optionally
    capped at ``limit`` total.  Only ranges that overlap another range
    in the list pay for dedupe tracking — pairwise-disjoint ranges
    cannot repeat an address, exactly mirroring the scalar code's
    ``seen``-set gating, so the emitted sequence is bit-identical.

    One divergence in *cost* (not output): a tracked range is expanded
    fully before the cap is applied, where the scalar generator stops
    mid-iteration.  6Gen cluster lists are budget-bounded, so this does
    not matter in practice.
    """
    from .addrplane import ColumnDeduper

    range_list = list(ranges)
    overlapping = [
        any(
            i != j and range_.overlaps(other)
            for j, other in enumerate(range_list)
        )
        for i, range_ in enumerate(range_list)
    ]
    dedupe = ColumnDeduper()
    parts_hi: list[np.ndarray] = []
    parts_lo: list[np.ndarray] = []
    emitted = 0
    for range_, tracked in zip(range_list, overlapping):
        remaining = None if limit is None else limit - emitted
        if remaining is not None and remaining <= 0:
            break
        hi, lo = expand_range_arr(
            range_, limit=None if tracked else remaining
        )
        if tracked:
            hi, lo = dedupe.add(hi, lo)
            if remaining is not None and len(hi) > remaining:
                hi, lo = hi[:remaining], lo[:remaining]
        if len(hi):
            parts_hi.append(hi)
            parts_lo.append(lo)
            emitted += len(hi)
    if not parts_hi:
        empty = np.empty(0, dtype=np.uint64)
        return empty, empty
    return np.concatenate(parts_hi), np.concatenate(parts_lo)


def spanning_range(addrs: Iterable[int], loose: bool = True) -> NybbleRange:
    """Smallest range (of the given granularity) covering all addresses."""
    it = iter(addrs)
    try:
        first = next(it)
    except StopIteration:
        raise RangeError("spanning_range needs at least one address") from None
    rng = NybbleRange.from_address(int(first))
    for addr in it:
        rng = rng.span(int(addr), loose=loose)
    return rng
