"""Aliased-prefix detection and hit filtering (paper §6.2).

The paper's best-effort dealiasing: for every /96 prefix containing a
responsive target, probe three random addresses in the prefix with
three TCP SYNs each; if all three addresses respond, the prefix is
aliased (the chance of three random picks all hitting real hosts in a
non-aliased /96 is negligible — below 1e-10 even with a million hosts
in the prefix).

Because /96 probing cannot see finer-grained aliasing, the paper then
manually inspected the top-10 ASes of the remaining hits and found two
(Cloudflare, Mittwald) aliased at /112.  :func:`as_level_inspection`
automates that step: it re-runs the random-probe test at /112 inside
the top ASes and excludes ASes where most hit-/112s test aliased.

Per-prefix tests are independent, so the detection stage shards across
a process pool when asked (``workers`` > 1).  Each prefix draws its
sample addresses from an RNG derived from ``(rng_seed, prefix)`` —
never from a stream shared across prefixes — which makes every
prefix's verdict independent of test order and worker placement: the
parallel path reproduces the serial decisions exactly (for a scanner
built with a fixed ``rng_seed``).
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ipv6.prefix import Prefix
from ..simnet.bgp import BgpTable
from ..telemetry.spans import Telemetry, ensure
from .engine import Scanner
from .probe import DEFAULT_PORT
from .schedule import mix64

_M64 = (1 << 64) - 1


def group_hits_by_prefix(hits: Iterable[int], length: int = 96) -> dict[Prefix, list[int]]:
    """Group responsive addresses by their containing /length prefix."""
    groups: dict[Prefix, list[int]] = defaultdict(list)
    for addr in hits:
        groups[Prefix.containing(int(addr), length)].append(int(addr))
    return dict(groups)


def is_prefix_aliased(
    prefix: Prefix,
    scanner: Scanner,
    rng: random.Random,
    *,
    sample_addrs: int = 3,
    probes_per_addr: int = 3,
    port: int = DEFAULT_PORT,
) -> bool:
    """The paper's random-probe aliasing test for one prefix.

    Draws ``sample_addrs`` random addresses in the prefix and sends up
    to ``probes_per_addr`` probes to each; the prefix is aliased iff
    every sampled address answers at least once.  All samples go
    through one batched :meth:`Scanner.probe_many` call, so blacklist,
    loss, and ground-truth lookups are chunked rather than per-probe.
    """
    addrs = [prefix.random_address(rng).value for _ in range(sample_addrs)]
    return all(scanner.probe_many(addrs, port, attempts=probes_per_addr))


def _alias_tests_fused(
    pairs: Sequence[tuple[Prefix, int]],
    scanner: Scanner,
    *,
    sample_addrs: int,
    probes_per_addr: int,
    port: int,
) -> list[bool]:
    """All of ``pairs``' samples through one :meth:`Scanner.probe_many`.

    Identical verdicts and probe totals to per-prefix
    :func:`is_prefix_aliased` calls: every per-address outcome
    (blacklist, loss, truth, retry stop) is a pure function of the
    address and attempt, never of what else shares the batch.  Fusing
    just hands the prober batches big enough for its array fast path.
    """
    addrs: list[int] = []
    for prefix, seed in pairs:
        rng = random.Random(seed)
        addrs.extend(
            prefix.random_address(rng).value for _ in range(sample_addrs)
        )
    flags = scanner.probe_many(addrs, port, attempts=probes_per_addr)
    return [
        all(flags[i * sample_addrs : (i + 1) * sample_addrs])
        for i in range(len(pairs))
    ]


def _base_key(rng_seed: int | None) -> int:
    """One 64-bit key per pipeline run, derived the same way everywhere."""
    return random.Random(rng_seed).getrandbits(64)


def _derived_seed(base_key: int, prefix: Prefix) -> int:
    """Deterministic per-prefix RNG seed: a pure function of the prefix."""
    h = mix64(base_key ^ (prefix.network & _M64))
    h = mix64(h ^ (prefix.network >> 64) ^ prefix.length)
    return h


def _run_alias_tests(
    pairs: Sequence[tuple[Prefix, int]],
    scanner: Scanner,
    *,
    sample_addrs: int,
    probes_per_addr: int,
    port: int,
    workers: int,
) -> list[bool]:
    """Run the random-probe test for each (prefix, rng seed) pair.

    With ``workers`` > 1 the pairs are sharded across a process pool;
    each worker rebuilds a scanner from the parent's construction
    parameters, so loss outcomes (a pure function of the scanner's
    ``rng_seed`` and the probed address) match the serial path, and the
    parent's probe counter is advanced by the workers' probe totals.
    """
    if workers <= 1 or len(pairs) <= 1:
        return _alias_tests_fused(
            pairs,
            scanner,
            sample_addrs=sample_addrs,
            probes_per_addr=probes_per_addr,
            port=port,
        )
    from concurrent.futures import ProcessPoolExecutor

    chunk_size = max(1, (len(pairs) + workers * 4 - 1) // (workers * 4))
    chunks = [
        list(pairs[start : start + chunk_size])
        for start in range(0, len(pairs), chunk_size)
    ]
    params = (sample_addrs, probes_per_addr, port)
    flags: list[bool] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_dealias_pool_init,
        initargs=(
            scanner.truth,
            scanner.blacklist,
            scanner.loss_rate,
            scanner._rng_seed,
        ),
    ) as pool:
        for chunk_flags, probes in pool.map(
            _dealias_check_chunk, ((chunk, params) for chunk in chunks)
        ):
            flags.extend(chunk_flags)
            scanner.total_probes += probes
    return flags


#: Per-process scanner for dealias-pool workers (set by the initializer).
_DEALIAS_STATE: dict = {}


def _dealias_pool_init(truth, blacklist, loss_rate, rng_seed) -> None:
    _DEALIAS_STATE["scanner"] = Scanner(
        truth, blacklist=blacklist, loss_rate=loss_rate, rng_seed=rng_seed
    )


def _dealias_check_chunk(args) -> tuple[list[bool], int]:
    pairs, (sample_addrs, probes_per_addr, port) = args
    scanner: Scanner = _DEALIAS_STATE["scanner"]
    before = scanner.total_probes
    flags = _alias_tests_fused(
        pairs,
        scanner,
        sample_addrs=sample_addrs,
        probes_per_addr=probes_per_addr,
        port=port,
    )
    return flags, scanner.total_probes - before


def detect_aliased_prefixes(
    hits: Iterable[int],
    scanner: Scanner,
    *,
    length: int = 96,
    sample_addrs: int = 3,
    probes_per_addr: int = 3,
    port: int = DEFAULT_PORT,
    rng_seed: int | None = 0,
    workers: int = 1,
    telemetry: Telemetry | None = None,
) -> set[Prefix]:
    """All hit-containing /length prefixes that test as aliased.

    Prefixes are tested in sorted order with per-prefix derived RNGs,
    so the result is a pure function of ``(hits, rng_seed)`` and the
    scanner — identical for any ``workers`` value (and with telemetry
    on or off: verdict RNGs derive from the prefix, never from the
    observer).
    """
    tele = ensure(telemetry)
    base = _base_key(rng_seed)
    prefixes = sorted(group_hits_by_prefix(hits, length))
    pairs = [(prefix, _derived_seed(base, prefix)) for prefix in prefixes]
    probes_before = scanner.total_probes
    with tele.span("alias_detect", length=length, prefixes=len(pairs)):
        flags = _run_alias_tests(
            pairs,
            scanner,
            sample_addrs=sample_addrs,
            probes_per_addr=probes_per_addr,
            port=port,
            workers=workers,
        )
    aliased = {prefix for prefix, flagged in zip(prefixes, flags) if flagged}
    if tele.enabled:
        tele.count("dealias.prefixes_tested", len(pairs))
        tele.count("dealias.aliased_prefixes", len(aliased))
        tele.count("dealias.probes", scanner.total_probes - probes_before)
    return aliased


def split_hits(
    hits: Iterable[int], aliased_prefixes: set[Prefix]
) -> tuple[set[int], set[int]]:
    """Partition hits into (aliased, clean) by the detected prefixes."""
    by_length: dict[int, set[int]] = defaultdict(set)
    for prefix in aliased_prefixes:
        by_length[prefix.length].add(prefix.network)
    aliased_hits: set[int] = set()
    clean_hits: set[int] = set()
    for addr in hits:
        value = int(addr)
        in_aliased = any(
            Prefix.containing(value, length).network in networks
            for length, networks in by_length.items()
        )
        (aliased_hits if in_aliased else clean_hits).add(value)
    return aliased_hits, clean_hits


def as_level_inspection(
    clean_hits: Iterable[int],
    bgp: BgpTable,
    scanner: Scanner,
    *,
    top_k: int = 10,
    length: int = 112,
    aliased_fraction: float = 0.5,
    port: int = DEFAULT_PORT,
    rng_seed: int | None = 1,
    workers: int = 1,
    telemetry: Telemetry | None = None,
) -> set[int]:
    """Find ASes aliased at a finer granularity than /96 (§6.2's manual step).

    For each of the ``top_k`` ASes by remaining hits, tests every
    hit-containing /length prefix with the random-probe method; an AS
    is flagged when more than ``aliased_fraction`` of its tested
    prefixes are aliased.  All per-prefix tests across the inspected
    ASes form one flat work list, sharded over ``workers`` processes.
    """
    tele = ensure(telemetry)
    base = _base_key(rng_seed)
    by_asn: dict[int, list[int]] = defaultdict(list)
    for addr in clean_hits:
        asn = bgp.origin_asn(int(addr))
        if asn is not None:
            by_asn[asn].append(int(addr))
    top_ases = sorted(by_asn, key=lambda a: -len(by_asn[a]))[:top_k]
    tests: list[tuple[int, Prefix, int]] = []
    for asn in top_ases:
        for prefix, addrs in sorted(group_hits_by_prefix(by_asn[asn], length).items()):
            tests.append((asn, prefix, len(addrs)))
    with tele.span("as_inspection", ases=len(top_ases), prefixes=len(tests)):
        flags = _run_alias_tests(
            [(prefix, _derived_seed(base, prefix)) for _, prefix, _ in tests],
            scanner,
            sample_addrs=3,
            probes_per_addr=3,
            port=port,
            workers=workers,
        )
    if tele.enabled:
        tele.count("dealias.as_prefixes_tested", len(tests))
    # Weight by hits, not by prefix count: an AS whose hits
    # overwhelmingly sit inside aliased sub-prefixes is flagged even
    # if it also has a few genuine host prefixes.
    aliased_by_asn: dict[int, int] = defaultdict(int)
    for (asn, _, addr_count), flagged_prefix in zip(tests, flags):
        if flagged_prefix:
            aliased_by_asn[asn] += addr_count
    flagged_asns = {
        asn
        for asn in top_ases
        if by_asn[asn] and aliased_by_asn[asn] / len(by_asn[asn]) > aliased_fraction
    }
    if tele.enabled:
        tele.count("dealias.aliased_asns", len(flagged_asns))
    return flagged_asns


@dataclass
class AliasedSummary:
    """Aggregation of detected aliased prefixes (paper §6.2 reporting).

    The paper collapses its 10.0 M aliased /96s to "205 routed prefixes
    in 138 ASes"; this mirrors that roll-up.
    """

    aliased_prefix_count: int
    routed_prefixes: set[Prefix] = field(default_factory=set)
    asns: set[int] = field(default_factory=set)


def summarize_aliased_prefixes(
    aliased_prefixes: Iterable[Prefix], bgp: BgpTable
) -> AliasedSummary:
    """Collapse detected aliased prefixes to routed prefixes and ASes."""
    summary = AliasedSummary(aliased_prefix_count=0)
    for prefix in aliased_prefixes:
        summary.aliased_prefix_count += 1
        route = bgp.lookup(prefix.network)
        if route is not None:
            summary.routed_prefixes.add(route.prefix)
            summary.asns.add(route.asn)
    return summary


@dataclass
class DealiasReport:
    """Full §6.2 dealiasing outcome for one hit set."""

    aliased_prefixes: set[Prefix] = field(default_factory=set)
    aliased_asns: set[int] = field(default_factory=set)
    aliased_hits: set[int] = field(default_factory=set)
    clean_hits: set[int] = field(default_factory=set)

    @property
    def total_hits(self) -> int:
        return len(self.aliased_hits) + len(self.clean_hits)

    def aliased_fraction(self) -> float:
        """Fraction of raw hits in aliased space (the paper's 98 %)."""
        total = self.total_hits
        return len(self.aliased_hits) / total if total else 0.0


def dealias(
    hits: Iterable[int],
    scanner: Scanner,
    bgp: BgpTable | None = None,
    *,
    length: int = 96,
    as_inspection: bool = True,
    port: int = DEFAULT_PORT,
    rng_seed: int | None = 0,
    workers: int = 1,
    telemetry: Telemetry | None = None,
) -> DealiasReport:
    """Run the full dealiasing pipeline: /96 detection + AS inspection.

    ``workers`` > 1 shards the independent per-prefix alias tests over
    a process pool; the report is identical for any worker count.
    """
    tele = ensure(telemetry)
    hit_set = {int(h) for h in hits}
    with tele.span("dealias", hits=len(hit_set), workers=workers):
        aliased_prefixes = detect_aliased_prefixes(
            hit_set, scanner, length=length, port=port, rng_seed=rng_seed,
            workers=workers, telemetry=tele,
        )
        aliased_hits, clean_hits = split_hits(hit_set, aliased_prefixes)
        aliased_asns: set[int] = set()
        if as_inspection and bgp is not None and clean_hits:
            aliased_asns = as_level_inspection(
                clean_hits, bgp, scanner, port=port, rng_seed=rng_seed,
                workers=workers, telemetry=tele,
            )
            if aliased_asns:
                moved = {
                    addr for addr in clean_hits
                    if bgp.origin_asn(addr) in aliased_asns
                }
                clean_hits -= moved
                aliased_hits |= moved
                tele.count("dealias.hits_moved_by_as_inspection", len(moved))
    report = DealiasReport(
        aliased_prefixes=aliased_prefixes,
        aliased_asns=aliased_asns,
        aliased_hits=aliased_hits,
        clean_hits=clean_hits,
    )
    if tele.enabled:
        tele.count("dealias.hits_in", len(hit_set))
        tele.count("dealias.aliased_hits", len(report.aliased_hits))
        tele.count("dealias.clean_hits", len(report.clean_hits))
        tele.event(
            "dealias_summary",
            {
                "hits_in": len(hit_set),
                "aliased_prefixes": len(report.aliased_prefixes),
                "aliased_asns": sorted(report.aliased_asns),
                "aliased_hits": len(report.aliased_hits),
                "clean_hits": len(report.clean_hits),
                "aliased_fraction": round(report.aliased_fraction(), 6),
            },
        )
    return report
