"""Aliased-prefix detection and hit filtering (paper §6.2).

The paper's best-effort dealiasing: for every /96 prefix containing a
responsive target, probe three random addresses in the prefix with
three TCP SYNs each; if all three addresses respond, the prefix is
aliased (the chance of three random picks all hitting real hosts in a
non-aliased /96 is negligible — below 1e-10 even with a million hosts
in the prefix).

Because /96 probing cannot see finer-grained aliasing, the paper then
manually inspected the top-10 ASes of the remaining hits and found two
(Cloudflare, Mittwald) aliased at /112.  :func:`as_level_inspection`
automates that step: it re-runs the random-probe test at /112 inside
the top ASes and excludes ASes where most hit-/112s test aliased.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from ..ipv6.prefix import Prefix
from ..simnet.bgp import BgpTable
from .engine import Scanner
from .probe import DEFAULT_PORT


def group_hits_by_prefix(hits: Iterable[int], length: int = 96) -> dict[Prefix, list[int]]:
    """Group responsive addresses by their containing /length prefix."""
    groups: dict[Prefix, list[int]] = defaultdict(list)
    for addr in hits:
        groups[Prefix.containing(int(addr), length)].append(int(addr))
    return dict(groups)


def is_prefix_aliased(
    prefix: Prefix,
    scanner: Scanner,
    rng: random.Random,
    *,
    sample_addrs: int = 3,
    probes_per_addr: int = 3,
    port: int = DEFAULT_PORT,
) -> bool:
    """The paper's random-probe aliasing test for one prefix.

    Draws ``sample_addrs`` random addresses in the prefix and sends
    ``probes_per_addr`` probes to each; the prefix is aliased iff every
    sampled address answers at least once.
    """
    for _ in range(sample_addrs):
        addr = prefix.random_address(rng).value
        if not any(scanner.probe(addr, port) for _ in range(probes_per_addr)):
            return False
    return True


def detect_aliased_prefixes(
    hits: Iterable[int],
    scanner: Scanner,
    *,
    length: int = 96,
    sample_addrs: int = 3,
    probes_per_addr: int = 3,
    port: int = DEFAULT_PORT,
    rng_seed: int | None = 0,
) -> set[Prefix]:
    """All hit-containing /length prefixes that test as aliased."""
    rng = random.Random(rng_seed)
    aliased: set[Prefix] = set()
    for prefix in group_hits_by_prefix(hits, length):
        if is_prefix_aliased(
            prefix,
            scanner,
            rng,
            sample_addrs=sample_addrs,
            probes_per_addr=probes_per_addr,
            port=port,
        ):
            aliased.add(prefix)
    return aliased


def split_hits(
    hits: Iterable[int], aliased_prefixes: set[Prefix]
) -> tuple[set[int], set[int]]:
    """Partition hits into (aliased, clean) by the detected prefixes."""
    by_length: dict[int, set[int]] = defaultdict(set)
    for prefix in aliased_prefixes:
        by_length[prefix.length].add(prefix.network)
    aliased_hits: set[int] = set()
    clean_hits: set[int] = set()
    for addr in hits:
        value = int(addr)
        in_aliased = any(
            Prefix.containing(value, length).network in networks
            for length, networks in by_length.items()
        )
        (aliased_hits if in_aliased else clean_hits).add(value)
    return aliased_hits, clean_hits


def as_level_inspection(
    clean_hits: Iterable[int],
    bgp: BgpTable,
    scanner: Scanner,
    *,
    top_k: int = 10,
    length: int = 112,
    aliased_fraction: float = 0.5,
    port: int = DEFAULT_PORT,
    rng_seed: int | None = 1,
) -> set[int]:
    """Find ASes aliased at a finer granularity than /96 (§6.2's manual step).

    For each of the ``top_k`` ASes by remaining hits, tests every
    hit-containing /length prefix with the random-probe method; an AS
    is flagged when more than ``aliased_fraction`` of its tested
    prefixes are aliased.
    """
    rng = random.Random(rng_seed)
    by_asn: dict[int, list[int]] = defaultdict(list)
    for addr in clean_hits:
        asn = bgp.origin_asn(int(addr))
        if asn is not None:
            by_asn[asn].append(int(addr))
    flagged: set[int] = set()
    top_ases = sorted(by_asn, key=lambda a: -len(by_asn[a]))[:top_k]
    for asn in top_ases:
        prefixes = group_hits_by_prefix(by_asn[asn], length)
        if not prefixes:
            continue
        # Weight by hits, not by prefix count: an AS whose hits
        # overwhelmingly sit inside aliased sub-prefixes is flagged even
        # if it also has a few genuine host prefixes.
        aliased_hits = sum(
            len(addrs)
            for prefix, addrs in prefixes.items()
            if is_prefix_aliased(prefix, scanner, rng, port=port)
        )
        if aliased_hits / len(by_asn[asn]) > aliased_fraction:
            flagged.add(asn)
    return flagged


@dataclass
class AliasedSummary:
    """Aggregation of detected aliased prefixes (paper §6.2 reporting).

    The paper collapses its 10.0 M aliased /96s to "205 routed prefixes
    in 138 ASes"; this mirrors that roll-up.
    """

    aliased_prefix_count: int
    routed_prefixes: set[Prefix] = field(default_factory=set)
    asns: set[int] = field(default_factory=set)


def summarize_aliased_prefixes(
    aliased_prefixes: Iterable[Prefix], bgp: BgpTable
) -> AliasedSummary:
    """Collapse detected aliased prefixes to routed prefixes and ASes."""
    summary = AliasedSummary(aliased_prefix_count=0)
    for prefix in aliased_prefixes:
        summary.aliased_prefix_count += 1
        route = bgp.lookup(prefix.network)
        if route is not None:
            summary.routed_prefixes.add(route.prefix)
            summary.asns.add(route.asn)
    return summary


@dataclass
class DealiasReport:
    """Full §6.2 dealiasing outcome for one hit set."""

    aliased_prefixes: set[Prefix] = field(default_factory=set)
    aliased_asns: set[int] = field(default_factory=set)
    aliased_hits: set[int] = field(default_factory=set)
    clean_hits: set[int] = field(default_factory=set)

    @property
    def total_hits(self) -> int:
        return len(self.aliased_hits) + len(self.clean_hits)

    def aliased_fraction(self) -> float:
        """Fraction of raw hits in aliased space (the paper's 98 %)."""
        total = self.total_hits
        return len(self.aliased_hits) / total if total else 0.0


def dealias(
    hits: Iterable[int],
    scanner: Scanner,
    bgp: BgpTable | None = None,
    *,
    length: int = 96,
    as_inspection: bool = True,
    port: int = DEFAULT_PORT,
    rng_seed: int | None = 0,
) -> DealiasReport:
    """Run the full dealiasing pipeline: /96 detection + AS inspection."""
    hit_set = {int(h) for h in hits}
    aliased_prefixes = detect_aliased_prefixes(
        hit_set, scanner, length=length, port=port, rng_seed=rng_seed
    )
    aliased_hits, clean_hits = split_hits(hit_set, aliased_prefixes)
    aliased_asns: set[int] = set()
    if as_inspection and bgp is not None and clean_hits:
        aliased_asns = as_level_inspection(
            clean_hits, bgp, scanner, port=port, rng_seed=rng_seed
        )
        if aliased_asns:
            moved = {
                addr for addr in clean_hits if bgp.origin_asn(addr) in aliased_asns
            }
            clean_hits -= moved
            aliased_hits |= moved
    return DealiasReport(
        aliased_prefixes=aliased_prefixes,
        aliased_asns=aliased_asns,
        aliased_hits=aliased_hits,
        clean_hits=clean_hits,
    )
