"""Simulated ZMap-style scan engine (stand-in for ZMap-v6, §6).

Probes the simulated ground truth instead of the live Internet.  The
engine reproduces the operational properties that matter to the
algorithms under test:

* every probe is counted (probe budgets are the paper's core resource);
* targets are deduplicated and scanned in randomised order (the paper
  randomises destination order to avoid overloading networks);
* a blacklist is honoured unconditionally;
* optional probe loss models an unreliable network path, and repeated
  probes can recover from it (used for failure-injection tests).

The bulk path is a streaming, batched pipeline.  Targets stream in
(deduplicated in insertion order), probe order is a ZMap-style cyclic
permutation of the index space (:class:`~repro.scanner.schedule.
CyclicPermutation` — O(1) auxiliary memory, no shuffled copy), and
chunks flow through batched blacklist / loss / ground-truth lookups,
optionally sharded across a process pool (:attr:`ScanConfig.workers`).
A per-address sequential reference path (``use_batched=False``) is
kept as the correctness oracle: for a fixed ``rng_seed`` both paths —
and any worker count — produce identical hits *and* identical
:class:`~repro.scanner.probe.ScanStats`, because probe order is the
shared permutation and scan-time probe loss is a pure function of
``(scan key, address)`` rather than a draw from a sequential RNG
stream.  ``benchmarks/bench_scan.py`` enforces the parity on every
run.

Robustness extensions (all default-off, all parity-preserving):

* **Retries** (:attr:`ScanConfig.retries`): after the first pass,
  non-responding, non-blacklisted targets are re-probed for up to
  ``retries`` extra rounds.  Round ``r`` keys the loss PRF with
  ``mix64(loss_key + r)`` (round 0 keeps the raw ``loss_key``, so
  ``retries=0`` output is bit-identical to a scanner without the
  feature) and passes ``attempt=r`` to the ground truth so fault
  models (:mod:`repro.faults`) see the retransmission number.
  Retransmissions are tallied in ``ScanStats.retransmits``, never in
  ``probes_sent`` — budgets stay first-attempt budgets.
* **Checkpoint/resume** (:meth:`Scanner.scan` ``checkpoint=`` /
  ``resume=``): progress streams through a crash-safe
  :class:`~repro.scanner.checkpoint.ScanCheckpointer`; a resumed scan
  replays the recorded keys over the same target stream and finishes
  with hits and stats identical to an uninterrupted run (see
  :mod:`repro.scanner.checkpoint` for the argument).
* **Crash injection** (``crash=``): a
  :class:`~repro.faults.WorkerCrash` spec raises at a chosen batch,
  in-process or inside a pool worker — the test hook behind the
  resume-parity CI job.
"""

from __future__ import annotations

import itertools
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from ..ipv6.addrplane import (
    ColumnDeduper,
    concat_columns,
    dedupe_columns,
    fuse,
    is_columns,
    unpack,
)
from ..simnet.ground_truth import GroundTruth
from ..telemetry.metrics import MetricsSnapshot
from ..telemetry.spans import Telemetry, ensure
from .blacklist import Blacklist
from .plane import ScanPlane, loss_prf_arr
from .probe import DEFAULT_PORT, ScanResult, ScanStats
from .schedule import CyclicPermutation, mix64

try:  # posix-only; the peak-RSS gauge degrades to absent elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-posix
    _resource = None

if TYPE_CHECKING:  # import cycles avoided: these are type-only
    from ..faults.models import WorkerCrash
    from .checkpoint import ResumeState, ScanCheckpointer

_M64 = (1 << 64) - 1
#: Domain-separation constants for the keys derived from ``rng_seed``.
_ORDER_SALT = 0x5C4E06D3A1B2C4D5
_PROBE_SALT = 0x9E3779B97F4A7C15
#: Minimum probe_many batch worth routing through the array plane;
#: below this the numpy call overhead outweighs the vectorisation.
_ARRAY_PROBE_MIN = 32


def _loss_prf(key: int, addr: int) -> float:
    """Uniform-in-[0,1) pseudo-random function of ``(key, address)``.

    Scan-time probe loss uses this instead of a sequential RNG stream
    so outcomes do not depend on probe order or worker sharding — the
    property that makes the batched, multi-process paths bit-identical
    to the sequential reference.
    """
    h = mix64(key ^ (addr & _M64))
    h = mix64(h ^ (addr >> 64))
    return h / 18446744073709551616.0  # 2**64


def _columns_to_list(cols: "tuple[np.ndarray, np.ndarray]") -> list[int]:
    """Unpack target columns into the boxed ordered list.

    Isolated (instead of calling ``unpack`` inline) so tests can assert
    the pure column path never materialises a boxed list.
    """
    return unpack(cols[0], cols[1])


def _normalize_targets(
    targets,
) -> "tuple[list[int] | None, tuple[np.ndarray, np.ndarray] | None]":
    """Split a target source into ``(ordered ints, packed columns)``.

    Exactly one of the two is non-None.  Accepted sources:

    * packed ``(hi, lo)`` columns, or an iterable of column chunks (the
      generation plane's streaming handoff) — deduplicated first-seen
      via fused-key sort/unique, never boxing an int;
    * a ``list`` of ints — deduplicated without the ``map(int, ...)``
      re-boxing pass (elements are assumed type-homogeneous, judged by
      the first, the same idiom ``addrplane.pack`` uses);
    * any other iterable — the original coerce-and-dedupe path.

    Every variant preserves first-seen order, so probe order — and
    therefore loss outcomes — stay deterministic and identical across
    input forms.
    """
    if is_columns(targets):
        return None, dedupe_columns(*targets)
    if isinstance(targets, list):
        if not targets or isinstance(targets[0], int):
            return list(dict.fromkeys(targets)), None
        return list(dict.fromkeys(map(int, targets))), None
    iterator = iter(targets)
    try:
        first = next(iterator)
    except StopIteration:
        return [], None
    if is_columns(first):
        dedupe = ColumnDeduper()
        chunks = [dedupe.add(*first)]
        chunks.extend(dedupe.add(*chunk) for chunk in iterator)
        return None, concat_columns(chunks)
    return (
        list(dict.fromkeys(map(int, itertools.chain((first,), iterator)))),
        None,
    )


def _round_key(loss_key: int, round_: int) -> int:
    """Loss-PRF key for one scan round.

    Round 0 uses the raw scan loss key — this is load-bearing for
    parity: a ``retries=0`` scan must consume exactly the key material
    a pre-retry scanner did.  Retry rounds re-key with the round
    number, mirroring ``probe_many``'s per-attempt scheme, so each
    retransmission is an independent loss draw.
    """
    return loss_key if round_ == 0 else mix64(loss_key + round_)


@dataclass(frozen=True)
class ScanConfig:
    """Execution parameters for :meth:`Scanner.scan`.

    ``batch_size`` is the chunk granularity of the streaming pipeline;
    ``workers`` > 1 shards chunks across a process pool (1 keeps the
    scan in-process); ``use_batched=False`` selects the per-address
    sequential reference path (the correctness oracle the benchmark
    compares against).  All settings produce identical results for a
    fixed ``rng_seed`` — they only trade memory and speed.
    """

    batch_size: int = 4096
    workers: int = 1
    use_batched: bool = True
    #: Run batches on the array-native scan plane (packed uint64 hi/lo
    #: columns, vectorised lookups, shared-memory worker shards) when
    #: the truth/blacklist types support it.  Parity-gated: verdicts
    #: are bit-identical to the object path, this only trades speed.
    use_arrays: bool = True
    #: Extra probe rounds for non-responders (0 = single-pass, the
    #: pre-retry behaviour, bit-identical output).
    retries: int = 0
    #: Virtual seconds waited between retry rounds.  The simulator has
    #: no wall clock, so this is operational bookkeeping only: it is
    #: reported through telemetry (``scan_summary.backoff_seconds``)
    #: and never changes probe outcomes — retries already land in
    #: fresh rate-limiter windows because the attempt number keys the
    #: fault PRFs.
    retry_backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {self.batch_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0: {self.retry_backoff}"
            )


@dataclass
class _PreparedScan:
    """Output of ``Scanner._prepare_scan``: the inputs one scan runs on.

    ``completed`` is set (and everything else meaningless) when a
    resume state already recorded ``scan_complete``.
    """

    ordered: "list[int] | None" = None
    cols: "tuple[np.ndarray, np.ndarray] | None" = None
    n: int = 0
    perm: CyclicPermutation | None = None
    loss_key: int = 0
    completed: ScanResult | None = None


class Scanner:
    """A probe engine bound to one ground truth."""

    def __init__(
        self,
        truth: GroundTruth,
        *,
        blacklist: Blacklist | None = None,
        loss_rate: float = 0.0,
        rng_seed: int | None = 0,
        config: ScanConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.truth = truth
        self.blacklist = blacklist or Blacklist()
        self.loss_rate = loss_rate
        self.config = config or ScanConfig()
        # Telemetry is strictly passive: it never draws from an RNG or
        # reorders probes, so hits and stats are identical with it on
        # or off (tests/test_telemetry.py enforces this).
        self.telemetry = ensure(telemetry)
        self._rng = random.Random(rng_seed)
        self._rng_seed = rng_seed
        # Independent deterministic streams so single-probe callers
        # (probe / probe_retry) and bulk scans never perturb each other:
        # scan order/loss keys come from _order_rng, the batched-prober
        # loss PRF from _probe_key.  A worker process rebuilt from the
        # same rng_seed derives the same keys, which is what makes
        # parallel dealiasing reproduce the serial decisions.
        if rng_seed is None:
            self._order_rng = random.Random()
            self._probe_key = random.Random().getrandbits(64)
        else:
            self._order_rng = random.Random(int(rng_seed) ^ _ORDER_SALT)
            self._probe_key = mix64(int(rng_seed) ^ _PROBE_SALT)
        self.total_probes = 0

    def skip_scan_keys(self, scans: int = 1) -> None:
        """Advance the scan-key stream past ``scans`` completed scans.

        Every scan draws one (perm, loss) key pair from ``_order_rng``
        in sequence.  A process resuming a multi-scan campaign replays
        completed scans from their checkpoints instead of re-running
        them, so it must burn their key pairs to keep later scans on
        the same keys an uninterrupted run would draw.
        """
        if scans < 0:
            raise ValueError(f"scans must be >= 0: {scans}")
        for _ in range(scans):
            self._order_rng.getrandbits(64)
            self._order_rng.getrandbits(64)

    # -- single probe -------------------------------------------------------
    def probe(self, addr: int, port: int = DEFAULT_PORT) -> bool:
        """Send one probe; returns True on a SYN-ACK.

        Blacklisted addresses are never probed (and count as no
        response).  Probe loss applies before the ground-truth check.
        """
        if self.blacklist.contains(addr):
            return False
        self.total_probes += 1
        if self.loss_rate and self._rng.random() < self.loss_rate:
            return False
        return self.truth.is_responsive(int(addr), port)

    def probe_retry(
        self,
        addr: int,
        port: int = DEFAULT_PORT,
        attempts: int = 3,
        *,
        stats: ScanStats | None = None,
    ) -> bool:
        """Probe with retries (used by the dealiasing prober).

        Blacklisted targets short-circuit before the retry loop — the
        blacklist verdict cannot change between attempts — and are
        counted once in ``stats`` when given.
        """
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1: {attempts}")
        if self.blacklist.contains(addr):
            if stats is not None:
                stats.blacklisted += 1
            return False
        return any(self.probe(addr, port) for _ in range(attempts))

    def probe_many(
        self,
        addrs: Sequence[int],
        port: int = DEFAULT_PORT,
        *,
        attempts: int = 1,
        stats: ScanStats | None = None,
    ) -> list[bool]:
        """Batched probe-with-retries; one flag per address, in order.

        The blacklist is consulted once per address (not once per
        attempt), losses use the order-independent PRF keyed on
        ``(rng_seed, address, attempt)``, and ground-truth lookups are
        batched.  Addresses that respond stop retrying; the rest get up
        to ``attempts`` rounds.

        ``stats.probes_sent`` counts every attempt (the dealiasing
        prober has always budgeted per-attempt); attempts after the
        first are *additionally* tallied in ``stats.retransmits``.
        """
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1: {attempts}")
        addrs = [int(a) for a in addrs]
        if len(addrs) >= _ARRAY_PROBE_MIN and ScanPlane.supports(
            self.truth, self.blacklist
        ):
            return self._probe_many_arr(addrs, port, attempts, stats)
        results = [False] * len(addrs)
        if self.blacklist:
            flags = self.blacklist.contains_many(addrs)
            pending = [i for i, flagged in enumerate(flags) if not flagged]
            if stats is not None:
                stats.blacklisted += len(addrs) - len(pending)
        else:
            pending = list(range(len(addrs)))
        loss = self.loss_rate
        for attempt in range(attempts):
            if not pending:
                break
            batch = [addrs[i] for i in pending]
            self.total_probes += len(batch)
            if stats is not None:
                stats.probes_sent += len(batch)
                if attempt > 0:
                    stats.retransmits += len(batch)
            if loss:
                attempt_key = mix64(self._probe_key + attempt)
                kept = []
                for i, a in zip(pending, batch):
                    if _loss_prf(attempt_key, a) < loss:
                        if stats is not None:
                            stats.dropped += 1
                    else:
                        kept.append(i)
            else:
                kept = pending
            if kept:
                flags = self.truth.responsive_many(
                    [addrs[i] for i in kept], port, attempt=attempt
                )
                for i, responded in zip(kept, flags):
                    if responded:
                        results[i] = True
                        if stats is not None:
                            stats.responses += 1
            pending = [i for i in pending if not results[i]]
        return results

    def _probe_many_arr(
        self,
        addrs: list[int],
        port: int,
        attempts: int,
        stats: ScanStats | None,
    ) -> list[bool]:
        """Array-native :meth:`probe_many`: identical verdicts and stats."""
        import numpy as np

        from ..ipv6.addrplane import pack

        hi, lo = pack(addrs)
        results = np.zeros(len(addrs), dtype=bool)
        if self.blacklist:
            blocked = self.blacklist.contains_arr(hi, lo)
            pending = np.flatnonzero(~blocked)
            if stats is not None:
                stats.blacklisted += len(addrs) - len(pending)
        else:
            pending = np.arange(len(addrs))
        loss = self.loss_rate
        for attempt in range(attempts):
            if not len(pending):
                break
            self.total_probes += len(pending)
            if stats is not None:
                stats.probes_sent += len(pending)
                if attempt > 0:
                    stats.retransmits += len(pending)
            if loss:
                attempt_key = mix64(self._probe_key + attempt)
                lost = (
                    loss_prf_arr(attempt_key, hi[pending], lo[pending]) < loss
                )
                if stats is not None:
                    stats.dropped += int(lost.sum())
                kept = pending[~lost]
            else:
                kept = pending
            if len(kept):
                flags = self.truth.responsive_many_arr(
                    hi[kept], lo[kept], port, attempt=attempt
                )
                responded = kept[flags]
                results[responded] = True
                if stats is not None:
                    stats.responses += len(responded)
            pending = pending[~results[pending]]
        return results.tolist()

    # -- bulk scan ------------------------------------------------------------
    def _prepare_scan(
        self,
        targets: Iterable[int],
        port: int,
        *,
        shuffle: bool,
        checkpoint: "ScanCheckpointer | None",
        resume: "ResumeState | None",
    ) -> "_PreparedScan":
        """Everything before the first probe, shared by scan paths.

        Normalises the target source, draws the scan keys, verifies and
        applies a resume state, and writes the ``scan_begin`` record.
        Returns the prepared inputs — or, for a resume state that
        already recorded completion, the finished result (``completed``
        set, nothing else valid).
        """
        config = self.config
        ordered, cols = _normalize_targets(targets)
        if cols is not None:
            plane_ok = (
                config.use_batched
                and config.use_arrays
                and ScanPlane.supports(self.truth, self.blacklist)
            )
            if not shuffle:
                # Fused-key argsort == numeric ascending == the scalar
                # path's ordered.sort() on the unpacked list.
                order = np.argsort(fuse(*cols))
                cols = (cols[0][order], cols[1][order])
            if not plane_ok or checkpoint is not None or resume is not None:
                # The reference/object paths walk boxed ints, and the
                # checkpoint digest is defined over them; the plane
                # keeps the columns whenever it can use them.
                ordered = _columns_to_list(cols)
                if not plane_ok:
                    cols = None
        elif not shuffle:
            ordered.sort()
        n = len(ordered) if ordered is not None else len(cols[0])
        # Both paths draw the same keys in the same order so reference
        # and batched scans consume _order_rng identically — and a
        # resumed scan still draws them (then discards them in favour
        # of the recorded keys) so later scans on this Scanner see an
        # unshifted key stream.
        perm_key = self._order_rng.getrandbits(64)
        loss_key = self._order_rng.getrandbits(64)
        if (checkpoint or resume) and not config.use_batched:
            raise ValueError(
                "checkpoint/resume/crash-injection require the batched "
                "scan path (use_batched=True)"
            )
        digest = None
        if checkpoint is not None or resume is not None:
            from .checkpoint import target_digest

            digest = target_digest(ordered)
        if resume is not None:
            if (
                resume.digest != digest
                or resume.target_count != n
                or resume.port != port
                or resume.retries != config.retries
            ):
                raise ValueError(
                    "checkpoint does not match this scan "
                    f"(targets={n}/{resume.target_count}, "
                    f"port={port}/{resume.port}, "
                    f"retries={config.retries}/{resume.retries}, "
                    "digest "
                    + ("ok)" if resume.digest == digest else "MISMATCH)")
                )
            perm_key, loss_key = resume.perm_key, resume.loss_key
            if resume.complete:
                # The recorded run already finished — hand back its
                # result without re-probing (or re-counting probes).
                if self.telemetry.enabled:
                    self.telemetry.count("scan.resumed_complete")
                return _PreparedScan(
                    completed=ScanResult(
                        port=port,
                        hits=set(resume.hits),
                        stats=resume.stats.copy(),
                    )
                )
        perm = (
            CyclicPermutation(n, perm_key)
            if shuffle and n > 1
            else None
        )
        if checkpoint is not None:
            checkpoint.begin(
                perm_key=perm_key,
                loss_key=loss_key,
                targets=n,
                digest=digest,
                port=port,
                retries=config.retries,
            )
            if resume is not None:
                # Make the file self-contained from this scan_begin on,
                # so a resumed run can itself be resumed.
                checkpoint.baseline(
                    round_=resume.round,
                    next_batch=resume.next_batch,
                    stats=resume.stats,
                    hits=resume.hits,
                )
        return _PreparedScan(
            ordered=ordered, cols=cols, n=n, perm=perm, loss_key=loss_key
        )

    def scan(
        self,
        targets: Iterable[int],
        port: int = DEFAULT_PORT,
        *,
        shuffle: bool = True,
        checkpoint: "ScanCheckpointer | None" = None,
        resume: "ResumeState | None" = None,
        crash: "WorkerCrash | None" = None,
    ) -> ScanResult:
        """Probe each distinct target; collect responsive addresses.

        Targets may be any iterable (a generator streams straight in);
        they are deduplicated preserving first-seen order, which keeps
        probe order — and therefore loss outcomes — deterministic for a
        fixed ``rng_seed`` regardless of CPython build (a plain
        ``set`` dedupe does not guarantee that).

        ``checkpoint`` streams progress through a
        :class:`~repro.scanner.checkpoint.ScanCheckpointer`;
        ``resume`` replays a loaded
        :class:`~repro.scanner.checkpoint.ResumeState` (the caller must
        supply the same target stream, port, and retry budget — this is
        verified against the recorded digest).  ``crash`` arms a
        :class:`~repro.faults.WorkerCrash` fault, the deterministic
        kill switch the resume-parity tests use.  All three require the
        batched path.
        """
        config = self.config
        if crash is not None and not config.use_batched:
            raise ValueError(
                "checkpoint/resume/crash-injection require the batched "
                "scan path (use_batched=True)"
            )
        prep = self._prepare_scan(
            targets, port, shuffle=shuffle, checkpoint=checkpoint,
            resume=resume,
        )
        if prep.completed is not None:
            return prep.completed
        tele = self.telemetry
        with tele.span(
            "scan", port=port, targets=prep.n, workers=config.workers
        ):
            start = time.perf_counter()
            if config.use_batched:
                result = self._scan_batched(
                    prep.ordered, prep.perm, prep.loss_key, port, config,
                    checkpoint=checkpoint, resume=resume, crash=crash,
                    cols=prep.cols,
                )
            else:
                result = self._scan_reference(
                    prep.ordered, prep.perm, prep.loss_key, port, config
                )
            elapsed = time.perf_counter() - start
        self.total_probes += result.stats.probes_sent + result.stats.retransmits
        self._emit_scan_summary(result, prep.n, elapsed, port, config)
        return result

    def start_execution(
        self,
        targets: Iterable[int],
        port: int = DEFAULT_PORT,
        *,
        shuffle: bool = True,
        checkpoint: "ScanCheckpointer | None" = None,
        resume: "ResumeState | None" = None,
        crash: "WorkerCrash | None" = None,
    ):
        """Begin a scan as a stepwise :class:`~repro.scanner.execution.
        ScanExecution` instead of running it to completion.

        The returned execution performs the identical batch sequence an
        in-process :meth:`scan` would (same keys, same verdicts, same
        checkpoints), one batch per :meth:`~repro.scanner.execution.
        ScanExecution.step` — the primitive the multi-tenant campaign
        scheduler interleaves.  Requires the batched path; executions
        always run in-process (worker pools belong to :meth:`scan`).
        """
        from .execution import ScanExecution

        config = self.config
        if not config.use_batched:
            raise ValueError(
                "stepwise execution requires the batched scan path "
                "(use_batched=True)"
            )
        prep = self._prepare_scan(
            targets, port, shuffle=shuffle, checkpoint=checkpoint,
            resume=resume,
        )
        if prep.completed is not None:
            return ScanExecution(
                self, ordered=None, cols=None, perm=None, loss_key=0,
                port=port, config=config, completed=prep.completed,
            )
        return ScanExecution(
            self,
            ordered=prep.ordered,
            cols=prep.cols,
            perm=prep.perm,
            loss_key=prep.loss_key,
            port=port,
            config=config,
            checkpoint=checkpoint,
            resume=resume,
            crash=crash,
            finalize=True,
        )

    def _emit_scan_summary(
        self,
        result: ScanResult,
        n: int,
        elapsed: float,
        port: int,
        config: ScanConfig,
    ) -> None:
        """Post-scan telemetry, shared by monolithic and stepwise paths."""
        tele = self.telemetry
        if not tele.enabled:
            return
        tele.count("scan.runs")
        tele.count("scan.targets", n)
        tele.count("scan.hits", len(result.hits))
        # One conversion from the final (parity-gated) stats for
        # every execution path, so counter totals are identical for
        # any batch size or worker count.
        tele.merge_snapshot(scan_stats_snapshot(result.stats))
        if elapsed > 0:
            tele.gauge(
                "scan.probes_per_sec", result.stats.probes_sent / elapsed
            )
        if _resource is not None:
            # Gauges merge by max, so across runs this reports the
            # campaign's peak resident set (KiB on Linux) — the
            # memory axis of `repro report --against` comparisons.
            tele.gauge(
                "scan.peak_rss_kib",
                float(
                    _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
                ),
            )
        tele.event(
            "scan_summary",
            {
                "port": port,
                "targets": n,
                "hits": len(result.hits),
                "probes_sent": result.stats.probes_sent,
                "blacklisted": result.stats.blacklisted,
                "dropped": result.stats.dropped,
                "retransmits": result.stats.retransmits,
                "retries": config.retries,
                "backoff_seconds": round(
                    config.retry_backoff * config.retries, 6
                ),
                "hit_rate": round(result.stats.hit_rate, 6),
                "workers": config.workers,
                "seconds": round(elapsed, 6),
            },
        )

    def _scan_reference(
        self,
        ordered: list[int],
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
        config: ScanConfig | None = None,
    ) -> ScanResult:
        """Per-address loop: the readable spec the batched path must match."""
        config = config or self.config
        stats = ScanStats()
        hits: set[int] = set()
        loss = self.loss_rate
        for index in range(len(ordered)):
            addr = ordered[perm(index)] if perm is not None else ordered[index]
            if self.blacklist.contains(addr):
                stats.blacklisted += 1
                continue
            stats.probes_sent += 1
            if loss and _loss_prf(loss_key, addr) < loss:
                stats.dropped += 1
                continue
            if self.truth.is_responsive(addr, port):
                stats.responses += 1
                hits.add(addr)
        # Retry rounds: re-walk the permuted order, skipping responders
        # and blacklisted targets.  Blacklist verdicts are not
        # re-counted (the verdict cannot change between rounds).
        for round_ in range(1, config.retries + 1):
            key = _round_key(loss_key, round_)
            pending_seen = False
            for index in range(len(ordered)):
                addr = (
                    ordered[perm(index)] if perm is not None else ordered[index]
                )
                if addr in hits or self.blacklist.contains(addr):
                    continue
                pending_seen = True
                stats.retransmits += 1
                if loss and _loss_prf(key, addr) < loss:
                    stats.dropped += 1
                    continue
                if self.truth.is_responsive(addr, port, attempt=round_):
                    stats.responses += 1
                    hits.add(addr)
            if not pending_seen:
                break
        return ScanResult(port=port, hits=hits, stats=stats)

    def _scan_batched(
        self,
        ordered: list[int] | None,
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
        config: ScanConfig,
        *,
        checkpoint: "ScanCheckpointer | None" = None,
        resume: "ResumeState | None" = None,
        crash: "WorkerCrash | None" = None,
        cols: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> ScanResult:
        # ``ordered`` is None only on the pure column path, where the
        # caller guarantees the array plane applies (so the object-path
        # branches in the execution, which need boxed ints, are
        # unreachable).  The batch loop itself lives in ScanExecution
        # (one batch per step); this driver only decides whether round
        # 0 runs through a worker pool first.
        from .execution import ScanExecution

        execution = ScanExecution(
            self, ordered=ordered, cols=cols, perm=perm, loss_key=loss_key,
            port=port, config=config, checkpoint=checkpoint, resume=resume,
            crash=crash,
        )
        n = execution.n
        if (
            execution.start_round == 0
            and config.workers > 1
            and n > config.batch_size
        ):
            if execution.plane is not None:
                self._scan_pool_shared(
                    execution.plane, perm, loss_key, config,
                    execution.stats, execution.hits,
                    checkpoint=checkpoint,
                    start_batch=execution.start_batch, crash=crash,
                )
            else:
                self._scan_pool(
                    ordered, perm, loss_key, port, config,
                    execution.stats, execution.hits,
                    checkpoint=checkpoint,
                    start_batch=execution.start_batch, crash=crash,
                )
            execution.skip_round0()
        return execution.run()

    def _pending_targets(
        self,
        ordered: list[int],
        perm: CyclicPermutation | None,
        hits: set[int],
        config: ScanConfig,
    ) -> list[int]:
        """Non-responding, non-blacklisted targets, in permuted order.

        Pure function of (target list, permutation, hits) — the
        property that lets a resumed run rebuild exactly the pending
        set an uninterrupted run would carry into a retry round.
        """
        pending: list[int] = []
        for _, batch in _iter_permuted_batches(ordered, perm, config.batch_size):
            if self.blacklist:
                flags = self.blacklist.contains_many(batch)
                pending.extend(
                    a
                    for a, flagged in zip(batch, flags)
                    if not flagged and a not in hits
                )
            else:
                pending.extend(a for a in batch if a not in hits)
        return pending

    def _scan_pool(
        self,
        ordered: list[int],
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
        config: ScanConfig,
        stats: ScanStats,
        hits: set[int],
        *,
        checkpoint: "ScanCheckpointer | None" = None,
        start_batch: int = 0,
        crash: "WorkerCrash | None" = None,
    ) -> None:
        """Shard permuted chunks across a process pool and merge stats.

        Every counter is an order-independent sum and the loss PRF is a
        pure function of the address, so the merged result is identical
        to the in-process batched (and reference) scan.  Futures are
        merged in submission order, so checkpointed progress is always
        a contiguous batch prefix — the invariant resume relies on.
        """
        from concurrent.futures import ProcessPoolExecutor

        tele = self.telemetry
        # Bound outstanding futures so huge target streams never
        # materialise as one giant pending-chunk queue.
        window = config.workers * 4
        with ProcessPoolExecutor(
            max_workers=config.workers,
            initializer=_pool_init,
            initargs=(
                self.truth, self.blacklist, self.loss_rate, loss_key,
                port, crash,
            ),
        ) as pool:
            futures: deque = deque()

            def merge_one() -> None:
                index, chunk_hits, chunk_stats = futures.popleft().result()
                hits.update(chunk_hits)
                stats.merge(chunk_stats)
                tele.count("scan.worker_merges")
                if checkpoint is not None:
                    checkpoint.note_batch(chunk_hits)
                    checkpoint.checkpoint(0, index + 1, stats)

            for index, batch in _iter_permuted_batches(
                ordered, perm, config.batch_size, start_batch
            ):
                futures.append(pool.submit(_pool_scan_chunk, index, batch))
                tele.count("scan.batches")
                if len(futures) >= window:
                    merge_one()
            while futures:
                merge_one()

    def _scan_pool_shared(
        self,
        plane: ScanPlane,
        perm: CyclicPermutation | None,
        loss_key: int,
        config: ScanConfig,
        stats: ScanStats,
        hits: set[int],
        *,
        checkpoint: "ScanCheckpointer | None" = None,
        start_batch: int = 0,
        crash: "WorkerCrash | None" = None,
    ) -> None:
        """Shard the array plane across a pool via one shm segment.

        The target columns and every frozen lookup table travel once,
        through a :class:`~repro.scanner.shm.SharedArrays` segment;
        each task is just ``(batch_index, start, stop)`` — O(1) bytes
        per shard regardless of target count.  Workers rebuild the
        cyclic permutation from its (picklable, O(1)) spec and read
        their shard's columns straight from the segment.  The parent
        is the only process that unlinks the segment, always — a pool
        worker crash propagates out of the executor context and the
        ``finally`` still reclaims ``/dev/shm``.
        """
        from concurrent.futures import ProcessPoolExecutor

        from .shm import SharedArrays

        tele = self.telemetry
        arrays, meta = plane.shared_payload()
        meta["loss_key"] = loss_key
        window = config.workers * 4
        shared = SharedArrays.create(arrays)
        try:
            with ProcessPoolExecutor(
                max_workers=config.workers,
                initializer=_plane_pool_init,
                initargs=(shared.spec, meta, perm, crash),
            ) as pool:
                futures: deque = deque()

                def merge_one() -> None:
                    index, chunk_hits, chunk_stats = futures.popleft().result()
                    hits.update(chunk_hits)
                    stats.merge(chunk_stats)
                    tele.count("scan.worker_merges")
                    if checkpoint is not None:
                        checkpoint.note_batch(chunk_hits)
                        checkpoint.checkpoint(0, index + 1, stats)

                n = len(plane.hi)
                batch_size = config.batch_size
                for start in range(start_batch * batch_size, n, batch_size):
                    index = start // batch_size
                    futures.append(
                        pool.submit(
                            _plane_scan_chunk,
                            index, start, min(start + batch_size, n),
                        )
                    )
                    tele.count("scan.batches")
                    if len(futures) >= window:
                        merge_one()
                while futures:
                    merge_one()
        finally:
            shared.close()


def scan_stats_snapshot(stats: ScanStats) -> MetricsSnapshot:
    """Express :class:`ScanStats` as a mergeable metrics snapshot.

    Both types share the merge contract (order-independent sums), so a
    per-shard ``ScanStats`` and its snapshot form stay interchangeable:
    merging snapshots of shard stats equals the snapshot of merged
    shard stats.
    """
    return MetricsSnapshot(
        counters={
            "scan.probes_sent": stats.probes_sent,
            "scan.responses": stats.responses,
            "scan.blacklisted": stats.blacklisted,
            "scan.dropped": stats.dropped,
            "scan.retransmits": stats.retransmits,
        }
    )


def _iter_permuted_batches(
    ordered: list[int],
    perm: CyclicPermutation | None,
    batch_size: int,
    start_batch: int = 0,
) -> Iterator[tuple[int, list[int]]]:
    """Yield ``(batch_index, chunk)`` in permuted order.

    ``start_batch`` skips already-completed batches without computing
    their permutations — the resume fast-forward.
    """
    n = len(ordered)
    for start in range(start_batch * batch_size, n, batch_size):
        index = start // batch_size
        if perm is None:
            yield index, ordered[start : start + batch_size]
        else:
            indices = perm.permute_range(start, min(start + batch_size, n))
            yield index, [ordered[j] for j in indices]


def _probe_batch(
    truth: GroundTruth,
    blacklist: Blacklist,
    loss_rate: float,
    loss_key: int,
    port: int,
    batch: list[int],
    stats: ScanStats,
    hits: set[int],
) -> list[int]:
    """Probe one chunk with batched blacklist / loss / truth lookups.

    Returns the chunk's responsive addresses (the checkpoint delta).
    """
    if blacklist:
        flags = blacklist.contains_many(batch)
        allowed = [a for a, flagged in zip(batch, flags) if not flagged]
        stats.blacklisted += len(batch) - len(allowed)
    else:
        allowed = batch
    stats.probes_sent += len(allowed)
    if loss_rate:
        kept = []
        for a in allowed:
            if _loss_prf(loss_key, a) < loss_rate:
                stats.dropped += 1
            else:
                kept.append(a)
    else:
        kept = allowed
    responsive: list[int] = []
    if kept:
        flags = truth.responsive_many(kept, port)
        responsive = [a for a, responded in zip(kept, flags) if responded]
        stats.responses += len(responsive)
        hits.update(responsive)
    return responsive


def _retry_batch(
    truth: GroundTruth,
    loss_rate: float,
    round_key: int,
    round_: int,
    port: int,
    batch: list[int],
    stats: ScanStats,
    hits: set[int],
) -> list[int]:
    """One retry round's worth of probes for a pending chunk.

    The chunk is pre-filtered (no blacklisted, no responders), so only
    loss and ground truth apply; probes count as retransmits.  Returns
    the newly responsive addresses.
    """
    stats.retransmits += len(batch)
    if loss_rate:
        kept = []
        for a in batch:
            if _loss_prf(round_key, a) < loss_rate:
                stats.dropped += 1
            else:
                kept.append(a)
    else:
        kept = batch
    responsive: list[int] = []
    if kept:
        flags = truth.responsive_many(kept, port, attempt=round_)
        responsive = [a for a, responded in zip(kept, flags) if responded]
        stats.responses += len(responsive)
        hits.update(responsive)
    return responsive


#: Per-process state for scan-pool workers (set by the initializer).
_POOL_STATE: dict = {}


def _pool_init(
    truth: GroundTruth,
    blacklist: Blacklist,
    loss_rate: float,
    loss_key: int,
    port: int,
    crash=None,
) -> None:
    _POOL_STATE["args"] = (truth, blacklist, loss_rate, loss_key, port, crash)


def _pool_scan_chunk(
    index: int, batch: list[int]
) -> tuple[int, list[int], ScanStats]:
    truth, blacklist, loss_rate, loss_key, port, crash = _POOL_STATE["args"]
    if crash is not None:
        crash.check(0, index)
    stats = ScanStats()
    hits: set[int] = set()
    responsive = _probe_batch(
        truth, blacklist, loss_rate, loss_key, port, batch, stats, hits
    )
    return index, responsive, stats


def _plane_pool_init(spec: dict, meta: dict, perm, crash) -> None:
    """Attach the shared scan plane in a pool worker (once per process)."""
    from .shm import SharedArrays

    shared = SharedArrays.attach(spec)
    plane = ScanPlane.from_shared(meta, shared.arrays)
    # Keep `shared` referenced so the mapping outlives this initializer.
    _POOL_STATE["plane"] = (plane, perm, meta["loss_key"], crash, shared)


def _plane_scan_chunk(
    index: int, start: int, stop: int
) -> tuple[int, list[int], ScanStats]:
    """Probe one O(1)-described shard against the attached plane."""
    plane, perm, loss_key, crash, _shared = _POOL_STATE["plane"]
    if crash is not None:
        crash.check(0, index)
    stats = ScanStats()
    hits: set[int] = set()
    responsive = plane.probe_range(perm, start, stop, loss_key, stats, hits)
    return index, responsive, stats
