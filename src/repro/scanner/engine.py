"""Simulated ZMap-style scan engine (stand-in for ZMap-v6, §6).

Probes the simulated ground truth instead of the live Internet.  The
engine reproduces the operational properties that matter to the
algorithms under test:

* every probe is counted (probe budgets are the paper's core resource);
* targets are deduplicated and scanned in randomised order (the paper
  randomises destination order to avoid overloading networks);
* a blacklist is honoured unconditionally;
* optional probe loss models an unreliable network path, and repeated
  probes can recover from it (used for failure-injection tests).

The bulk path is a streaming, batched pipeline.  Targets stream in
(deduplicated in insertion order), probe order is a ZMap-style cyclic
permutation of the index space (:class:`~repro.scanner.schedule.
CyclicPermutation` — O(1) auxiliary memory, no shuffled copy), and
chunks flow through batched blacklist / loss / ground-truth lookups,
optionally sharded across a process pool (:attr:`ScanConfig.workers`).
A per-address sequential reference path (``use_batched=False``) is
kept as the correctness oracle: for a fixed ``rng_seed`` both paths —
and any worker count — produce identical hits *and* identical
:class:`~repro.scanner.probe.ScanStats`, because probe order is the
shared permutation and scan-time probe loss is a pure function of
``(scan key, address)`` rather than a draw from a sequential RNG
stream.  ``benchmarks/bench_scan.py`` enforces the parity on every
run.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..simnet.ground_truth import GroundTruth
from ..telemetry.metrics import MetricsSnapshot
from ..telemetry.spans import Telemetry, ensure
from .blacklist import Blacklist
from .probe import DEFAULT_PORT, ScanResult, ScanStats
from .schedule import CyclicPermutation, mix64

_M64 = (1 << 64) - 1
#: Domain-separation constants for the keys derived from ``rng_seed``.
_ORDER_SALT = 0x5C4E06D3A1B2C4D5
_PROBE_SALT = 0x9E3779B97F4A7C15


def _loss_prf(key: int, addr: int) -> float:
    """Uniform-in-[0,1) pseudo-random function of ``(key, address)``.

    Scan-time probe loss uses this instead of a sequential RNG stream
    so outcomes do not depend on probe order or worker sharding — the
    property that makes the batched, multi-process paths bit-identical
    to the sequential reference.
    """
    h = mix64(key ^ (addr & _M64))
    h = mix64(h ^ (addr >> 64))
    return h / 18446744073709551616.0  # 2**64


@dataclass(frozen=True)
class ScanConfig:
    """Execution parameters for :meth:`Scanner.scan`.

    ``batch_size`` is the chunk granularity of the streaming pipeline;
    ``workers`` > 1 shards chunks across a process pool (1 keeps the
    scan in-process); ``use_batched=False`` selects the per-address
    sequential reference path (the correctness oracle the benchmark
    compares against).  All settings produce identical results for a
    fixed ``rng_seed`` — they only trade memory and speed.
    """

    batch_size: int = 4096
    workers: int = 1
    use_batched: bool = True

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {self.batch_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")


class Scanner:
    """A probe engine bound to one ground truth."""

    def __init__(
        self,
        truth: GroundTruth,
        *,
        blacklist: Blacklist | None = None,
        loss_rate: float = 0.0,
        rng_seed: int | None = 0,
        config: ScanConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.truth = truth
        self.blacklist = blacklist or Blacklist()
        self.loss_rate = loss_rate
        self.config = config or ScanConfig()
        # Telemetry is strictly passive: it never draws from an RNG or
        # reorders probes, so hits and stats are identical with it on
        # or off (tests/test_telemetry.py enforces this).
        self.telemetry = ensure(telemetry)
        self._rng = random.Random(rng_seed)
        self._rng_seed = rng_seed
        # Independent deterministic streams so single-probe callers
        # (probe / probe_retry) and bulk scans never perturb each other:
        # scan order/loss keys come from _order_rng, the batched-prober
        # loss PRF from _probe_key.  A worker process rebuilt from the
        # same rng_seed derives the same keys, which is what makes
        # parallel dealiasing reproduce the serial decisions.
        if rng_seed is None:
            self._order_rng = random.Random()
            self._probe_key = random.Random().getrandbits(64)
        else:
            self._order_rng = random.Random(int(rng_seed) ^ _ORDER_SALT)
            self._probe_key = mix64(int(rng_seed) ^ _PROBE_SALT)
        self.total_probes = 0

    # -- single probe -------------------------------------------------------
    def probe(self, addr: int, port: int = DEFAULT_PORT) -> bool:
        """Send one probe; returns True on a SYN-ACK.

        Blacklisted addresses are never probed (and count as no
        response).  Probe loss applies before the ground-truth check.
        """
        if self.blacklist.contains(addr):
            return False
        self.total_probes += 1
        if self.loss_rate and self._rng.random() < self.loss_rate:
            return False
        return self.truth.is_responsive(int(addr), port)

    def probe_retry(
        self,
        addr: int,
        port: int = DEFAULT_PORT,
        attempts: int = 3,
        *,
        stats: ScanStats | None = None,
    ) -> bool:
        """Probe with retries (used by the dealiasing prober).

        Blacklisted targets short-circuit before the retry loop — the
        blacklist verdict cannot change between attempts — and are
        counted once in ``stats`` when given.
        """
        if self.blacklist.contains(addr):
            if stats is not None:
                stats.blacklisted += 1
            return False
        return any(self.probe(addr, port) for _ in range(attempts))

    def probe_many(
        self,
        addrs: Sequence[int],
        port: int = DEFAULT_PORT,
        *,
        attempts: int = 1,
        stats: ScanStats | None = None,
    ) -> list[bool]:
        """Batched probe-with-retries; one flag per address, in order.

        The blacklist is consulted once per address (not once per
        attempt), losses use the order-independent PRF keyed on
        ``(rng_seed, address, attempt)``, and ground-truth lookups are
        batched.  Addresses that respond stop retrying; the rest get up
        to ``attempts`` rounds.
        """
        addrs = [int(a) for a in addrs]
        results = [False] * len(addrs)
        if self.blacklist:
            flags = self.blacklist.contains_many(addrs)
            pending = [i for i, flagged in enumerate(flags) if not flagged]
            if stats is not None:
                stats.blacklisted += len(addrs) - len(pending)
        else:
            pending = list(range(len(addrs)))
        loss = self.loss_rate
        for attempt in range(attempts):
            if not pending:
                break
            batch = [addrs[i] for i in pending]
            self.total_probes += len(batch)
            if stats is not None:
                stats.probes_sent += len(batch)
            if loss:
                attempt_key = mix64(self._probe_key + attempt)
                kept = []
                for i, a in zip(pending, batch):
                    if _loss_prf(attempt_key, a) < loss:
                        if stats is not None:
                            stats.dropped += 1
                    else:
                        kept.append(i)
            else:
                kept = pending
            if kept:
                flags = self.truth.responsive_many(
                    [addrs[i] for i in kept], port
                )
                for i, responded in zip(kept, flags):
                    if responded:
                        results[i] = True
                        if stats is not None:
                            stats.responses += 1
            pending = [i for i in pending if not results[i]]
        return results

    # -- bulk scan ------------------------------------------------------------
    def scan(
        self,
        targets: Iterable[int],
        port: int = DEFAULT_PORT,
        *,
        shuffle: bool = True,
    ) -> ScanResult:
        """Probe each distinct target once; collect responsive addresses.

        Targets may be any iterable (a generator streams straight in);
        they are deduplicated preserving first-seen order, which keeps
        probe order — and therefore loss outcomes — deterministic for a
        fixed ``rng_seed`` regardless of CPython build (a plain
        ``set`` dedupe does not guarantee that).
        """
        config = self.config
        ordered = list(dict.fromkeys(int(t) for t in targets))
        if not shuffle:
            ordered.sort()
        # Both paths draw the same keys in the same order so reference
        # and batched scans consume _order_rng identically.
        perm_key = self._order_rng.getrandbits(64)
        loss_key = self._order_rng.getrandbits(64)
        perm = (
            CyclicPermutation(len(ordered), perm_key)
            if shuffle and len(ordered) > 1
            else None
        )
        tele = self.telemetry
        with tele.span(
            "scan", port=port, targets=len(ordered), workers=config.workers
        ):
            start = time.perf_counter()
            if config.use_batched:
                result = self._scan_batched(ordered, perm, loss_key, port, config)
            else:
                result = self._scan_reference(ordered, perm, loss_key, port)
            elapsed = time.perf_counter() - start
        self.total_probes += result.stats.probes_sent
        if tele.enabled:
            tele.count("scan.runs")
            tele.count("scan.targets", len(ordered))
            tele.count("scan.hits", len(result.hits))
            # One conversion from the final (parity-gated) stats for
            # every execution path, so counter totals are identical for
            # any batch size or worker count.
            tele.merge_snapshot(scan_stats_snapshot(result.stats))
            if elapsed > 0:
                tele.gauge(
                    "scan.probes_per_sec", result.stats.probes_sent / elapsed
                )
            tele.event(
                "scan_summary",
                {
                    "port": port,
                    "targets": len(ordered),
                    "hits": len(result.hits),
                    "probes_sent": result.stats.probes_sent,
                    "blacklisted": result.stats.blacklisted,
                    "dropped": result.stats.dropped,
                    "hit_rate": round(result.stats.hit_rate, 6),
                    "workers": config.workers,
                    "seconds": round(elapsed, 6),
                },
            )
        return result

    def _scan_reference(
        self,
        ordered: list[int],
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
    ) -> ScanResult:
        """Per-address loop: the readable spec the batched path must match."""
        stats = ScanStats()
        hits: set[int] = set()
        loss = self.loss_rate
        for index in range(len(ordered)):
            addr = ordered[perm(index)] if perm is not None else ordered[index]
            if self.blacklist.contains(addr):
                stats.blacklisted += 1
                continue
            stats.probes_sent += 1
            if loss and _loss_prf(loss_key, addr) < loss:
                stats.dropped += 1
                continue
            if self.truth.is_responsive(addr, port):
                stats.responses += 1
                hits.add(addr)
        return ScanResult(port=port, hits=hits, stats=stats)

    def _scan_batched(
        self,
        ordered: list[int],
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
        config: ScanConfig,
    ) -> ScanResult:
        if config.workers > 1 and len(ordered) > config.batch_size:
            return self._scan_pool(ordered, perm, loss_key, port, config)
        stats = ScanStats()
        hits: set[int] = set()
        tele = self.telemetry
        for batch in _iter_permuted_batches(ordered, perm, config.batch_size):
            _probe_batch(
                self.truth, self.blacklist, self.loss_rate, loss_key,
                port, batch, stats, hits,
            )
            tele.count("scan.batches")
        return ScanResult(port=port, hits=hits, stats=stats)

    def _scan_pool(
        self,
        ordered: list[int],
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
        config: ScanConfig,
    ) -> ScanResult:
        """Shard permuted chunks across a process pool and merge stats.

        Every counter is an order-independent sum and the loss PRF is a
        pure function of the address, so the merged result is identical
        to the in-process batched (and reference) scan.
        """
        from concurrent.futures import ProcessPoolExecutor

        stats = ScanStats()
        hits: set[int] = set()
        tele = self.telemetry
        # Bound outstanding futures so huge target streams never
        # materialise as one giant pending-chunk queue.
        window = config.workers * 4
        with ProcessPoolExecutor(
            max_workers=config.workers,
            initializer=_pool_init,
            initargs=(self.truth, self.blacklist, self.loss_rate, loss_key, port),
        ) as pool:
            futures: deque = deque()
            for batch in _iter_permuted_batches(ordered, perm, config.batch_size):
                futures.append(pool.submit(_pool_scan_chunk, batch))
                tele.count("scan.batches")
                if len(futures) >= window:
                    chunk_hits, chunk_stats = futures.popleft().result()
                    hits.update(chunk_hits)
                    stats.merge(chunk_stats)
                    tele.count("scan.worker_merges")
            while futures:
                chunk_hits, chunk_stats = futures.popleft().result()
                hits.update(chunk_hits)
                stats.merge(chunk_stats)
                tele.count("scan.worker_merges")
        return ScanResult(port=port, hits=hits, stats=stats)


def scan_stats_snapshot(stats: ScanStats) -> MetricsSnapshot:
    """Express :class:`ScanStats` as a mergeable metrics snapshot.

    Both types share the merge contract (order-independent sums), so a
    per-shard ``ScanStats`` and its snapshot form stay interchangeable:
    merging snapshots of shard stats equals the snapshot of merged
    shard stats.
    """
    return MetricsSnapshot(
        counters={
            "scan.probes_sent": stats.probes_sent,
            "scan.responses": stats.responses,
            "scan.blacklisted": stats.blacklisted,
            "scan.dropped": stats.dropped,
        }
    )


def _iter_permuted_batches(
    ordered: list[int],
    perm: CyclicPermutation | None,
    batch_size: int,
) -> Iterator[list[int]]:
    """Yield the target list in permuted order, one chunk at a time."""
    n = len(ordered)
    if perm is None:
        for start in range(0, n, batch_size):
            yield ordered[start : start + batch_size]
        return
    for start in range(0, n, batch_size):
        indices = perm.permute_range(start, min(start + batch_size, n))
        yield [ordered[j] for j in indices]


def _probe_batch(
    truth: GroundTruth,
    blacklist: Blacklist,
    loss_rate: float,
    loss_key: int,
    port: int,
    batch: list[int],
    stats: ScanStats,
    hits: set[int],
) -> None:
    """Probe one chunk with batched blacklist / loss / truth lookups."""
    if blacklist:
        flags = blacklist.contains_many(batch)
        allowed = [a for a, flagged in zip(batch, flags) if not flagged]
        stats.blacklisted += len(batch) - len(allowed)
    else:
        allowed = batch
    stats.probes_sent += len(allowed)
    if loss_rate:
        kept = []
        for a in allowed:
            if _loss_prf(loss_key, a) < loss_rate:
                stats.dropped += 1
            else:
                kept.append(a)
    else:
        kept = allowed
    if kept:
        flags = truth.responsive_many(kept, port)
        responsive = [a for a, responded in zip(kept, flags) if responded]
        stats.responses += len(responsive)
        hits.update(responsive)


#: Per-process state for scan-pool workers (set by the initializer).
_POOL_STATE: dict = {}


def _pool_init(
    truth: GroundTruth,
    blacklist: Blacklist,
    loss_rate: float,
    loss_key: int,
    port: int,
) -> None:
    _POOL_STATE["args"] = (truth, blacklist, loss_rate, loss_key, port)


def _pool_scan_chunk(batch: list[int]) -> tuple[list[int], ScanStats]:
    truth, blacklist, loss_rate, loss_key, port = _POOL_STATE["args"]
    stats = ScanStats()
    hits: set[int] = set()
    _probe_batch(truth, blacklist, loss_rate, loss_key, port, batch, stats, hits)
    return list(hits), stats
