"""Simulated ZMap-style scan engine (stand-in for ZMap-v6, §6).

Probes the simulated ground truth instead of the live Internet.  The
engine reproduces the operational properties that matter to the
algorithms under test:

* every probe is counted (probe budgets are the paper's core resource);
* targets are deduplicated and scanned in randomised order (the paper
  randomises destination order to avoid overloading networks);
* a blacklist is honoured unconditionally;
* optional probe loss models an unreliable network path, and repeated
  probes can recover from it (used for failure-injection tests).
"""

from __future__ import annotations

import random
from typing import Iterable

from ..simnet.ground_truth import GroundTruth
from .blacklist import Blacklist
from .probe import DEFAULT_PORT, ScanResult, ScanStats


class Scanner:
    """A probe engine bound to one ground truth."""

    def __init__(
        self,
        truth: GroundTruth,
        *,
        blacklist: Blacklist | None = None,
        loss_rate: float = 0.0,
        rng_seed: int | None = 0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        self.truth = truth
        self.blacklist = blacklist or Blacklist()
        self.loss_rate = loss_rate
        self._rng = random.Random(rng_seed)
        self.total_probes = 0

    # -- single probe -------------------------------------------------------
    def probe(self, addr: int, port: int = DEFAULT_PORT) -> bool:
        """Send one probe; returns True on a SYN-ACK.

        Blacklisted addresses are never probed (and count as no
        response).  Probe loss applies before the ground-truth check.
        """
        if self.blacklist.contains(addr):
            return False
        self.total_probes += 1
        if self.loss_rate and self._rng.random() < self.loss_rate:
            return False
        return self.truth.is_responsive(int(addr), port)

    def probe_retry(self, addr: int, port: int = DEFAULT_PORT, attempts: int = 3) -> bool:
        """Probe with retries (used by the dealiasing prober)."""
        return any(self.probe(addr, port) for _ in range(attempts))

    # -- bulk scan ------------------------------------------------------------
    def scan(
        self,
        targets: Iterable[int],
        port: int = DEFAULT_PORT,
        *,
        shuffle: bool = True,
    ) -> ScanResult:
        """Probe each distinct target once; collect responsive addresses."""
        target_list = list({int(t) for t in targets})
        if shuffle:
            self._rng.shuffle(target_list)
        else:
            target_list.sort()
        stats = ScanStats()
        hits: set[int] = set()
        for addr in target_list:
            if self.blacklist.contains(addr):
                stats.blacklisted += 1
                continue
            stats.probes_sent += 1
            self.total_probes += 1
            if self.loss_rate and self._rng.random() < self.loss_rate:
                stats.dropped += 1
                continue
            if self.truth.is_responsive(addr, port):
                stats.responses += 1
                hits.add(addr)
        return ScanResult(port=port, hits=hits, stats=stats)
