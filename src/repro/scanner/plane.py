"""Array-native scan plane: the batched pipeline over uint64 columns.

:class:`ScanPlane` is a frozen snapshot of everything a scan batch
needs — target hi/lo columns, the blacklist as a
:class:`~repro.ipv6.addrplane.PrefixMaskTable`, the ground truth's host
set as a :class:`~repro.ipv6.addrplane.FrozenKeySet`, aliased regions
as a second mask table, and the (optional) fault model — so one probe
batch is a handful of vectorised numpy passes instead of a Python loop
over boxed 128-bit ints.

The same :meth:`ScanPlane.probe_range` runs in-process and inside pool
workers: a pooled scan ships the plane's arrays through one
shared-memory segment (:mod:`repro.scanner.shm`) and each shard task is
just an index range, so worker dispatch is O(1) per shard regardless of
target count.  Workers rebuild the cyclic permutation from ``(n,
perm_key)`` and read their shard's columns straight out of the segment.

Parity contract: every verdict here is the same pure function of
``(key, address, attempt)`` the scalar reference path computes —
:func:`loss_prf_arr` matches ``engine._loss_prf`` bit-for-bit (uint64
hash, then one exact power-of-two float scaling), membership tables are
exact, and fault models vectorise their own PRFs — so hits and stats
are identical to the reference scan for any batch size or worker count.
``ScanPlane.supports`` gates the fast path to the exact types it can
snapshot (subclassed truths/blacklists fall back to the object path,
which obeys dynamic dispatch).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..ipv6.addrplane import (
    FrozenKeySet,
    PrefixMaskTable,
    hash_columns,
    pack,
    unpack,
)
from ..simnet.ground_truth import ICMPV6, GroundTruth
from .blacklist import Blacklist
from .schedule import CyclicPermutation, _mix64_np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.models import FaultModel
    from .probe import ScanStats

_TWO64 = np.float64(2**64)


class StaleWorldError(RuntimeError):
    """A frozen scan context outlived the world it was built against.

    Raised when a :class:`ScanPlane` (or a stepped
    :class:`~repro.scanner.execution.ScanExecution`) is used after the
    ground truth mutated — e.g. the churn layer advanced an epoch
    mid-campaign.  Frozen host/alias tables are snapshots; silently
    reusing them would report hits from a world that no longer exists.
    """


def loss_prf_arr(key: int, hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Vectorised ``engine._loss_prf``: uniform-in-[0,1) per address.

    Bit-identical to the scalar form: the hash chain folds the low then
    the high column through splitmix64, and dividing the uint64 result
    by 2**64 is an exact power-of-two scaling, so the float compares
    equal to Python's correctly rounded ``h / 2**64``.
    """
    h = _mix64_np(np.uint64(key) ^ lo)
    h = _mix64_np(h ^ hi)
    return h / _TWO64


class ScanPlane:
    """Frozen array-native scan context (targets + lookup tables)."""

    __slots__ = (
        "hi", "lo", "blacklist_table", "host_keys", "alias_table",
        "fault", "loss_rate", "port", "permuted", "world_version",
    )

    def __init__(
        self,
        hi: np.ndarray,
        lo: np.ndarray,
        *,
        blacklist_table: PrefixMaskTable | None,
        host_keys: FrozenKeySet,
        alias_table: PrefixMaskTable | None,
        fault: "FaultModel | None",
        loss_rate: float,
        port: int,
        world_version: tuple[int, int] | None = None,
    ):
        self.hi = hi
        self.lo = lo
        self.blacklist_table = blacklist_table
        self.host_keys = host_keys
        self.alias_table = alias_table
        self.fault = fault
        self.loss_rate = loss_rate
        self.port = port
        # Version token of the truth this plane froze (None when built
        # from raw columns without a truth in hand).
        self.world_version = world_version
        # Lazily materialised permuted target columns (see gather()).
        self.permuted: tuple[np.ndarray, np.ndarray] | None = None

    # -- construction -------------------------------------------------------
    @staticmethod
    def supports(truth: GroundTruth, blacklist: Blacklist) -> bool:
        """Can this truth/blacklist pair be snapshotted exactly?

        Only the concrete types the plane knows how to freeze qualify;
        any subclass with overridden lookup behaviour keeps the object
        path so dynamic dispatch is honoured.
        """
        from ..faults.ground import FaultyGroundTruth

        if type(blacklist) is not Blacklist:
            return False
        return type(truth) in (GroundTruth, FaultyGroundTruth)

    @classmethod
    def build(
        cls,
        truth: GroundTruth,
        blacklist: Blacklist,
        targets: "list[int] | tuple[np.ndarray, np.ndarray]",
        port: int,
        loss_rate: float,
    ) -> "ScanPlane":
        """Freeze a scan context over targets.

        ``targets`` is either a deduplicated ordered list of int
        addresses (packed here) or already-packed ``(hi, lo)`` columns
        from the generation plane, adopted without conversion.
        """
        from ..faults.ground import FaultyGroundTruth

        if isinstance(targets, tuple):
            hi, lo = targets
        else:
            hi, lo = pack(targets)
        fault = truth.fault if isinstance(truth, FaultyGroundTruth) else None
        return cls(
            hi,
            lo,
            blacklist_table=blacklist.frozen_table() if blacklist else None,
            host_keys=truth.frozen_hosts(port),
            # ICMPv6 pings match any aliased region regardless of its
            # port set (the scalar find_many contract).
            alias_table=truth.aliased.frozen_table(
                None if port == ICMPV6 else port
            )
            if truth.aliased
            else None,
            fault=fault,
            loss_rate=loss_rate,
            port=port,
            world_version=getattr(truth, "world_version", None),
        )

    def ensure_fresh(self, truth: GroundTruth) -> None:
        """Raise :class:`StaleWorldError` if ``truth`` mutated since build."""
        if self.world_version is None:
            return
        current = getattr(truth, "world_version", None)
        if current is not None and current != self.world_version:
            raise StaleWorldError(
                "scan plane frozen at world version "
                f"{self.world_version} but the truth is now at {current}; "
                "rebuild the plane (or restart the scan) after mutating "
                "the world"
            )

    # -- shared-memory transport -------------------------------------------
    def shared_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        """Split the plane into (arrays for shm, picklable metadata)."""
        arrays = {"targets_hi": self.hi, "targets_lo": self.lo}
        meta: dict = {
            "loss_rate": self.loss_rate,
            "port": self.port,
            "fault": self.fault,
            "bl_lengths": [],
            "alias_lengths": [],
            "hosts": False,
            "world_version": self.world_version,
        }
        if len(self.host_keys):
            arrays["hosts"] = self.host_keys.keys
            meta["hosts"] = True
        for label, table in (
            ("bl", self.blacklist_table),
            ("alias", self.alias_table),
        ):
            if table is None:
                continue
            for length, _, _, keys in table.entries:
                arrays[f"{label}_{length}"] = keys.keys
                meta[f"{label}_lengths"].append(length)
        return arrays, meta

    @classmethod
    def from_shared(cls, meta: dict, arrays: dict[str, np.ndarray]) -> "ScanPlane":
        """Rebuild a plane from shared-memory views (worker side)."""

        def table(label: str) -> PrefixMaskTable | None:
            lengths = meta[f"{label}_lengths"]
            if not lengths:
                return None
            return PrefixMaskTable(
                [
                    (length, FrozenKeySet(arrays[f"{label}_{length}"]))
                    for length in lengths
                ]
            )

        host_keys = (
            FrozenKeySet(arrays["hosts"])
            if meta["hosts"]
            else FrozenKeySet.from_ints(())
        )
        return cls(
            arrays["targets_hi"],
            arrays["targets_lo"],
            blacklist_table=table("bl"),
            host_keys=host_keys,
            alias_table=table("alias"),
            fault=meta["fault"],
            loss_rate=meta["loss_rate"],
            port=meta["port"],
            world_version=meta.get("world_version"),
        )

    # -- probing ------------------------------------------------------------
    def gather(
        self, perm: CyclicPermutation | None, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's target columns, in permuted probe order.

        The whole permuted column pair is materialised on first use:
        one big vectorised Feistel walk plus one fancy-gather beats
        thousands of small per-batch ones (the cycle-walk loop's fixed
        numpy overhead dominates at batch granularity), after which
        every shard is a zero-copy slice.  The copy is 16 bytes per
        target — small next to the boxed target list already held —
        and pool workers each materialise it once at their first shard.
        """
        if perm is None:
            return self.hi[start:stop], self.lo[start:stop]
        permuted = self.permuted
        if permuted is None:
            indices = perm.permute_range_arr(0, len(self.hi))
            permuted = self.permuted = (self.hi[indices], self.lo[indices])
        return permuted[0][start:stop], permuted[1][start:stop]

    def probe_range(
        self,
        perm: CyclicPermutation | None,
        start: int,
        stop: int,
        loss_key: int,
        stats: "ScanStats",
        hits: set[int],
    ) -> list[int]:
        """Round-0 probe of targets ``start..stop-1`` (permuted order)."""
        bhi, blo = self.gather(perm, start, stop)
        return self.probe_batch(bhi, blo, loss_key, stats, hits)

    def probe_batch(
        self,
        bhi: np.ndarray,
        blo: np.ndarray,
        loss_key: int,
        stats: "ScanStats",
        hits: set[int],
    ) -> list[int]:
        """Blacklist / loss / responsiveness for one column batch.

        Same accounting as the object path's ``_probe_batch``; returns
        the batch's responsive addresses (the checkpoint delta) in
        probe order.  The batch is hashed once and the hashes are
        reused by every exact-membership stage (``/128`` blacklist
        entries, the host table).
        """
        hashes = hash_columns(bhi, blo)
        if self.blacklist_table is not None:
            blocked = self.blacklist_table.match_any(bhi, blo, hashes=hashes)
            count = int(blocked.sum())
            if count:
                stats.blacklisted += count
                keep = ~blocked
                bhi, blo, hashes = bhi[keep], blo[keep], hashes[keep]
        stats.probes_sent += len(bhi)
        if self.loss_rate:
            lost = loss_prf_arr(loss_key, bhi, blo) < self.loss_rate
            count = int(lost.sum())
            if count:
                stats.dropped += count
                keep = ~lost
                bhi, blo, hashes = bhi[keep], blo[keep], hashes[keep]
        responded = self._responsive(bhi, blo, attempt=0, hashes=hashes)
        responsive = unpack(bhi[responded], blo[responded])
        stats.responses += len(responsive)
        hits.update(responsive)
        return responsive

    def retry_chunk(
        self,
        bhi: np.ndarray,
        blo: np.ndarray,
        round_key: int,
        round_: int,
        stats: "ScanStats",
        hits: set[int],
    ) -> list[int]:
        """One retry round over a pre-filtered pending chunk."""
        stats.retransmits += len(bhi)
        if self.loss_rate:
            lost = loss_prf_arr(round_key, bhi, blo) < self.loss_rate
            count = int(lost.sum())
            if count:
                stats.dropped += count
                keep = ~lost
                bhi, blo = bhi[keep], blo[keep]
        responded = self._responsive(bhi, blo, attempt=round_)
        responsive = unpack(bhi[responded], blo[responded])
        stats.responses += len(responsive)
        hits.update(responsive)
        return responsive

    def pending_columns(
        self,
        perm: CyclicPermutation | None,
        batch_size: int,
        hits: set[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Non-responding, non-blacklisted targets in permuted order.

        The array form of the engine's ``_pending_targets``: a pure
        function of (targets, permutation, hits), chunked so the
        permutation is computed batch-wise like the scan itself.
        """
        hit_keys = FrozenKeySet.from_ints(hits)
        keep_hi: list[np.ndarray] = []
        keep_lo: list[np.ndarray] = []
        n = len(self.hi)
        for start in range(0, n, batch_size):
            bhi, blo = self.gather(perm, start, min(start + batch_size, n))
            keep = ~hit_keys.member(bhi, blo)
            if self.blacklist_table is not None:
                keep &= ~self.blacklist_table.match_any(bhi, blo)
            keep_hi.append(bhi[keep])
            keep_lo.append(blo[keep])
        if not keep_hi:
            empty = np.empty(0, dtype=np.uint64)
            return empty, empty
        return np.concatenate(keep_hi), np.concatenate(keep_lo)

    def _responsive(
        self,
        bhi: np.ndarray,
        blo: np.ndarray,
        attempt: int,
        hashes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Would each probe get a response?  (Fault layer, then truth.)"""
        if self.fault is not None:
            dropped = self.fault.drops_many_arr(bhi, blo, self.port, attempt)
            flags = np.zeros(len(bhi), dtype=bool)
            live = ~dropped
            if live.any():
                flags[live] = self._base_responsive(
                    bhi[live],
                    blo[live],
                    hashes[live] if hashes is not None else None,
                )
            return flags
        return self._base_responsive(bhi, blo, hashes)

    def _base_responsive(
        self,
        bhi: np.ndarray,
        blo: np.ndarray,
        hashes: np.ndarray | None = None,
    ) -> np.ndarray:
        if hashes is None:
            hashes = hash_columns(bhi, blo)
        flags = self.host_keys.member(bhi, blo, hashes=hashes)
        if self.alias_table is not None:
            miss = ~flags
            if miss.any():
                flags[miss] = self.alias_table.match_any(
                    bhi[miss], blo[miss], hashes=hashes[miss]
                )
        return flags
