"""Crash-safe scan checkpointing and resume.

A checkpoint file is a :class:`~repro.telemetry.sinks.JsonlSink` event
stream — append-only, one JSON object per line, flushed per event — so
a run killed at any instant leaves a readable prefix (at most one
truncated trailing line, which :func:`~repro.telemetry.sinks.
read_jsonl` discards).  Three event kinds matter here:

``scan_begin``
    The scan's identity: permutation and loss keys, target count and
    order digest, port, retry budget.  Everything needed to verify a
    later resume targets *the same* scan.
``scan_checkpoint``
    Progress: ``round`` (0 = first pass, r ≥ 1 = retry round r),
    ``next_batch`` (first batch index not yet merged), cumulative
    ``stats``, and ``hits_new`` — the hits found since the previous
    checkpoint line (hits are deltas so the file grows linearly, not
    quadratically).
``scan_complete``
    Terminal marker with final stats and the last hit delta.

**Resume bit-identity.**  Probe order is the recorded cyclic
permutation of the deduplicated target list, and every loss/fault
verdict is a pure function of ``(key, addr, attempt)`` — nothing
depends on wall-clock or on how many times the process restarted.  A
resumed scan therefore replays batches ``>= next_batch`` and lands on
exactly the hits and :class:`~repro.scanner.probe.ScanStats` of an
uninterrupted run, provided the caller passes the same target stream,
port, and config (enforced via the digest check).  Round-0 progress is
checkpointed at batch granularity; retry rounds only at round
boundaries, because a retry round's pending set is derived from the
hits at the *start* of the round — a boundary checkpoint keeps that
derivation exact on resume.

Other events (e.g. the per-prefix ``prefix_generated`` progress lines
``run_full_scan`` interleaves) pass through unharmed: the loader skips
anything it does not recognise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..telemetry.sinks import Sink, read_jsonl
from .probe import ScanStats
from .schedule import mix64

_M64 = (1 << 64) - 1
_DIGEST_SALT = 0x8B72E0F355B1D4C9


def target_digest(ordered: list[int]) -> int:
    """Order-dependent 64-bit digest of the deduplicated target list.

    Folds every address (both 64-bit halves) into a running splitmix64
    chain.  Order-dependent on purpose: resume requires the *sequence*
    to match, since probe order is a permutation of list indices.
    """
    h = mix64(_DIGEST_SALT ^ (len(ordered) & _M64))
    for addr in ordered:
        h = mix64(h ^ (addr & _M64))
        h = mix64(h ^ (addr >> 64))
    return h


@dataclass
class ResumeState:
    """A checkpoint file folded into one resumable position."""

    perm_key: int
    loss_key: int
    target_count: int
    digest: int
    port: int
    retries: int
    round: int = 0
    next_batch: int = 0
    hits: set[int] = field(default_factory=set)
    stats: ScanStats = field(default_factory=ScanStats)
    complete: bool = False


def load_scan_checkpoint(path: str | os.PathLike) -> ResumeState | None:
    """Fold a checkpoint file into the latest resumable state.

    Returns ``None`` when the file holds no ``scan_begin`` yet (the
    run died before the scan phase — resume just starts fresh).  A
    later ``scan_begin`` resets the state: a resumed run re-emits its
    identity plus a full-state baseline checkpoint, so only the newest
    scan's lines count.
    """
    state: ResumeState | None = None
    for event in read_jsonl(path):
        kind = event.get("event")
        if kind == "scan_begin":
            state = ResumeState(
                perm_key=int(event["perm_key"]),
                loss_key=int(event["loss_key"]),
                target_count=int(event["targets"]),
                digest=int(event["digest"]),
                port=int(event["port"]),
                retries=int(event.get("retries", 0)),
            )
        elif state is None:
            continue
        elif kind == "scan_checkpoint":
            state.round = int(event["round"])
            state.next_batch = int(event["next_batch"])
            state.stats = ScanStats.from_dict(event["stats"])
            state.hits.update(int(h) for h in event["hits_new"])
        elif kind == "scan_complete":
            state.stats = ScanStats.from_dict(event["stats"])
            state.hits.update(int(h) for h in event["hits_new"])
            state.complete = True
    return state


class ScanCheckpointer:
    """Writes scan progress through a crash-safe sink.

    ``every_batches`` throttles round-0 checkpoint lines: hit deltas
    accumulate across batches and a line is written every N merged
    batches (and always at round boundaries and completion).  The
    checkpointer only observes the scan — it never draws randomness or
    reorders work — so enabling it cannot change hits or stats.
    """

    def __init__(self, sink: Sink, *, every_batches: int = 16):
        if every_batches < 1:
            raise ValueError(f"every_batches must be >= 1: {every_batches}")
        self.sink = sink
        self.every_batches = every_batches
        self._new_hits: list[int] = []
        self._pending_batches = 0

    def begin(
        self,
        *,
        perm_key: int,
        loss_key: int,
        targets: int,
        digest: int,
        port: int,
        retries: int,
    ) -> None:
        self._new_hits = []
        self._pending_batches = 0
        self.sink.emit(
            {
                "event": "scan_begin",
                "perm_key": perm_key,
                "loss_key": loss_key,
                "targets": targets,
                "digest": digest,
                "port": port,
                "retries": retries,
            }
        )

    def baseline(
        self, *, round_: int, next_batch: int, stats: ScanStats, hits: set[int]
    ) -> None:
        """Re-emit full restored state right after a resume's ``begin``.

        This makes the file self-contained from the latest
        ``scan_begin`` onward, so resuming a resumed run still works.
        """
        self._new_hits = sorted(hits)
        self._write(round_, next_batch, stats)

    def note_batch(self, new_hits: list[int]) -> None:
        """Record one merged batch's fresh hits (buffered until write)."""
        self._new_hits.extend(new_hits)
        self._pending_batches += 1

    def checkpoint(
        self, round_: int, next_batch: int, stats: ScanStats, *, force: bool = False
    ) -> None:
        """Write a progress line if the batch throttle allows (or forced)."""
        if force or self._pending_batches >= self.every_batches:
            self._write(round_, next_batch, stats)

    def complete(self, *, stats: ScanStats) -> None:
        self.sink.emit(
            {
                "event": "scan_complete",
                "stats": stats.as_dict(),
                "hits_new": sorted(self._new_hits),
            }
        )
        self._new_hits = []
        self._pending_batches = 0

    def _write(self, round_: int, next_batch: int, stats: ScanStats) -> None:
        self.sink.emit(
            {
                "event": "scan_checkpoint",
                "round": round_,
                "next_batch": next_batch,
                "stats": stats.as_dict(),
                "hits_new": sorted(self._new_hits),
            }
        )
        self._new_hits = []
        self._pending_batches = 0
