"""Stepwise scan execution: the batched scan loop, one batch per call.

:class:`ScanExecution` is the in-process batched scan path of
:meth:`Scanner.scan` restructured as an explicit state machine:
each :meth:`ScanExecution.step` executes exactly one probe batch
(a round-0 chunk or a retry chunk, with round transitions, pending-set
computation, and checkpoint writes happening between batches exactly
where the monolithic loop performed them).  ``Scanner._scan_batched``
drives an execution to completion, so the single-campaign path *is*
this code; the campaign service (:mod:`repro.service`) interleaves
steps of many executions over one process instead.

Interleaving is safe because every probe verdict — loss, fault, ground
truth — is a pure function of ``(key, address, attempt)``, never of
sequential RNG state: stepping execution A between two steps of
execution B cannot change what either scan observes.  That is the
property that makes a multi-tenant schedule produce per-campaign
results bit-identical to solo runs, and it is enforced by the service
parity tests.

Preemption is stopping: a paused execution simply stops being stepped;
its checkpoint file (when armed) already holds a resumable prefix, so
a cold resume goes through the ordinary PR 4 resume path and finishes
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterator

from .plane import ScanPlane, StaleWorldError
from .probe import ScanResult, ScanStats
from .schedule import CyclicPermutation

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..faults.models import WorkerCrash
    from .checkpoint import ResumeState, ScanCheckpointer
    from .engine import ScanConfig, Scanner


class ScanExecution:
    """One scan's remaining work, executable one batch at a time.

    Built by :meth:`Scanner.start_execution` (or internally by
    ``Scanner._scan_batched``).  Call :meth:`step` until it returns
    False, then read :meth:`result`.  ``stats`` and ``hits`` are live:
    a scheduler can read ``stats.probes_sent`` between steps to charge
    probe budgets at batch granularity.
    """

    def __init__(
        self,
        scanner: "Scanner",
        *,
        ordered: "list[int] | None",
        cols: "tuple[np.ndarray, np.ndarray] | None",
        perm: CyclicPermutation | None,
        loss_key: int,
        port: int,
        config: "ScanConfig",
        checkpoint: "ScanCheckpointer | None" = None,
        resume: "ResumeState | None" = None,
        crash: "WorkerCrash | None" = None,
        completed: ScanResult | None = None,
        finalize: bool = False,
    ):
        self.scanner = scanner
        self.port = port
        self.config = config
        self.ordered = ordered
        self.cols = cols
        self.perm = perm
        self.loss_key = loss_key
        self.checkpoint = checkpoint
        self.crash = crash
        self.batches_done = 0
        self._finalize = finalize
        self._started_at: float | None = None
        if completed is not None:
            # A resume state that already recorded scan_complete: there
            # is no work; the execution is born finished.
            self.stats = completed.stats
            self.hits = completed.hits
            self.n = completed.stats.probes_sent + completed.stats.blacklisted
            self.start_round = self.start_batch = 0
            self.plane = None
            self._result: ScanResult | None = completed
            self._gen: Iterator[None] = iter(())
            return
        if resume is not None:
            self.stats = resume.stats.copy()
            self.hits = set(resume.hits)
            self.start_round, self.start_batch = resume.round, resume.next_batch
        else:
            self.stats = ScanStats()
            self.hits = set()
            self.start_round, self.start_batch = 0, 0
        # The array plane is a frozen snapshot of targets + lookup
        # tables; when the truth/blacklist types support it, every
        # batch below runs as vectorised column passes with identical
        # verdicts (the parity tests and CI gate enforce this).
        self.plane = None
        if config.use_arrays and ScanPlane.supports(
            scanner.truth, scanner.blacklist
        ):
            self.plane = ScanPlane.build(
                scanner.truth,
                scanner.blacklist,
                cols if cols is not None else ordered,
                port,
                scanner.loss_rate,
            )
        self.n = len(cols[0]) if cols is not None else len(ordered)
        # Version token of the world this execution was planned against.
        # A stepped execution spans wall-clock time; if the truth
        # mutates in between (churn advancing an epoch), both the frozen
        # plane and the already-computed pending sets describe a world
        # that no longer exists, so step() refuses to continue.
        self.world_version = getattr(scanner.truth, "world_version", None)
        self._round0_external = False
        self._result = None
        self._gen = self._work()

    @property
    def finished(self) -> bool:
        return self._result is not None

    def skip_round0(self) -> None:
        """Mark round 0 as executed externally (the pool paths).

        ``Scanner._scan_batched`` shards round 0 across a process pool
        when configured; the execution then owns only the retry rounds.
        Must be called before the first :meth:`step`.
        """
        if self.batches_done:
            raise RuntimeError("cannot skip round 0 of a started execution")
        self._round0_external = True

    def step(self) -> bool:
        """Execute one probe batch; False once the scan has finished.

        The final call (the one that returns False) performs the
        terminal bookkeeping: the ``scan_complete`` checkpoint record
        and — for standalone executions — the scanner's summary
        telemetry.  A preempted execution that is never stepped again
        therefore leaves exactly the on-disk state an interrupted run
        would.
        """
        if self._result is not None:
            return False
        self._check_fresh()
        if self._started_at is None:
            self._started_at = time.perf_counter()
        try:
            next(self._gen)
        except StopIteration:
            self._complete()
            return False
        self.batches_done += 1
        return True

    def _check_fresh(self) -> None:
        """Refuse to step against a world that mutated since planning."""
        if self.world_version is None:
            return
        current = getattr(self.scanner.truth, "world_version", None)
        if current is not None and current != self.world_version:
            raise StaleWorldError(
                "scan execution was planned at world version "
                f"{self.world_version} but the truth is now at "
                f"{current}; the world mutated mid-scan (e.g. "
                "DynamicWorld.advance_to) — finish or abort campaigns "
                "before advancing, then plan a fresh scan"
            )

    def run(self) -> ScanResult:
        """Drive the execution to completion and return its result."""
        while self.step():
            pass
        return self.result()

    def result(self) -> ScanResult:
        if self._result is None:
            raise RuntimeError("scan execution has not finished")
        return self._result

    def _complete(self) -> None:
        if self.checkpoint is not None:
            self.checkpoint.complete(stats=self.stats)
        self._result = ScanResult(
            port=self.port, hits=self.hits, stats=self.stats
        )
        if self._finalize:
            elapsed = (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            self.scanner.total_probes += (
                self.stats.probes_sent + self.stats.retransmits
            )
            self.scanner._emit_scan_summary(
                self._result, self.n, elapsed, self.port, self.config
            )

    def _work(self) -> Iterator[None]:
        """Yield once per executed batch, in the monolithic loop's order.

        The body between two yields is exactly the body of one
        iteration of ``Scanner._scan_batched``'s in-process loops —
        same primitives, same sequence — which is what makes a stepped
        execution bit-identical to the monolithic scan.
        """
        from .engine import (
            _iter_permuted_batches,
            _probe_batch,
            _retry_batch,
            _round_key,
        )

        scanner, config = self.scanner, self.config
        plane, perm, loss_key = self.plane, self.perm, self.loss_key
        stats, hits, checkpoint, crash = (
            self.stats, self.hits, self.checkpoint, self.crash,
        )
        tele = scanner.telemetry
        batch_size = config.batch_size
        n = self.n
        start_round = self.start_round
        if start_round == 0:
            if not self._round0_external:
                if plane is not None:
                    for start in range(
                        self.start_batch * batch_size, n, batch_size
                    ):
                        index = start // batch_size
                        if crash is not None:
                            crash.check(0, index)
                        new_hits = plane.probe_range(
                            perm, start, min(start + batch_size, n),
                            loss_key, stats, hits,
                        )
                        tele.count("scan.batches")
                        if checkpoint is not None:
                            checkpoint.note_batch(new_hits)
                            checkpoint.checkpoint(0, index + 1, stats)
                        yield
                else:
                    for index, batch in _iter_permuted_batches(
                        self.ordered, perm, batch_size, self.start_batch
                    ):
                        if crash is not None:
                            crash.check(0, index)
                        new_hits = _probe_batch(
                            scanner.truth, scanner.blacklist,
                            scanner.loss_rate, loss_key, self.port, batch,
                            stats, hits,
                        )
                        tele.count("scan.batches")
                        if checkpoint is not None:
                            checkpoint.note_batch(new_hits)
                            checkpoint.checkpoint(0, index + 1, stats)
                        yield
            start_round = 1
        # Retry rounds always run in-process: the pending set is a
        # shrinking fraction of the target list, and every verdict is
        # the same pure function a pool worker would compute.
        # Checkpoints for retry rounds land only on round boundaries —
        # the pending set is derived from the hits at round start, so a
        # boundary checkpoint is exactly recomputable on resume.
        for round_ in range(start_round, config.retries + 1):
            if plane is not None:
                pending_hi, pending_lo = plane.pending_columns(
                    perm, batch_size, hits
                )
                pending_count = len(pending_hi)
            else:
                pending = scanner._pending_targets(
                    self.ordered, perm, hits, config
                )
                pending_count = len(pending)
            if not pending_count:
                break
            key = _round_key(loss_key, round_)
            if tele.enabled:
                tele.count("scan.retry_rounds")
            for index, start in enumerate(range(0, pending_count, batch_size)):
                if crash is not None:
                    crash.check(round_, index)
                if plane is not None:
                    new_hits = plane.retry_chunk(
                        pending_hi[start : start + batch_size],
                        pending_lo[start : start + batch_size],
                        key, round_, stats, hits,
                    )
                else:
                    new_hits = _retry_batch(
                        scanner.truth, scanner.loss_rate, key, round_,
                        self.port, pending[start : start + batch_size],
                        stats, hits,
                    )
                tele.count("scan.batches")
                if checkpoint is not None:
                    checkpoint.note_batch(new_hits)
                yield
            if checkpoint is not None and round_ < config.retries:
                checkpoint.checkpoint(round_ + 1, 0, stats, force=True)
