"""Probe and result types for the simulated scanner."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ipv6.address import format_address_int

#: The paper's scan target throughout the evaluation.
DEFAULT_PORT = 80


@dataclass(frozen=True)
class Probe:
    """One TCP SYN probe."""

    addr: int
    port: int = DEFAULT_PORT

    def __str__(self) -> str:
        return f"SYN {format_address_int(self.addr)}:{self.port}"


#: The paper's scan rate (§6): "approximately 5.8 B probes at 100 K
#: packets per second".
DEFAULT_PROBE_RATE_PPS = 100_000


@dataclass
class ScanStats:
    """Counters for one scan: probes sent, responses, drops, retries.

    Every field is an order-independent sum, so per-chunk stats from
    sharded scan workers merge into exactly the sequential totals.
    ``probes_sent`` counts first-attempt probes only; retransmissions
    are tallied separately in ``retransmits`` so retry-enabled runs
    stay comparable (probe budgets are first-attempt budgets) while
    the true on-the-wire volume is ``probes_sent + retransmits``.
    """

    probes_sent: int = 0
    responses: int = 0
    blacklisted: int = 0
    dropped: int = 0
    retransmits: int = 0

    #: Field order for serialisation; kept explicit so checkpoint files
    #: stay stable if dataclass field order ever changes.
    FIELDS = ("probes_sent", "responses", "blacklisted", "dropped", "retransmits")

    def merge(self, other: "ScanStats") -> "ScanStats":
        """Fold another scan's counters into this one (returns self)."""
        self.probes_sent += other.probes_sent
        self.responses += other.responses
        self.blacklisted += other.blacklisted
        self.dropped += other.dropped
        self.retransmits += other.retransmits
        return self

    def as_dict(self) -> dict[str, int]:
        """JSON-ready counter mapping (checkpoint / telemetry payloads)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "ScanStats":
        """Rebuild from :meth:`as_dict` output; absent keys default to 0."""
        return cls(**{name: int(payload.get(name, 0)) for name in cls.FIELDS})

    def copy(self) -> "ScanStats":
        return ScanStats(**self.as_dict())

    @property
    def hit_rate(self) -> float:
        """Responses per probe sent (0 when nothing was sent)."""
        return self.responses / self.probes_sent if self.probes_sent else 0.0

    def wall_time_seconds(self, rate_pps: int = DEFAULT_PROBE_RATE_PPS) -> float:
        """Wall-clock time this scan would take at a given probe rate.

        The paper's full run — 5.8 B probes at 100 K pps — works out to
        ~16 hours of probing; this helper makes simulated campaigns
        report the same operational quantity.
        """
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive: {rate_pps}")
        return self.probes_sent / rate_pps


@dataclass
class ScanResult:
    """Outcome of scanning a target list on one port."""

    port: int
    hits: set[int] = field(default_factory=set)
    stats: ScanStats = field(default_factory=ScanStats)

    def hit_count(self) -> int:
        return len(self.hits)
