"""Shared-memory transport for the array scan plane.

A pooled scan used to pickle every target batch into its worker — an
O(targets) stream of boxed 128-bit ints through the executor's pipe.
The array plane removes that: the parent packs the target columns and
every frozen lookup table into ONE :mod:`multiprocessing.shared_memory`
segment, workers attach read-only numpy views at initialisation, and a
shard task is just ``(batch_index, start, stop)`` — O(1) bytes no
matter how many targets the campaign holds.

:class:`SharedArrays` is the transport: a named segment plus a
picklable *spec* (name, dtype, shape, offset per array) from which any
process reconstructs zero-copy views.  Lifecycle rules:

* the **parent** creates the segment and is the only process that
  unlinks it — always in a ``finally`` around pool use, so an injected
  worker crash (or any pool failure) cannot leak ``/dev/shm`` entries;
* **workers** attach and immediately unregister the segment from their
  ``resource_tracker`` — attaching is not owning, and without the
  unregister a dying worker's tracker would either spuriously warn or,
  worse, unlink the segment out from under its siblings (CPython
  gh-82300); the OS reclaims the worker's mapping at process exit.

Segment names carry the :data:`SEGMENT_PREFIX` marker so tests (and
operators) can audit ``/dev/shm`` for leaks by name.
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Name prefix for every scan-plane segment (leak audits grep for it).
SEGMENT_PREFIX = "repro-scan-"


class SharedArrays:
    """Named numpy arrays packed into one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        arrays: dict[str, np.ndarray],
        spec: dict,
        *,
        owner: bool,
    ):
        self._shm = shm
        self.arrays = arrays
        self._spec = spec
        self._owner = owner

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrays":
        """Copy the given arrays into a fresh shared segment (parent side)."""
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            layout[name] = (array.dtype.str, array.shape, offset)
            offset += array.nbytes
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, offset),
            name=SEGMENT_PREFIX + secrets.token_hex(8),
        )
        views: dict[str, np.ndarray] = {}
        spec = {"segment": shm.name, "layout": layout}
        for name, array in arrays.items():
            dtype, shape, off = layout[name]
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
            view[...] = array
            views[name] = view
        return cls(shm, views, spec, owner=True)

    @property
    def spec(self) -> dict:
        """Picklable description workers use to :meth:`attach`."""
        return self._spec

    @classmethod
    def attach(cls, spec: dict) -> "SharedArrays":
        """Open read-only views onto an existing segment (worker side).

        Attaching must not register the segment with the worker's
        resource tracker: attaching is not owning (CPython gh-82300),
        and with forked workers all processes share one tracker whose
        name cache is a *set* — duplicate registrations collapse, so
        the balancing unregisters would underflow it and spew
        KeyErrors.  Suppressing registration during the open keeps the
        tracker ledger exactly one entry per segment (the creator's).
        """
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=spec["segment"])
        finally:
            resource_tracker.register = original_register
        views: dict[str, np.ndarray] = {}
        for name, (dtype, shape, off) in spec["layout"].items():
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
            view.flags.writeable = False
            views[name] = view
        return cls(shm, views, spec, owner=False)

    def close(self) -> None:
        """Drop views and unmap; the owner also unlinks the segment."""
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def publish_arrays(arrays: dict[str, np.ndarray]) -> dict:
    """Worker-side publish: copy arrays into a segment, return its spec.

    The inverse data direction of the scan transport above — a *worker*
    produces bulk arrays (generated target columns) the *parent* must
    collect.  The worker creates the segment with resource-tracker
    registration suppressed (same gh-82300 reasoning as :meth:`attach`:
    the pool worker outlives the handoff, and its tracker must not
    unlink a segment the parent still has to read), unmaps its own view
    immediately, and ships only the spec through the result pickle.
    Ownership transfers with the spec: :func:`consume_arrays` unlinks.
    If the parent dies between publish and consume the segment leaks
    until reboot — auditable in ``/dev/shm`` by the name prefix.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shared = SharedArrays.create(arrays)
    finally:
        resource_tracker.register = original_register
    spec = shared.spec
    shared._owner = False  # unlink happens in consume_arrays
    shared.close()
    return spec


def consume_arrays(spec: dict) -> dict[str, np.ndarray]:
    """Parent-side collect: copy arrays out of a published segment.

    Copies (the segment is about to vanish), then unlinks — the parent
    assumes ownership the moment it consumes.
    """
    shared = SharedArrays.attach(spec)
    try:
        out = {
            name: np.array(view, copy=True)
            for name, view in shared.arrays.items()
        }
    finally:
        shared._owner = True
        shared.close()
    return out
