"""Scan scheduling: courteous target ordering across networks.

The paper randomises destination order and runs scans serially "to
avoid overloading networks" (§6).  Uniform shuffling achieves that in
expectation; this module also provides a deterministic round-robin
interleave that bounds the *burst* any single routed prefix receives —
the property an operations team actually wants to promise.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from ..ipv6.prefix import Prefix
from ..simnet.bgp import BgpTable


def interleave_by_network(
    targets: Iterable[int],
    bgp: BgpTable,
    *,
    rng_seed: int | None = 0,
) -> list[int]:
    """Round-robin targets across routed prefixes.

    Targets are grouped by routed prefix (unrouted targets form one
    group), each group is shuffled, and the groups are drained one
    address at a time in rotating order.  Any window of *k* consecutive
    probes touches a single prefix at most ``ceil(k / live_groups)``
    times — a hard burst bound that a plain shuffle only gives in
    expectation.
    """
    rng = random.Random(rng_seed)
    groups: dict[Prefix | None, list[int]] = defaultdict(list)
    for addr in {int(t) for t in targets}:
        route = bgp.lookup(addr)
        groups[route.prefix if route else None].append(addr)
    queues = []
    for key in sorted(groups, key=lambda p: (p is None, p)):
        bucket = groups[key]
        rng.shuffle(bucket)
        queues.append(bucket)
    ordered: list[int] = []
    index = 0
    while queues:
        if index >= len(queues):
            index = 0
        queue = queues[index]
        ordered.append(queue.pop())
        if not queue:
            # The next queue slides into this index; do not advance.
            del queues[index]
        else:
            index += 1
    return ordered


def max_burst(ordered: Sequence[int], bgp: BgpTable, window: int) -> int:
    """Largest number of same-prefix probes in any length-``window`` slice.

    The verification metric for :func:`interleave_by_network`; useful
    in tests and when tuning scan rates.
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    prefixes = []
    for addr in ordered:
        route = bgp.lookup(int(addr))
        prefixes.append(route.prefix if route else None)
    worst = 0
    counts: dict[Prefix | None, int] = defaultdict(int)
    for i, prefix in enumerate(prefixes):
        counts[prefix] += 1
        if i >= window:
            counts[prefixes[i - window]] -= 1
        worst = max(worst, counts[prefix])
    return worst


def batched(targets: Sequence[int], batch_size: int) -> Iterator[list[int]]:
    """Split an ordered target list into probe batches."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive: {batch_size}")
    for start in range(0, len(targets), batch_size):
        yield list(targets[start : start + batch_size])
