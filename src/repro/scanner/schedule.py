"""Scan scheduling: courteous target ordering and probe-rate policy.

The paper randomises destination order and runs scans serially "to
avoid overloading networks" (§6).  Uniform shuffling achieves that in
expectation; this module also provides a deterministic round-robin
interleave that bounds the *burst* any single routed prefix receives —
the property an operations team actually wants to promise — and the
ZMap-style :class:`CyclicPermutation` the scan engine uses to visit a
target list in pseudo-random order with O(1) auxiliary memory.

It is also where probe-rate *policy* lives: :class:`RatePolicy` is the
budget/window admission rule (admit at most ``budget`` of every
``window`` arrivals) that both sides of a rate cap share — the network
side as :class:`repro.faults.RateLimiter` (a throttling router
modelled as a fault) and the operator side as the campaign scheduler's
per-prefix cap.  :class:`TenantBudget` is the scheduler's mutable
per-tenant probe ledger.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..ipv6.addrplane import _mix64_np  # noqa: F401  (re-export)
from ..ipv6.addrplane import dedupe_columns, is_columns, unpack
from ..ipv6.prefix import Prefix
from ..simnet.bgp import BgpTable

_M64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """The splitmix64 finaliser: a cheap, well-mixed 64-bit hash."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class CyclicPermutation:
    """A keyed bijection over ``[0, n)`` — ZMap's trick for IPv6 lists.

    ZMap scans the IPv4 space in the order of a cyclic group generator
    so the whole permutation costs O(1) state.  The target lists here
    are arbitrary, so we permute their *index space* instead: a 4-round
    Feistel network over the smallest even-bit domain covering ``n``,
    with cycle-walking for out-of-range images.  Walking indices
    ``0..n-1`` through the permutation visits every target exactly once
    in a key-dependent pseudo-random order, with no shuffled copy of
    the list and no index array.

    The scalar :meth:`__call__` is the specification; the vectorised
    :meth:`permute_range` computes the same mapping batch-wise (used by
    the batched scan path) and is verified equal in the tests.
    """

    __slots__ = ("n", "_half_bits", "_half_mask", "_keys")

    def __init__(self, n: int, key: int, rounds: int = 4):
        if n < 0:
            raise ValueError(f"permutation size must be non-negative: {n}")
        self.n = n
        bits = max(2, (n - 1).bit_length()) if n > 1 else 2
        half = (bits + 1) // 2
        self._half_bits = half
        self._half_mask = (1 << half) - 1
        self._keys = tuple(mix64(key + r * _GOLDEN) for r in range(rounds))

    def _encrypt(self, x: int) -> int:
        half, mask = self._half_bits, self._half_mask
        left, right = x >> half, x & mask
        for k in self._keys:
            left, right = right, left ^ (mix64(right ^ k) & mask)
        return (left << half) | right

    def __call__(self, index: int) -> int:
        """Image of ``index`` under the permutation (both in ``[0, n)``)."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        image = self._encrypt(index)
        while image >= self.n:
            # Cycle-walk: the domain is < 4n, so this terminates fast,
            # and re-encrypting stays within the index's own cycle —
            # the first in-range image is unique to it (bijectivity).
            image = self._encrypt(image)
        return image

    def permute_range(self, start: int, stop: int) -> list[int]:
        """Images of ``start..stop-1`` as a Python list."""
        return self.permute_range_arr(start, stop).tolist()

    def permute_range_arr(self, start: int, stop: int) -> "np.ndarray":
        """Images of ``start..stop-1`` as a uint64 array (no boxing).

        The array scan plane indexes its hi/lo target columns with this
        directly; :meth:`permute_range` is the boxed wrapper for the
        object path.
        """
        if not 0 <= start <= stop <= self.n:
            raise IndexError(f"range [{start}, {stop}) outside [0, {self.n})")
        if start == stop:
            return np.empty(0, dtype=np.uint64)
        half = np.uint64(self._half_bits)
        mask = np.uint64(self._half_mask)
        keys = [np.uint64(k) for k in self._keys]

        def encrypt(x: "np.ndarray") -> "np.ndarray":
            left, right = x >> half, x & mask
            for k in keys:
                left, right = right, left ^ (_mix64_np(right ^ k) & mask)
            return (left << half) | right

        images = encrypt(np.arange(start, stop, dtype=np.uint64))
        walking = images >= self.n
        while walking.any():
            images[walking] = encrypt(images[walking])
            walking = images >= self.n
        return images


@dataclass(frozen=True)
class RatePolicy:
    """Budget/window admission: admit ``budget`` of every ``window`` slots.

    The mechanics behind ICMPv6-style rate limiting, promoted from the
    :class:`repro.faults.RateLimiter` fault model to a first-class
    scheduling policy.  A probe hashed to arrival slot ``s`` is
    admitted iff ``s % window < budget``; everything else about *which*
    slot a probe lands in (the PRF over prefix/address/attempt) stays
    with the consumer, so the fault overlay and the scheduler share one
    definition of "over the cap" while keying it however they need.
    """

    budget: int = 64
    window: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.budget <= self.window:
            raise ValueError(
                f"budget must be in (0, window]: {self.budget}/{self.window}"
            )

    @property
    def admitted_fraction(self) -> float:
        """Long-run fraction of arrivals the policy admits."""
        return self.budget / self.window

    def admits(self, slot: int) -> bool:
        """Whether the arrival hashed to ``slot`` is within the budget."""
        return slot % self.window < self.budget

    def admits_arr(self, slots: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`admits` over a uint64 slot column."""
        return slots % np.uint64(self.window) < np.uint64(self.budget)


@dataclass
class TenantBudget:
    """Mutable per-tenant probe ledger for the campaign scheduler.

    ``limit`` is the tenant's total first-attempt probe budget across
    all of its campaigns (``None`` = unlimited); ``spent`` accumulates
    as the scheduler charges probe batches.  Enforcement is batch
    granular: the scheduler checks :attr:`exhausted` before dispatching
    a batch, so overshoot is bounded by one batch.
    """

    limit: int | None = None
    spent: int = 0

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"limit must be >= 0: {self.limit}")
        if self.spent < 0:
            raise ValueError(f"spent must be >= 0: {self.spent}")

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit

    def remaining(self) -> float:
        """Probes left before exhaustion (``inf`` when unlimited)."""
        if self.limit is None:
            return float("inf")
        return max(0, self.limit - self.spent)

    def charge(self, probes: int) -> None:
        """Record ``probes`` first-attempt probes against the budget."""
        if probes < 0:
            raise ValueError(f"cannot charge negative probes: {probes}")
        self.spent += probes


def interleave_by_network(
    targets: "Iterable[int] | tuple[np.ndarray, np.ndarray]",
    bgp: BgpTable,
    *,
    rng_seed: int | None = 0,
) -> list[int]:
    """Round-robin targets across routed prefixes.

    Targets are grouped by routed prefix (unrouted targets form one
    group), each group is shuffled, and the groups are drained one
    address at a time in rotating order.  Any window of *k* consecutive
    probes touches a single prefix at most ``ceil(k / live_groups)``
    times — a hard burst bound that a plain shuffle only gives in
    expectation.

    ``targets`` may also be packed ``(hi, lo)`` columns; the dedupe
    then runs as a fused-key array pass producing the same first-seen
    order the scalar path yields, before unboxing for the inherently
    per-address routing lookups.
    """
    if is_columns(targets):
        deduped: "Iterable[int]" = unpack(*dedupe_columns(*targets))
    else:
        # dict.fromkeys, not a set: set iteration order varies with
        # hash randomisation / CPython build, which would leak into
        # each group's pre-shuffle order and break cross-run
        # determinism (the same footgun Scanner.scan's dedupe fixed).
        deduped = dict.fromkeys(int(t) for t in targets)
    rng = random.Random(rng_seed)
    groups: dict[Prefix | None, list[int]] = defaultdict(list)
    for addr in deduped:
        route = bgp.lookup(addr)
        groups[route.prefix if route else None].append(addr)
    queues = []
    for key in sorted(groups, key=lambda p: (p is None, p)):
        bucket = groups[key]
        rng.shuffle(bucket)
        queues.append(bucket)
    ordered: list[int] = []
    index = 0
    while queues:
        if index >= len(queues):
            index = 0
        queue = queues[index]
        ordered.append(queue.pop())
        if not queue:
            # The next queue slides into this index; do not advance.
            del queues[index]
        else:
            index += 1
    return ordered


def max_burst(ordered: Sequence[int], bgp: BgpTable, window: int) -> int:
    """Largest number of same-prefix probes in any length-``window`` slice.

    The verification metric for :func:`interleave_by_network`; useful
    in tests and when tuning scan rates.
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    prefixes = []
    for addr in ordered:
        route = bgp.lookup(int(addr))
        prefixes.append(route.prefix if route else None)
    worst = 0
    counts: dict[Prefix | None, int] = defaultdict(int)
    for i, prefix in enumerate(prefixes):
        counts[prefix] += 1
        if i >= window:
            counts[prefixes[i - window]] -= 1
        worst = max(worst, counts[prefix])
    return worst


def batched(targets: Sequence[int], batch_size: int) -> Iterator[list[int]]:
    """Split an ordered target list into probe batches."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive: {batch_size}")
    for start in range(0, len(targets), batch_size):
        yield list(targets[start : start + batch_size])
