"""Scan blacklist: opt-out prefixes the scanner must never probe.

The paper follows the ZMap ethical-scanning guidelines and honours all
opt-out requests (§6); this module is the enforcement point.  The
simulated scanner consults the blacklist before every probe, and the
tests inject blacklist entries to verify nothing leaks through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from collections import defaultdict

from ..ipv6.prefix import Prefix, network_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..ipv6.addrplane import PrefixMaskTable


class Blacklist:
    """A set of never-probe prefixes with fast membership checks."""

    def __init__(self, prefixes: Iterable[Prefix] = ()) -> None:
        self._by_length: dict[int, set[int]] = defaultdict(set)
        self._lengths: list[int] = []
        self._count = 0
        self._frozen: "PrefixMaskTable | None" = None
        for prefix in prefixes:
            self.add(prefix)

    def add(self, prefix: Prefix) -> None:
        bucket = self._by_length[prefix.length]
        if prefix.network not in bucket:
            bucket.add(prefix.network)
            self._count += 1
            self._frozen = None
            if prefix.length not in self._lengths:
                self._lengths.append(prefix.length)
                self._lengths.sort()

    def add_address(self, addr: int) -> None:
        """Blacklist a single address (a /128 entry)."""
        self.add(Prefix(int(addr), 128))

    def contains(self, addr: int) -> bool:
        value = int(addr)
        for length in self._lengths:
            if value & network_mask(length) in self._by_length[length]:
                return True
        return False

    def contains_many(self, addrs: Sequence[int]) -> list[bool]:
        """Batched :meth:`contains` for the chunked scan path.

        One pass per prefix length over the still-unmatched addresses,
        instead of one method call (and mask rebuild) per address.
        """
        if not self._count:
            return [False] * len(addrs)
        lengths = iter(self._lengths)
        first = next(lengths)
        mask = network_mask(first)
        bucket = self._by_length[first]
        flags = [int(a) & mask in bucket for a in addrs]
        for length in lengths:
            mask = network_mask(length)
            bucket = self._by_length[length]
            for i, flagged in enumerate(flags):
                if not flagged and int(addrs[i]) & mask in bucket:
                    flags[i] = True
        return flags

    def frozen_table(self) -> "PrefixMaskTable | None":
        """The blacklist as a frozen mask table, memoised until :meth:`add`.

        ``None`` when empty.  The table's arrays are immutable snapshots
        suitable for sharing with scan workers.
        """
        if not self._count:
            return None
        if self._frozen is None:
            from ..ipv6.addrplane import PrefixMaskTable

            self._frozen = PrefixMaskTable.from_networks(
                {length: self._by_length[length] for length in self._lengths}
            )
        return self._frozen

    def contains_arr(self, hi: "np.ndarray", lo: "np.ndarray") -> "np.ndarray":
        """Array-native :meth:`contains_many` over hi/lo uint64 columns."""
        table = self.frozen_table()
        if table is None:
            import numpy as np

            return np.zeros(len(hi), dtype=bool)
        return table.match_any(hi, lo)

    def __contains__(self, addr) -> bool:
        return self.contains(int(addr))

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def prefixes(self) -> Iterator[Prefix]:
        for length in sorted(self._by_length):
            for network in sorted(self._by_length[length]):
                yield Prefix(network, length)

    @classmethod
    def parse_lines(cls, lines: Iterable[str]) -> "Blacklist":
        """Build from text lines (one CIDR per line, # comments allowed)."""
        blacklist = cls()
        for line in lines:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            if "/" not in line:
                line += "/128"
            blacklist.add(Prefix.parse(line))
        return blacklist
