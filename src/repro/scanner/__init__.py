"""Simulated scan engine, blacklist, and §6.2 dealiasing pipeline."""

from .blacklist import Blacklist
from .checkpoint import (
    ResumeState,
    ScanCheckpointer,
    load_scan_checkpoint,
    target_digest,
)
from .dealias import (
    AliasedSummary,
    DealiasReport,
    as_level_inspection,
    dealias,
    detect_aliased_prefixes,
    group_hits_by_prefix,
    is_prefix_aliased,
    split_hits,
    summarize_aliased_prefixes,
)
from .engine import ScanConfig, Scanner
from .execution import ScanExecution
from .plane import ScanPlane, StaleWorldError
from .schedule import (
    CyclicPermutation,
    RatePolicy,
    TenantBudget,
    batched,
    interleave_by_network,
    max_burst,
)
from .probe import DEFAULT_PORT, Probe, ScanResult, ScanStats

__all__ = [
    "Blacklist",
    "CyclicPermutation",
    "DEFAULT_PORT",
    "RatePolicy",
    "ScanExecution",
    "ScanPlane",
    "StaleWorldError",
    "TenantBudget",
    "AliasedSummary",
    "DealiasReport",
    "Probe",
    "ResumeState",
    "ScanCheckpointer",
    "ScanConfig",
    "ScanResult",
    "ScanStats",
    "Scanner",
    "batched",
    "load_scan_checkpoint",
    "target_digest",
    "interleave_by_network",
    "max_burst",
    "as_level_inspection",
    "dealias",
    "detect_aliased_prefixes",
    "group_hits_by_prefix",
    "is_prefix_aliased",
    "split_hits",
    "summarize_aliased_prefixes",
]
