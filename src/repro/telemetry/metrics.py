"""Mergeable metrics: counters, gauges, and fixed-bucket histograms.

The registry is the aggregation half of the telemetry subsystem: hot
paths increment named metrics, and a :meth:`MetricsRegistry.snapshot`
freezes the current values into a plain-data
:class:`MetricsSnapshot`.  Snapshots obey the same contract as
:meth:`repro.scanner.probe.ScanStats.merge` — ``merge`` is associative
and commutative — so per-worker metrics from the
:attr:`~repro.scanner.engine.ScanConfig.workers` process shards (or
any other partition of a run) combine into exactly the totals the
sequential path would have recorded, regardless of completion order.

Merge rules per metric kind:

* **counter** — values add;
* **gauge** — values combine with ``max`` (the only order-independent
  choice for a last-known-level metric; documented, deliberate);
* **histogram** — bucket counts, total count, and value sum add;
  min/max combine with min/max.  Histograms with the same name must
  share bucket bounds, which is why bounds are fixed at creation.

Nothing in this module touches an RNG stream or the system clock, so
instrumented code keeps bit-identical behaviour with telemetry on or
off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Default histogram bucket upper bounds (seconds-flavoured, but any
#: unit works — callers pick bounds that suit the quantity observed).
DEFAULT_BOUNDS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

_INF = float("inf")


class Counter:
    """A monotonically increasing named sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A last-known level (merged across shards with ``max``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with overflow, sum, min, and max.

    ``bounds`` are inclusive upper edges; one extra overflow bucket
    catches everything above the last bound.  Fixed bounds are what
    make two shards' histograms mergeable bucket-by-bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"bounds must strictly increase: {self.bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = _INF
        self.max = -_INF

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class HistogramData:
    """Plain-data histogram state (the snapshot/JSON form)."""

    bounds: tuple[float, ...]
    bucket_counts: list[int]
    count: int = 0
    total: float = 0.0
    min: float = _INF
    max: float = -_INF

    def merge(self, other: "HistogramData") -> "HistogramData":
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
        ]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramData":
        count = int(data["count"])
        return cls(
            bounds=tuple(data["bounds"]),
            bucket_counts=list(data["bucket_counts"]),
            count=count,
            total=float(data["total"]),
            min=float(data["min"]) if count else _INF,
            max=float(data["max"]) if count else -_INF,
        )


@dataclass
class MetricsSnapshot:
    """Frozen metric values; ``merge`` is associative and commutative."""

    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramData] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold another snapshot into this one (returns self)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            mine = self.gauges.get(name)
            self.gauges[name] = value if mine is None else max(mine, value)
        for name, data in other.histograms.items():
            mine_h = self.histograms.get(name)
            if mine_h is None:
                self.histograms[name] = HistogramData(
                    bounds=data.bounds,
                    bucket_counts=list(data.bucket_counts),
                    count=data.count,
                    total=data.total,
                    min=data.min,
                    max=data.max,
                )
            else:
                mine_h.merge(data)
        return self

    def copy(self) -> "MetricsSnapshot":
        fresh = MetricsSnapshot()
        fresh.merge(self)
        return fresh

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: h.as_dict() for n, h in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                name: HistogramData.from_dict(h)
                for name, h in data.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """Named metrics for one run (or one worker shard of a run).

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create, so
    instrumented code never needs to pre-declare a metric; asking for
    an existing name with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif type(metric) is not Histogram:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not Histogram"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> MetricsSnapshot:
        """Freeze current values into a mergeable, picklable snapshot."""
        snap = MetricsSnapshot()
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                snap.counters[name] = metric.value
            elif isinstance(metric, Gauge):
                snap.gauges[name] = metric.value
            else:
                snap.histograms[name] = HistogramData(
                    bounds=metric.bounds,
                    bucket_counts=list(metric.bucket_counts),
                    count=metric.count,
                    total=metric.total,
                    min=metric.min,
                    max=metric.max,
                )
        return snap
