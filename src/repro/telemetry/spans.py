"""Nested timed spans and the :class:`Telemetry` façade.

A *span* is a context manager that times a pipeline stage.  Spans
nest; each span records its dot-joined path (``scan/...`` inside
``full_scan`` becomes ``full_scan.scan``), its wall-clock duration,
and the counter increments attributed to it — every
:meth:`Telemetry.count` call made while the span is the innermost
active one is tallied against it as well as against the global
registry.  On exit a span emits one ``span`` event to the sink and
observes its duration in the ``span.<path>.seconds`` histogram.

:class:`Telemetry` is the single object instrumented code touches: it
bundles a :class:`~repro.telemetry.metrics.MetricsRegistry`, a
:class:`~repro.telemetry.sinks.Sink`, and the span stack.  The module
singleton :data:`NULL_TELEMETRY` is the default everywhere — all of
its operations are no-ops, so un-instrumented callers pay one
attribute load and a truth test on the hot path, nothing more.

Telemetry never reads an RNG and never reorders work: enabling it
cannot change hits, stats, clusters, or verdicts.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from .metrics import DEFAULT_BOUNDS, MetricsRegistry, MetricsSnapshot
from .sinks import NullSink, Sink

#: Bucket bounds for span-duration histograms (seconds).
SPAN_BOUNDS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)


class Span:
    """One timed, nested pipeline stage (use via :meth:`Telemetry.span`)."""

    __slots__ = ("telemetry", "name", "path", "attrs", "counters", "seconds", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict):
        self.telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.path = name  # finalised on __enter__ from the active stack
        self.counters: dict[str, int | float] = {}
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = self.telemetry._span_stack
        if stack:
            self.path = f"{stack[-1].path}.{self.name}"
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        stack = self.telemetry._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        self.telemetry._finish_span(self, failed=exc_type is not None)


class _NullSpan:
    """Reusable no-op span for :data:`NULL_TELEMETRY`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Metrics registry + event sink + span stack for one run."""

    #: True for real telemetry; the null singleton overrides to False so
    #: hot paths can skip building labels/payloads entirely.
    enabled = True

    def __init__(
        self,
        sink: Sink | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.sink = sink or NullSink()
        self.registry = registry or MetricsRegistry()
        self._span_stack: list[Span] = []

    # -- metrics ------------------------------------------------------------
    def count(self, name: str, amount: int | float = 1) -> None:
        """Increment a named counter (attributed to the active span too)."""
        self.registry.counter(name).inc(amount)
        if self._span_stack:
            counters = self._span_stack[-1].counters
            counters[name] = counters.get(name, 0) + amount

    def gauge(self, name: str, value: int | float) -> None:
        self.registry.gauge(name).set(value)

    def observe(
        self, name: str, value: int | float,
        bounds: Iterable[float] = DEFAULT_BOUNDS,
    ) -> None:
        self.registry.histogram(name, bounds).observe(value)

    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker shard's snapshot into this registry.

        Addition order does not matter (snapshot ``merge`` is
        commutative), so shards may land in any completion order and
        still reproduce the sequential totals.
        """
        for name, value in snapshot.counters.items():
            self.registry.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            gauge = self.registry.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, data in snapshot.histograms.items():
            histogram = self.registry.histogram(name, data.bounds)
            histogram.bucket_counts = [
                a + b for a, b in zip(histogram.bucket_counts, data.bucket_counts)
            ]
            histogram.count += data.count
            histogram.total += data.total
            histogram.min = min(histogram.min, data.min)
            histogram.max = max(histogram.max, data.max)

    # -- spans and events ---------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """Open a nested timed span: ``with tele.span("scan"): ...``."""
        return Span(self, name, attrs)

    def _finish_span(self, span: Span, *, failed: bool) -> None:
        self.registry.histogram(
            f"span.{span.path}.seconds", SPAN_BOUNDS
        ).observe(span.seconds)
        if self.sink.enabled:
            event = {
                "event": "span",
                "name": span.name,
                "path": span.path,
                "seconds": round(span.seconds, 6),
            }
            if span.attrs:
                event["attrs"] = dict(span.attrs)
            if span.counters:
                event["counters"] = dict(span.counters)
            if failed:
                event["failed"] = True
            self.sink.emit(event)

    def event(self, kind: str, payload: Mapping | None = None) -> None:
        """Emit a free-form event (``progress``, ``summary``, ...)."""
        if not self.sink.enabled:
            return
        event = {"event": kind}
        if payload:
            event.update(payload)
        if self._span_stack:
            event.setdefault("span", self._span_stack[-1].path)
        self.sink.emit(event)

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        """Emit the current metrics snapshot as one ``metrics`` event."""
        if self.sink.enabled:
            self.sink.emit(
                {"event": "metrics", "snapshot": self.snapshot().as_dict()}
            )

    def close(self) -> None:
        """Flush the final snapshot and close the sink."""
        self.flush()
        self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullTelemetry(Telemetry):
    """Shared inert telemetry: every operation is a no-op.

    This is what instrumented code sees when no telemetry was supplied,
    so the overhead with telemetry off is a method call that returns
    immediately — the <5 % wall-clock budget in ISSUE acceptance is
    enforced by ``tests/test_telemetry.py`` on counter paths and by the
    scan benchmarks end to end.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(NullSink(), MetricsRegistry())

    def count(self, name: str, amount: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: int | float) -> None:
        pass

    def observe(
        self, name: str, value: int | float,
        bounds: Iterable[float] = DEFAULT_BOUNDS,
    ) -> None:
        pass

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, kind: str, payload: Mapping | None = None) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The inert default used by every instrumented module.
NULL_TELEMETRY = _NullTelemetry()


def ensure(telemetry: Telemetry | None) -> Telemetry:
    """Normalise an optional telemetry argument to a usable object."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
