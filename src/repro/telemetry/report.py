"""Telemetry run reports: summarise one JSONL run, diff two.

``repro report RUN.jsonl`` renders the summary; ``repro report
RUN.jsonl --against BASELINE.jsonl`` renders the delta view.  Both
work from nothing but the JSONL file — the manifest event makes the
file self-describing, so reports can be generated long after (and far
away from) the run that produced it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .manifest import RunManifest
from .metrics import MetricsSnapshot
from .sinks import read_jsonl


@dataclass
class SpanSummary:
    """Aggregated timings for one span path."""

    path: str
    count: int = 0
    total_seconds: float = 0.0


@dataclass
class RunSummary:
    """Everything a report needs from one telemetry JSONL file."""

    path: str
    manifest: RunManifest | None = None
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    spans: dict[str, SpanSummary] = field(default_factory=dict)
    event_count: int = 0


def load_run(path: str | os.PathLike) -> RunSummary:
    """Parse a JsonlSink file into a :class:`RunSummary`.

    ``metrics`` events merge (a multi-stage run may flush more than
    once; counter totals stay correct because each flush is a snapshot
    of the same registry — later flushes supersede earlier ones, so
    the *last* snapshot wins rather than summing).  ``span`` events
    aggregate by path.
    """
    summary = RunSummary(path=os.fspath(path))
    for event in read_jsonl(path):
        summary.event_count += 1
        kind = event.get("event")
        if kind == "manifest":
            summary.manifest = RunManifest.from_dict(event)
        elif kind == "metrics":
            summary.metrics = MetricsSnapshot.from_dict(
                event.get("snapshot", {})
            )
        elif kind == "span":
            span_path = str(event.get("path", event.get("name", "?")))
            span = summary.spans.setdefault(span_path, SpanSummary(span_path))
            span.count += 1
            span.total_seconds += float(event.get("seconds", 0.0))
    return summary


def _format_value(value: float | int) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.4f}"
    return f"{int(value):,}"


def render_summary(run: RunSummary) -> str:
    """Human-readable summary table for one run."""
    lines: list[str] = []
    manifest = run.manifest
    if manifest is not None:
        lines.append(f"run: {manifest.command}  (repro {manifest.version}, "
                     f"python {manifest.python})")
        lines.append(f"platform: {manifest.platform}")
        if manifest.rng_seed is not None:
            lines.append(f"rng seed: {manifest.rng_seed}")
        if manifest.config:
            config = ", ".join(
                f"{k}={v}" for k, v in sorted(manifest.config.items())
            )
            lines.append(f"config: {config}")
    else:
        lines.append(f"run: {run.path} (no manifest event)")
    lines.append(f"events: {run.event_count}")
    counters = run.metrics.counters
    if counters:
        lines.append("")
        lines.append(f"{'counter':<38} {'value':>14}")
        for name in sorted(counters):
            lines.append(f"{name:<38} {_format_value(counters[name]):>14}")
    gauges = run.metrics.gauges
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<38} {'value':>14}")
        for name in sorted(gauges):
            lines.append(f"{name:<38} {_format_value(gauges[name]):>14}")
    if run.spans:
        lines.append("")
        lines.append(f"{'span':<38} {'count':>7} {'total (s)':>11}")
        for span_path in sorted(run.spans):
            span = run.spans[span_path]
            lines.append(
                f"{span_path:<38} {span.count:>7} {span.total_seconds:>11.3f}"
            )
    return "\n".join(lines)


def render_delta(run: RunSummary, baseline: RunSummary) -> str:
    """Delta view: how ``run`` differs from ``baseline``.

    Counters show absolute and relative change; spans show total-time
    change.  Manifest mismatches (version, command, config) are called
    out first — a hit-rate regression means nothing if the two runs
    scanned different worlds.
    """
    lines: list[str] = [f"delta: {run.path} vs {baseline.path}"]
    a, b = run.manifest, baseline.manifest
    if a is not None and b is not None:
        if a.command != b.command:
            lines.append(f"! commands differ: {a.command} vs {b.command}")
        if a.version != b.version:
            lines.append(f"! versions differ: {a.version} vs {b.version}")
        if a.config != b.config:
            changed = sorted(
                set(a.config) | set(b.config),
            )
            diffs = [
                f"{key}: {b.config.get(key)!r} -> {a.config.get(key)!r}"
                for key in changed
                if a.config.get(key) != b.config.get(key)
            ]
            lines.append("! config differs: " + "; ".join(diffs))
    names = sorted(set(run.metrics.counters) | set(baseline.metrics.counters))
    if names:
        lines.append("")
        lines.append(f"{'counter':<38} {'run':>12} {'baseline':>12} {'delta':>12}")
        for name in names:
            now = run.metrics.counters.get(name, 0)
            then = baseline.metrics.counters.get(name, 0)
            delta = now - then
            rel = f" ({delta / then:+.1%})" if then else ""
            lines.append(
                f"{name:<38} {_format_value(now):>12} "
                f"{_format_value(then):>12} {_format_value(delta):>12}{rel}"
            )
    span_paths = sorted(set(run.spans) | set(baseline.spans))
    if span_paths:
        lines.append("")
        lines.append(
            f"{'span':<38} {'run (s)':>12} {'baseline (s)':>13} {'delta (s)':>12}"
        )
        for span_path in span_paths:
            now_s = run.spans.get(span_path, SpanSummary(span_path)).total_seconds
            then_s = baseline.spans.get(
                span_path, SpanSummary(span_path)
            ).total_seconds
            lines.append(
                f"{span_path:<38} {now_s:>12.3f} {then_s:>13.3f} "
                f"{now_s - then_s:>12.3f}"
            )
    return "\n".join(lines)
