"""Event sinks: where telemetry events go.

Every sink exposes ``emit(event: dict)`` and ``close()``.  Events are
flat JSON-serialisable dicts with at least an ``"event"`` key (see
``docs/observability.md`` for the schema).

* :class:`NullSink` — the default: drops everything, ``enabled`` is
  False so instrumented code can skip even building the event dict;
* :class:`MemorySink` — collects events in a list (tests, inspection);
* :class:`JsonlSink` — one JSON object per line, appended and flushed
  per event so a crashed run keeps every event written so far.
"""

from __future__ import annotations

import json
import os
from typing import IO, Mapping


class Sink:
    """Base sink: interface and the ``enabled`` fast-path flag."""

    #: When False, callers may skip building event payloads entirely.
    enabled: bool = True

    def emit(self, event: Mapping) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; emitting after close is an error."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(Sink):
    """Discard everything (the near-zero-overhead default)."""

    enabled = False

    def emit(self, event: Mapping) -> None:
        pass


class MemorySink(Sink):
    """Keep every event in memory, in emission order."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: Mapping) -> None:
        self.events.append(dict(event))


class JsonlSink(Sink):
    """Append one JSON line per event to a file, flushing each line.

    The file is opened in append mode and every event is flushed as it
    is written, so a crash mid-run loses at most the event being
    serialised — everything already emitted survives on disk.  Pass
    ``fsync=True`` to additionally fsync each line (durable against
    power loss, at a per-event syscall cost).
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False):
        self.path = os.fspath(path)
        self._fsync = fsync
        self._handle: IO[str] | None = open(
            self.path, "a", encoding="utf-8", newline="\n"
        )

    def emit(self, event: Mapping) -> None:
        handle = self._handle
        if handle is None:
            raise ValueError(f"sink already closed: {self.path}")
        handle.write(json.dumps(dict(event), sort_keys=True) + "\n")
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: str | os.PathLike) -> list[dict]:
    """Read a JsonlSink file back into a list of event dicts.

    Tolerates a truncated final line (the crash-safety contract: a run
    killed mid-write leaves at most one partial trailing line).
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break  # truncated tail from an interrupted run
    return events
