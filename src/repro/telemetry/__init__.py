"""repro.telemetry — metrics, spans, sinks, and run manifests.

The observability layer for the whole pipeline (see
``docs/observability.md``):

* :mod:`~repro.telemetry.metrics` — named counters/gauges/histograms
  whose snapshots merge associatively and commutatively (the
  ``ScanStats.merge`` contract, so worker shards combine exactly);
* :mod:`~repro.telemetry.spans` — nested timed spans with per-span
  counter attribution, plus the :class:`Telemetry` façade and the
  inert :data:`NULL_TELEMETRY` default;
* :mod:`~repro.telemetry.sinks` — ``NullSink`` (default, near-zero
  overhead), ``MemorySink``, and crash-safe ``JsonlSink``;
* :mod:`~repro.telemetry.manifest` — :class:`RunManifest` provenance
  records that make every JSONL file self-describing;
* :mod:`~repro.telemetry.report` — run summaries and two-run deltas
  (the ``repro report`` subcommand);
* :mod:`~repro.telemetry.timer` — the shared benchmark stopwatch.

Instrumentation is strictly passive: it never touches an RNG stream
or alters iteration order, so every parity gate in the test suite
holds with telemetry on or off.

Quickstart::

    from repro.telemetry import JsonlSink, RunManifest, Telemetry

    with Telemetry(JsonlSink("scan.jsonl")) as tele:
        RunManifest.create("scan", {"port": 80}, rng_seed=0).emit(tele)
        scanner = Scanner(truth, telemetry=tele)
        scanner.scan(targets)
    # later: repro report scan.jsonl
"""

from .manifest import RunManifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)
from .report import RunSummary, load_run, render_delta, render_summary
from .sinks import JsonlSink, MemorySink, NullSink, Sink, read_jsonl
from .spans import NULL_TELEMETRY, Span, Telemetry, ensure
from .timer import Timer, median_time, time_call

__all__ = [
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullSink",
    "RunManifest",
    "RunSummary",
    "Sink",
    "Span",
    "Telemetry",
    "Timer",
    "ensure",
    "load_run",
    "median_time",
    "read_jsonl",
    "render_delta",
    "render_summary",
    "time_call",
]
