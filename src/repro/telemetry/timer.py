"""Shared wall-clock timing helpers.

Every benchmark used to hand-roll the same ``time.perf_counter()``
bracket; these helpers are that bracket, written once.  They are
deliberately tiny — a context manager and two functional wrappers —
so they stay usable from scripts that must not import numpy-heavy
modules at timing granularity.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, TypeVar

T = TypeVar("T")


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def median_time(fn: Callable[[], T], repeats: int) -> tuple[T, float]:
    """Run ``fn`` ``repeats`` times; return the last result and the
    median elapsed seconds (the benchmarks' standard statistic)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    timings = []
    result: T
    for _ in range(repeats):
        result, elapsed = time_call(fn)
        timings.append(elapsed)
    return result, statistics.median(timings)
