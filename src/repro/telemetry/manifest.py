"""Run manifests: make every telemetry file self-describing.

A :class:`RunManifest` is the first event a run writes to its sink.
It captures everything needed to re-run (or at least interpret) the
run that produced a JSONL file: the command and its configuration,
the RNG seed, the package version, and the platform.  ``repro
report`` prints it back as the header of a run summary, and the delta
view warns when two runs being compared differ in config or version.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Mapping

from .spans import Telemetry


def _package_version() -> str:
    try:
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - import cycle paranoia
        return "unknown"


@dataclass
class RunManifest:
    """Provenance record for one instrumented run."""

    command: str
    config: dict = field(default_factory=dict)
    rng_seed: int | None = None
    version: str = ""
    python: str = ""
    platform: str = ""
    started_unix: float = 0.0

    @classmethod
    def create(
        cls,
        command: str,
        config: Mapping | None = None,
        *,
        rng_seed: int | None = None,
    ) -> "RunManifest":
        """Build a manifest for the current process and moment."""
        return cls(
            command=command,
            config=dict(config or {}),
            rng_seed=rng_seed,
            version=_package_version(),
            python=sys.version.split()[0],
            platform=platform.platform(),
            started_unix=time.time(),
        )

    def as_dict(self) -> dict:
        return {
            "event": "manifest",
            "command": self.command,
            "config": dict(self.config),
            "rng_seed": self.rng_seed,
            "version": self.version,
            "python": self.python,
            "platform": self.platform,
            "started_unix": self.started_unix,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunManifest":
        return cls(
            command=str(data.get("command", "")),
            config=dict(data.get("config", {})),
            rng_seed=data.get("rng_seed"),
            version=str(data.get("version", "")),
            python=str(data.get("python", "")),
            platform=str(data.get("platform", "")),
            started_unix=float(data.get("started_unix", 0.0)),
        )

    def emit(self, telemetry: Telemetry) -> None:
        """Write this manifest as the run's opening event."""
        if telemetry.sink.enabled:
            telemetry.sink.emit(self.as_dict())
