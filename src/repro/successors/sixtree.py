"""A 6Tree-style dynamic TGA (the follow-on work 6Gen inspired).

6Tree (Liu et al., Computer Networks 2019) is the best-known successor
to 6Gen/Entropy/IP and a concrete realisation of this paper's §8
"scanner integration" direction.  Its two ideas, reimplemented here:

1. **Space tree** — divisive hierarchical clustering of the seeds: a
   region splits its seeds by the value of their leftmost differing
   nybble, recursively, yielding a tree whose leaves are dense
   nybble-prefix regions.
2. **Dynamic scanning** — leaves are scanned densest-first; a region
   that keeps producing hits is *expanded* to its parent region (one
   more wildcard nybble) and scanning continues there, while barren
   regions are abandoned.  The probe budget therefore flows toward the
   parts of the space that respond — feedback the static 6Gen pipeline
   cannot express.

The implementation shares this repo's primitives (nybble ranges, the
scanner) so it can be benchmarked head-to-head against 6Gen and the
§8 adaptive scanner on identical worlds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ipv6.nybble import NYBBLE_COUNT
from ..ipv6.range_ import NybbleRange
from ..scanner.engine import Scanner


@dataclass
class SpaceTreeNode:
    """One region of the space tree: a common nybble prefix of seeds."""

    depth: int  # number of fixed leading nybbles
    prefix_nybbles: tuple[int, ...]  # the fixed leading nybble values
    seeds: list[int]
    children: dict[int, "SpaceTreeNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def region(self) -> NybbleRange:
        """The node's address region: fixed prefix, wildcard suffix."""
        masks = [1 << v for v in self.prefix_nybbles]
        masks += [0xFFFF] * (NYBBLE_COUNT - len(masks))
        return NybbleRange(masks)

    def density(self) -> float:
        """Seed density of the region (seeds per address, log-safe)."""
        return len(self.seeds) / self.region().size()


def _common_depth(seeds: Sequence[int], start: int) -> int:
    """First nybble index >= start at which the seeds differ (or 32)."""
    for i in range(start, NYBBLE_COUNT):
        shift = 4 * (NYBBLE_COUNT - 1 - i)
        first = (seeds[0] >> shift) & 0xF
        if any(((s >> shift) & 0xF) != first for s in seeds[1:]):
            return i
    return NYBBLE_COUNT


def build_space_tree(
    seeds: Iterable[int], max_leaf_seeds: int = 8
) -> SpaceTreeNode:
    """Divisive hierarchical clustering of the seeds into a space tree.

    Every node's region is the seeds' common nybble prefix; a node with
    more than ``max_leaf_seeds`` seeds splits them by the value of the
    leftmost differing nybble.
    """
    seed_list = sorted(set(int(s) for s in seeds))
    if not seed_list:
        raise ValueError("space tree requires at least one seed")

    def make_node(members: list[int], depth: int, prefix: tuple[int, ...]) -> SpaceTreeNode:
        split = _common_depth(members, depth)
        shift_range = range(depth, split)
        # Extend the fixed prefix through the shared nybbles.
        extended = list(prefix)
        for i in shift_range:
            extended.append((members[0] >> (4 * (NYBBLE_COUNT - 1 - i))) & 0xF)
        node = SpaceTreeNode(
            depth=split, prefix_nybbles=tuple(extended), seeds=members
        )
        if split == NYBBLE_COUNT or len(members) <= max_leaf_seeds:
            return node
        groups: dict[int, list[int]] = {}
        shift = 4 * (NYBBLE_COUNT - 1 - split)
        for member in members:
            groups.setdefault((member >> shift) & 0xF, []).append(member)
        if len(groups) == 1:  # cannot happen after _common_depth, but guard
            return node
        for value, group in sorted(groups.items()):
            node.children[value] = make_node(
                group, split + 1, tuple(extended) + (value,)
            )
        return node

    return make_node(seed_list, 0, ())


def leaves(node: SpaceTreeNode) -> list[SpaceTreeNode]:
    """All leaf regions of a space tree."""
    if node.is_leaf:
        return [node]
    out: list[SpaceTreeNode] = []
    for child in node.children.values():
        out.extend(leaves(child))
    return out


@dataclass
class SixTreeConfig:
    """Tuning knobs for the dynamic scan."""

    total_budget: int
    #: Probes per region between hit-rate evaluations.
    batch_size: int = 64
    #: Minimum hit rate for a region to earn expansion to its parent.
    expand_threshold: float = 0.05
    #: Hit rate above which a region is alias-tested before expansion
    #: (6Tree's follow-up added exactly this aliased-address detection).
    alias_rate_ceiling: float = 0.95
    #: Never expand a region beyond this many wildcard nybbles (a /64's
    #: worth of wildcards would soak any budget).
    max_wildcards: int = 6
    rng_seed: int | None = 0
    port: int = 80


@dataclass
class SixTreeResult:
    """Outcome of a dynamic 6Tree scan."""

    hits: set[int] = field(default_factory=set)
    probes_used: int = 0
    regions_scanned: int = 0
    expansions: int = 0
    aliased_regions: list[NybbleRange] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return len(self.hits) / self.probes_used if self.probes_used else 0.0

    def clean_hits(self) -> set[int]:
        """Hits outside the regions the scan itself flagged as aliased."""
        return {
            h
            for h in self.hits
            if not any(r.contains(h) for r in self.aliased_regions)
        }


class SixTree:
    """Dynamic space-tree scanning against a scanner."""

    def __init__(self, scanner: Scanner, config: SixTreeConfig):
        if config.total_budget < 0:
            raise ValueError(f"budget must be non-negative: {config.total_budget}")
        self.scanner = scanner
        self.config = config
        self.rng = random.Random(config.rng_seed)

    def run(self, seeds: Sequence[int]) -> SixTreeResult:
        """Scan from the seeds' space tree, expanding productive regions."""
        result = SixTreeResult()
        seed_list = sorted(set(int(s) for s in seeds))
        if not seed_list or self.config.total_budget == 0:
            return result
        tree = build_space_tree(seed_list)
        probed: set[int] = set(seed_list)
        # Work queue: densest leaves first.
        queue = sorted(leaves(tree), key=lambda n: -n.density())
        work = [(node.region(), node.depth) for node in queue]

        while work and result.probes_used < self.config.total_budget:
            region, depth = work.pop(0)
            if any(region.is_subset(a) for a in result.aliased_regions):
                continue
            result.regions_scanned += 1
            batch_hits, batch_probes = self._scan_region(region, probed, result)
            rate = batch_hits / batch_probes if batch_probes else 0.0
            wildcards = NYBBLE_COUNT - depth
            if rate >= self.config.alias_rate_ceiling and batch_probes >= 8:
                if self._region_is_aliased(region, depth, result):
                    result.aliased_regions.append(region)
                    continue
            # A region with no unprobed addresses left (e.g. a singleton
            # leaf holding only its seed) gave no signal — expand it so
            # the seed's neighbourhood gets explored.
            exhausted = batch_probes == 0
            if (
                (exhausted or rate >= self.config.expand_threshold)
                and wildcards < self.config.max_wildcards
                and depth > 0
            ):
                # Expand: wildcard one more nybble (the parent region).
                parent_masks = list(region.masks)
                parent_masks[depth - 1] = 0xFFFF
                result.expansions += 1
                work.insert(0, (NybbleRange(parent_masks), depth - 1))
        return result

    def _region_is_aliased(
        self, region: NybbleRange, depth: int, result: SixTreeResult
    ) -> bool:
        """Aliased-address detection before expansion (6Tree's AAD step).

        Probes random addresses of the *parent* region outside the
        current one: a genuine dense block is silent out there, an
        aliased prefix answers everywhere.  Regions already spanning
        the whole space (depth 0) cannot be tested and are treated as
        aliased — expanding them would be unbounded anyway.
        """
        if depth <= 0:
            return True
        parent_masks = list(region.masks)
        parent_masks[depth - 1] = 0xFFFF
        parent = NybbleRange(parent_masks)
        for _ in range(3):
            probe_addr = None
            for _ in range(64):
                candidate = parent.random_int(self.rng)
                if not region.contains(candidate):
                    probe_addr = candidate
                    break
            if probe_addr is None:
                return True
            if not any(
                self.scanner.probe(probe_addr, self.config.port) for _ in range(3)
            ):
                return False
        return True

    def _scan_region(
        self, region: NybbleRange, probed: set[int], result: SixTreeResult
    ) -> tuple[int, int]:
        """Probe the region's unscanned addresses; returns (hits, probes)."""
        remaining = self.config.total_budget - result.probes_used
        if remaining <= 0:
            return 0, 0
        cap = min(remaining, self.config.batch_size * 8)
        size = region.size()
        if size <= 4 * cap or size <= 65536:
            candidates = [a for a in region.iter_ints() if a not in probed]
            self.rng.shuffle(candidates)
            candidates = candidates[:cap]
        else:
            chosen: set[int] = set()
            attempts = 0
            while len(chosen) < cap and attempts < 64 * cap:
                attempts += 1
                addr = region.random_int(self.rng)
                if addr not in probed:
                    chosen.add(addr)
            candidates = sorted(chosen)
        hits = 0
        probes = 0
        for addr in candidates:
            if result.probes_used >= self.config.total_budget:
                break
            probed.add(addr)
            probes += 1
            result.probes_used += 1
            if self.scanner.probe(addr, self.config.port):
                hits += 1
                result.hits.add(addr)
        return hits, probes


def run_sixtree(
    seeds: Sequence[int] | Iterable[int],
    scanner: Scanner,
    total_budget: int,
    **kwargs,
) -> SixTreeResult:
    """Convenience wrapper around :class:`SixTree`."""
    config = SixTreeConfig(total_budget=total_budget, **kwargs)
    return SixTree(scanner, config).run([int(s) for s in seeds])
