"""Successor algorithms the paper inspired (§8 directions realised).

Currently: a 6Tree-style space-tree dynamic scanner
(:mod:`repro.successors.sixtree`), benchmarked against 6Gen and the §8
adaptive scanner in ``benchmarks/bench_successors.py``.
"""

from .sixtree import (
    SixTree,
    SixTreeConfig,
    SixTreeResult,
    SpaceTreeNode,
    build_space_tree,
    leaves,
    run_sixtree,
)

__all__ = [
    "SixTree",
    "SixTreeConfig",
    "SixTreeResult",
    "SpaceTreeNode",
    "build_space_tree",
    "leaves",
    "run_sixtree",
]
