"""Tests for the synthetic CDN datasets (§7 comparison inputs)."""

import pytest

from repro.datasets.cdn import all_cdns, build_cdn, build_cdn3, build_cdn4


class TestConstruction:
    def test_all_five(self):
        cdns = all_cdns(dataset_size=500)
        assert [c.name for c in cdns] == ["CDN1", "CDN2", "CDN3", "CDN4", "CDN5"]

    def test_dataset_size(self):
        cdn = build_cdn(1, dataset_size=500)
        assert len(cdn.addresses) == 500

    def test_dataset_sample_of_population(self):
        for cdn in all_cdns(dataset_size=300):
            hosts = cdn.truth.hosts(80)
            assert set(cdn.addresses) <= hosts
            assert cdn.population_size >= len(cdn.addresses)

    def test_addresses_inside_prefix(self):
        for cdn in all_cdns(dataset_size=200):
            assert all(cdn.prefix.contains(a) for a in cdn.addresses)

    def test_bgp_routes_prefix(self):
        cdn = build_cdn(2, dataset_size=200)
        assert cdn.bgp.origin_asn(cdn.addresses[0]) is not None

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            build_cdn(0)
        with pytest.raises(ValueError):
            build_cdn(6)

    def test_deterministic(self):
        assert build_cdn(3, 300).addresses == build_cdn(3, 300).addresses


class TestRegimes:
    def test_cdn4_aliased_ground_truth(self):
        cdn = build_cdn4(dataset_size=300)
        assert len(cdn.truth.aliased) > 0
        # an arbitrary address near the hosts responds (aliasing)
        probe = cdn.prefix.network | 0x999999
        assert cdn.truth.is_responsive(probe, 80)

    def test_other_cdns_not_aliased(self):
        for index in (1, 2, 3, 5):
            cdn = build_cdn(index, dataset_size=200)
            assert len(cdn.truth.aliased) == 0

    def test_cdn3_subnet_correlation(self):
        cdn = build_cdn3(dataset_size=2000)
        for a in cdn.addresses:
            subnet = (a >> 64) & 0xFF
            base = (a >> 8) & 0xF
            assert base == (subnet * 7) % 16

    def test_cdn1_high_entropy(self):
        from repro.entropyip.entropy import nybble_entropies

        cdn = build_cdn(1, dataset_size=2000)
        entropies = nybble_entropies(cdn.addresses)
        # beyond the /32 prefix everything is random
        assert all(h > 0.9 for h in entropies[8:])

    def test_cdn5_low_entropy_structure(self):
        from repro.entropyip.entropy import nybble_entropies

        cdn = build_cdn(5, dataset_size=2000)
        entropies = nybble_entropies(cdn.addresses)
        # the middle of the address is fixed zeros
        assert entropies[20] == 0.0
