"""Property-based tests for nybble ranges (hypothesis).

These check the algebraic invariants 6Gen relies on: growth monotonicity,
size/enumeration consistency, subset transitivity, and the difference
decomposition used for budget accounting.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ipv6.nybble import FULL_MASK, NYBBLE_COUNT
from repro.ipv6.range_ import NybbleRange

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)


@st.composite
def small_ranges(draw, max_dynamic=4):
    """Ranges with at most a few dynamic positions (enumerable)."""
    base = draw(addresses)
    r = NybbleRange.from_address(base)
    masks = list(r.masks)
    dynamic_count = draw(st.integers(min_value=0, max_value=max_dynamic))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=NYBBLE_COUNT - 1),
            min_size=dynamic_count,
            max_size=dynamic_count,
            unique=True,
        )
    )
    for pos in positions:
        extra = draw(st.integers(min_value=1, max_value=FULL_MASK))
        masks[pos] |= extra
    return NybbleRange(masks)


class TestGrowthProperties:
    @given(small_ranges(), addresses)
    def test_span_loose_contains_both(self, r, a):
        grown = r.span_loose(a)
        assert grown.contains(a)
        assert r.is_subset(grown)

    @given(small_ranges(), addresses)
    def test_span_tight_contains_both(self, r, a):
        grown = r.span_tight(a)
        assert grown.contains(a)
        assert r.is_subset(grown)

    @given(small_ranges(), addresses)
    def test_tight_subset_of_loose(self, r, a):
        assert r.span_tight(a).is_subset(r.span_loose(a))

    @given(small_ranges(), addresses)
    def test_span_idempotent(self, r, a):
        grown = r.span_tight(a)
        assert grown.span_tight(a) == grown
        loose = r.span_loose(a)
        assert loose.span_loose(a) == loose

    @given(small_ranges(), addresses)
    def test_span_size_monotone(self, r, a):
        assert r.span_tight(a).size() >= r.size()
        assert r.span_loose(a).size() >= r.size()


class TestEnumerationProperties:
    @settings(max_examples=40)
    @given(small_ranges(max_dynamic=3))
    def test_iter_matches_size(self, r):
        assume(r.size() <= 4096)
        values = list(r.iter_ints())
        assert len(values) == r.size()
        assert len(set(values)) == r.size()
        assert all(r.contains(v) for v in values)

    @settings(max_examples=40)
    @given(small_ranges(max_dynamic=2), addresses)
    def test_difference_partition(self, old, a):
        new = old.span_tight(a)
        assume(new.size() <= 4096)
        new_values = set(new.iter_ints())
        old_values = set(old.iter_ints())
        diff = list(new.iter_new_ints(old))
        assert set(diff) == new_values - old_values
        assert len(diff) == len(set(diff))
        assert len(diff) == new.difference_size(old)

    @settings(max_examples=30)
    @given(small_ranges(max_dynamic=3))
    def test_wildcard_text_roundtrip(self, r):
        assert NybbleRange.parse(r.wildcard_text()) == r


class TestSetProperties:
    @given(small_ranges(), small_ranges())
    def test_subset_implies_smaller(self, a, b):
        if a.is_subset(b):
            assert a.size() <= b.size()

    @given(small_ranges(), small_ranges())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(small_ranges(), small_ranges())
    def test_intersection_is_subset_of_both(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert not a.overlaps(b)
        else:
            assert inter.is_subset(a) and inter.is_subset(b)

    @given(small_ranges())
    def test_self_subset_not_strict(self, r):
        assert r.is_subset(r)
        assert not r.is_strict_subset(r)


class TestSamplingProperties:
    @settings(max_examples=30)
    @given(small_ranges(max_dynamic=3), st.integers(min_value=1, max_value=20))
    def test_samples_lie_inside(self, r, count):
        assume(r.size() >= count)
        rng = random.Random(0)
        sample = r.sample_ints(count, rng)
        assert len(sample) == count
        assert len(set(sample)) == count
        assert all(r.contains(v) for v in sample)
