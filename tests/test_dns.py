"""Tests for the simulated FDNS seed collection."""

import random

from repro.simnet.dns import (
    DnsRecord,
    SeedCollection,
    collect_network_seeds,
    collect_seeds,
    seeds_of_type,
)

from conftest import addr


class TestSeedCollection:
    def _collection(self):
        return SeedCollection(
            records=[
                DnsRecord("a.example", "AAAA", addr("2001:db8::1")),
                DnsRecord("a.example", "NS", addr("2001:db8::1")),
                DnsRecord("b.example", "AAAA", addr("2001:db8::2")),
                DnsRecord("c.example", "AAAA", addr("2001:db8::2")),  # duplicate addr
            ]
        )

    def test_addresses_unique_sorted(self):
        collection = self._collection()
        assert collection.addresses() == [addr("2001:db8::1"), addr("2001:db8::2")]

    def test_ns_addresses(self):
        assert self._collection().ns_addresses() == [addr("2001:db8::1")]

    def test_len_iter(self):
        collection = self._collection()
        assert len(collection) == 4
        assert len(list(collection)) == 4

    def test_downsample(self):
        collection = self._collection()
        sampled = collection.downsample(0.5, rng_seed=0)
        assert len(sampled) == 2
        assert set(r.name for r in sampled) <= set(r.name for r in collection)

    def test_downsample_bounds(self):
        import pytest

        with pytest.raises(ValueError):
            self._collection().downsample(0.0)
        with pytest.raises(ValueError):
            self._collection().downsample(1.5)

    def test_seeds_of_type(self):
        collection = self._collection()
        assert seeds_of_type(collection, ["NS"]) == [addr("2001:db8::1")]
        assert seeds_of_type(collection, ["AAAA", "NS"]) == collection.addresses()

    def test_record_str(self):
        record = DnsRecord("a.example", "AAAA", addr("2001:db8::1"))
        assert str(record) == "a.example AAAA 2001:db8::1"


class TestCollection:
    def test_collect_from_internet(self, tiny_internet, tiny_seeds):
        assert len(tiny_seeds) > 100
        addresses = tiny_seeds.addresses()
        # most seeds should be routed
        routed = sum(
            1 for a in addresses if tiny_internet.bgp.origin_asn(a) is not None
        )
        assert routed == len(addresses)

    def test_seed_rate_zero_yields_no_host_seeds(self, tiny_internet):
        network = tiny_internet.networks[0]
        original_rate = network.spec.seed_rate
        network.spec.seed_rate = 0.0
        try:
            records = collect_network_seeds(network, random.Random(0))
            host_records = [r for r in records if r.addr in network.active_hosts]
            assert not host_records
        finally:
            network.spec.seed_rate = original_rate

    def test_aliased_seeds_present(self, tiny_internet, tiny_seeds):
        aliased_seed_count = sum(
            1 for a in tiny_seeds.addresses() if tiny_internet.truth.is_aliased(a)
        )
        assert aliased_seed_count > 10

    def test_retired_hosts_can_be_seeds(self, tiny_internet, tiny_seeds):
        retired = set()
        for network in tiny_internet.networks:
            retired |= network.retired_hosts
        stale_seeds = set(tiny_seeds.addresses()) & retired
        # churn modelling: some seeds are no longer responsive
        assert stale_seeds

    def test_ns_records_subset_of_aaaa(self, tiny_seeds):
        assert set(tiny_seeds.ns_addresses()) <= set(tiny_seeds.addresses())
        assert 0 < len(tiny_seeds.ns_addresses()) < len(tiny_seeds.addresses())

    def test_deterministic(self, tiny_internet):
        a = collect_seeds(tiny_internet, rng_seed=5)
        b = collect_seeds(tiny_internet, rng_seed=5)
        assert a.addresses() == b.addresses()

    def test_different_rng_differs(self, tiny_internet):
        a = collect_seeds(tiny_internet, rng_seed=5)
        b = collect_seeds(tiny_internet, rng_seed=6)
        assert a.addresses() != b.addresses()
