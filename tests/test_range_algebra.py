"""Additional nybble-range algebra tests (regression depth).

Covers corners the main range tests don't: mask-level semantics of the
wildcard text grammar, interactions between compression and wildcards,
and the exact behaviour of difference iteration under multi-position
widening — the operation 6Gen's budget accounting leans on hardest.
"""

import pytest

from repro.ipv6.nybble import FULL_MASK
from repro.ipv6.range_ import NybbleRange, RangeError

from conftest import addr


class TestTextGrammarCorners:
    def test_wildcard_inside_full_group(self):
        r = NybbleRange.parse("2001:db8::ab?d")
        assert r.size() == 16
        assert r.contains(addr("2001:db8::ab0d"))
        assert r.contains(addr("2001:db8::abfd"))
        assert not r.contains(addr("2001:db8::ab0e"))

    def test_bracket_in_middle_of_group(self):
        r = NybbleRange.parse("2001:db8::a[0-3]cd")
        assert r.size() == 4
        assert r.values_at(29) == (0, 1, 2, 3)

    def test_multiple_brackets_one_group(self):
        r = NybbleRange.parse("2001:db8::[0-1][2-3]")
        assert r.size() == 4
        assert r.contains(addr("2001:db8::12"))
        assert not r.contains(addr("2001:db8::21"))

    def test_wildcard_group_in_full_form(self):
        r = NybbleRange.parse("2001:db8:0:0:0:0:?:1")
        assert r.size() == 16

    def test_compression_with_trailing_wildcards(self):
        r = NybbleRange.parse("2001::?")
        assert r.size() == 16
        # groups 2..7 are implied zero
        assert r.contains(addr("2001::5"))
        assert not r.contains(addr("2001:0:0:0:0:0:1:5"))

    def test_roundtrip_mixed_text(self):
        texts = [
            "2001:db8::a[0-3]cd",
            "2001:db8::[0-1][2-3]",
            "::",
            "2001::?",
            "f:e:d:c:b:a:9:8",
        ]
        for text in texts:
            r = NybbleRange.parse(text)
            assert NybbleRange.parse(r.wildcard_text()) == r

    def test_rejects_wildcard_in_bracket(self):
        with pytest.raises(RangeError):
            NybbleRange.parse("::[?]")


class TestDifferenceIteration:
    def test_two_widened_positions_partition(self):
        old = NybbleRange.parse("2001:db8::11")
        new = NybbleRange.parse("2001:db8::[1-2][1-3]")
        diff = list(new.iter_new_ints(old))
        assert len(diff) == new.size() - old.size() == 5
        assert len(set(diff)) == 5
        assert all(new.contains(v) and not old.contains(v) for v in diff)

    def test_three_widened_positions(self):
        old = NybbleRange.parse("2001:db8::111")
        new = NybbleRange.parse("2001:db8::??[0-3]")
        diff = set(new.iter_new_ints(old))
        brute = set(new.iter_ints()) - set(old.iter_ints())
        assert diff == brute

    def test_identical_ranges_empty_difference(self):
        r = NybbleRange.parse("2001:db8::?")
        assert list(r.iter_new_ints(r)) == []
        assert r.difference_size(r) == 0

    def test_difference_of_full_vs_near_full(self):
        # masks widened at a single position only
        old = NybbleRange.parse("2001:db8::[0-e]")
        new = NybbleRange.parse("2001:db8::?")
        assert list(new.iter_new_ints(old)) == [addr("2001:db8::f")]


class TestMaskSemantics:
    def test_masks_tuple_is_canonical_key(self):
        a = NybbleRange.parse("2001:db8::[0-f]")
        b = NybbleRange.parse("2001:db8::?")
        assert a.masks == b.masks
        assert a == b
        assert hash(a) == hash(b)

    def test_full_mask_constant(self):
        r = NybbleRange.parse("::?")
        assert r.mask(31) == FULL_MASK

    def test_intersection_identity(self):
        r = NybbleRange.parse("2001:db8::[2-9]")
        assert r.intersection(r) == r

    def test_span_commutes_with_membership(self):
        base = NybbleRange.from_address(addr("2001:db8::10"))
        grown = base.span_tight(addr("2001:db8::01"))
        # both source addresses and the cross-products
        assert grown.contains(addr("2001:db8::10"))
        assert grown.contains(addr("2001:db8::01"))
        assert grown.contains(addr("2001:db8::11"))
        assert grown.contains(addr("2001:db8::00"))
        assert grown.size() == 4
