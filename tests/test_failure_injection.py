"""Failure-injection tests: probe loss and hostile inputs.

The scan substrate models an unreliable network path; these tests
verify the pipeline degrades gracefully rather than crashing or
silently misclassifying when probes are dropped, when blacklists
swallow whole networks, and when inputs are adversarially shaped.
"""

import random

import pytest

from repro.core.sixgen import run_6gen
from repro.ipv6.prefix import Prefix
from repro.scanner.blacklist import Blacklist
from repro.scanner.dealias import dealias, is_prefix_aliased
from repro.scanner.engine import Scanner
from repro.simnet.aliasing import AliasedRegionSet
from repro.simnet.ground_truth import GroundTruth

from conftest import addr


def _world(hosts=(), aliased=(), loss_rate=0.0, blacklist=None):
    regions = AliasedRegionSet()
    for prefix in aliased:
        regions.add_prefix(Prefix.parse(prefix))
    truth = GroundTruth({80: set(hosts)}, regions)
    return Scanner(truth, loss_rate=loss_rate, blacklist=blacklist, rng_seed=0)


class TestProbeLoss:
    def test_lossy_scan_misses_hosts_but_never_fabricates(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 201)]
        scanner = _world(hosts=hosts, loss_rate=0.3)
        result = scanner.scan(hosts)
        assert result.hits <= set(hosts)
        assert 0 < len(result.hits) < len(hosts)

    def test_dealias_retries_tolerate_moderate_loss(self):
        # the 3-probe-per-address retry absorbs moderate loss, so an
        # aliased prefix is still detected
        scanner = _world(aliased=["2001:db8::/96"], loss_rate=0.3)
        detected = sum(
            1
            for i in range(20)
            if is_prefix_aliased(
                Prefix.parse("2001:db8::/96"), scanner, random.Random(i)
            )
        )
        assert detected >= 15  # P(all 3 probes lost) per addr is 2.7 %

    def test_heavy_loss_biases_toward_non_aliased(self):
        # under extreme loss the test can only fail toward "not aliased"
        # (a false negative), never flag an honest prefix
        scanner = _world(hosts=[addr("2600::1")], loss_rate=0.9)
        assert not is_prefix_aliased(
            Prefix.parse("2600::/96"), scanner, random.Random(0)
        )

    def test_lossy_pipeline_end_to_end(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 100)]
        scanner = _world(hosts=hosts, aliased=["2600:aaaa::/96"], loss_rate=0.2)
        seeds = hosts[::4] + [addr(f"2600:aaaa::{i:x}") for i in (1, 2, 3, 0x11)]
        result = run_6gen(seeds, 2000)
        scan = scanner.scan(result.iter_targets())
        report = dealias(scan.hits, scanner, None)
        # no crash, sane partition
        assert report.aliased_hits | report.clean_hits == scan.hits


class TestBlacklistContainment:
    def test_blacklisted_network_fully_dark(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 50)]
        blacklist = Blacklist([Prefix.parse("2001:db8::/32")])
        scanner = _world(hosts=hosts, blacklist=blacklist)
        result = scanner.scan(hosts)
        assert result.hits == set()
        assert scanner.total_probes == 0

    def test_blacklist_does_not_leak_via_dealiasing(self):
        blacklist = Blacklist([Prefix.parse("2001:db8::/32")])
        scanner = _world(aliased=["2001:db8::/96"], blacklist=blacklist)
        # even the dealiasing prober must not touch blacklisted space
        is_prefix_aliased(Prefix.parse("2001:db8::/96"), scanner, random.Random(0))
        assert scanner.total_probes == 0


class TestHostileInputs:
    def test_6gen_on_identical_seeds(self):
        result = run_6gen([addr("::1")] * 100, budget=10)
        assert result.seed_count == 1
        assert result.budget_used == 0

    def test_6gen_on_extreme_corner_addresses(self):
        seeds = [0, (1 << 128) - 1]
        result = run_6gen(seeds, budget=16)
        assert result.budget_used <= 16
        assert set(seeds) <= result.target_set()

    def test_6gen_dense_saturated_block(self):
        # every address of a /124 is a seed: nothing left to generate
        seeds = [addr("2001:db8::0") + i for i in range(16)]
        result = run_6gen(seeds, budget=100)
        new = result.new_targets(seeds)
        # growth beyond the block is possible but bounded by budget
        assert len(new) <= 100

    def test_entropyip_on_single_seed(self):
        from repro.entropyip.generator import fit_entropy_ip

        model = fit_entropy_ip([addr("2001:db8::1")])
        targets = model.generate(10)
        # a one-seed model has support exactly one address
        assert targets == {addr("2001:db8::1")}

    def test_scan_of_duplicate_heavy_targets(self):
        scanner = _world(hosts=[addr("::1")])
        result = scanner.scan([addr("::1")] * 1000 + [addr("::2")] * 1000)
        assert result.stats.probes_sent == 2
