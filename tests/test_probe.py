"""Tests for probe/result types and the scan-time model."""

import pytest

from repro.scanner.probe import (
    DEFAULT_PROBE_RATE_PPS,
    Probe,
    ScanResult,
    ScanStats,
)

from conftest import addr


class TestProbe:
    def test_defaults_to_port_80(self):
        probe = Probe(addr("2001:db8::1"))
        assert probe.port == 80

    def test_str(self):
        probe = Probe(addr("2001:db8::1"), 443)
        assert str(probe) == "SYN 2001:db8::1:443"

    def test_hashable(self):
        assert Probe(1, 80) == Probe(1, 80)
        assert len({Probe(1, 80), Probe(1, 80), Probe(1, 443)}) == 2


class TestScanStats:
    def test_hit_rate_empty(self):
        assert ScanStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = ScanStats(probes_sent=10, responses=3)
        assert stats.hit_rate == pytest.approx(0.3)

    def test_wall_time_paper_numbers(self):
        # 5.8 B probes at 100 K pps ~ 16.1 hours
        stats = ScanStats(probes_sent=5_800_000_000)
        hours = stats.wall_time_seconds(DEFAULT_PROBE_RATE_PPS) / 3600
        assert 15 < hours < 17

    def test_wall_time_custom_rate(self):
        stats = ScanStats(probes_sent=1000)
        assert stats.wall_time_seconds(rate_pps=100) == pytest.approx(10.0)

    def test_wall_time_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ScanStats(probes_sent=1).wall_time_seconds(0)


class TestScanResult:
    def test_hit_count(self):
        result = ScanResult(port=80, hits={1, 2, 3})
        assert result.hit_count() == 3
        assert result.port == 80
