"""Tests for Entropy/IP stage 4: the chain Bayesian network."""

import random

import pytest

from repro.entropyip.bayes import BayesChain
from repro.entropyip.mining import mine_segment_values
from repro.entropyip.segments import Segment

from conftest import addr


def _fit_chain(seeds, segments=None):
    segments = segments or [Segment(0, 16, 0.0), Segment(16, 24, 0.3), Segment(24, 32, 0.8)]
    models = [mine_segment_values(s, seeds) for s in segments]
    return BayesChain(models, seeds), models


def _structured_seeds(count=300, rng_seed=0):
    # subnet value correlates with low-bits base: even subnets use low
    # values, odd subnets high values.
    rng = random.Random(rng_seed)
    seeds = []
    base = addr("2001:db8::")
    for _ in range(count):
        subnet = rng.randrange(4)
        low = rng.randrange(0, 16) if subnet % 2 == 0 else rng.randrange(0xF0, 0x100)
        seeds.append(base | (subnet << 64) | low)
    return seeds


class TestFit:
    def test_rejects_empty_models(self):
        with pytest.raises(ValueError):
            BayesChain([], [1])

    def test_rejects_empty_seeds(self):
        seeds = _structured_seeds(10)
        segments = [Segment(0, 16, 0.0)]
        models = [mine_segment_values(segments[0], seeds)]
        with pytest.raises(ValueError):
            BayesChain(models, [])

    def test_root_probs_normalised(self):
        chain, _ = _fit_chain(_structured_seeds())
        assert sum(chain.root_probs) == pytest.approx(1.0)

    def test_cpt_rows_normalised(self):
        chain, _ = _fit_chain(_structured_seeds())
        for cpt in chain.cpts:
            for row in cpt.probabilities:
                assert sum(row) == pytest.approx(1.0)


class TestSampling:
    def test_sample_atoms_valid_indices(self):
        chain, models = _fit_chain(_structured_seeds())
        rng = random.Random(0)
        for _ in range(50):
            vec = chain.sample_atoms(rng)
            assert len(vec) == len(models)
            for idx, model in zip(vec, models):
                assert 0 <= idx < len(model.atoms)

    def test_sample_address_matches_training_shape(self):
        seeds = _structured_seeds()
        chain, _ = _fit_chain(seeds)
        rng = random.Random(0)
        for _ in range(50):
            sample = chain.sample_address(rng)
            # network prefix must be preserved (constant in training data)
            assert sample >> 96 == seeds[0] >> 96

    @staticmethod
    def _consistency(segments, seeds):
        models = [mine_segment_values(s, seeds) for s in segments]
        chain = BayesChain(models, seeds)
        rng = random.Random(1)
        consistent, total = 0, 400
        for _ in range(total):
            sample = chain.sample_address(rng)
            subnet = (sample >> 64) & 0xF
            low = sample & 0xFF
            if (subnet % 2 == 0) == (low < 0x80):
                consistent += 1
        return consistent / total

    def test_adjacent_segments_capture_correlation(self):
        # Subnet nybble (index 15) and low bytes in adjacent segments:
        # the CPT between them learns the even/odd rule.
        seeds = _structured_seeds(1000)
        segments = [Segment(0, 16, 0.0), Segment(16, 32, 0.5)]
        assert self._consistency(segments, seeds) > 0.9

    def test_distant_correlation_lost_through_chain(self):
        # With a constant middle segment between them, the chain model
        # provably loses the dependency — the documented limitation that
        # lets 6Gen beat Entropy/IP on correlated networks (CDN 3).
        seeds = _structured_seeds(1000)
        segments = [Segment(0, 16, 0.0), Segment(16, 30, 0.2), Segment(30, 32, 0.9)]
        rate = self._consistency(segments, seeds)
        assert 0.3 < rate < 0.7  # indistinguishable from chance

    def test_chow_liu_tree_recovers_distant_correlation(self):
        # Structure learning links the correlated segments directly,
        # skipping the constant middle — the original tool's behaviour.
        from repro.entropyip.bayes import BayesNetwork

        seeds = _structured_seeds(1000)
        segments = [Segment(0, 16, 0.0), Segment(16, 30, 0.2), Segment(30, 32, 0.9)]
        models = [mine_segment_values(s, seeds) for s in segments]
        net = BayesNetwork(models, seeds, structure="tree")
        # the low-bits segment must be parented to the subnet segment
        assert net.parents[2] == 0
        rng = random.Random(1)
        hits = 0
        for _ in range(300):
            s = net.sample_address(rng)
            subnet = (s >> 64) & 0xF
            low = s & 0xFF
            hits += (subnet % 2 == 0) == (low < 0x80)
        assert hits / 300 > 0.95


class TestTreeStructure:
    def test_single_segment(self):
        from repro.entropyip.bayes import BayesNetwork

        seeds = _structured_seeds(50)
        models = [mine_segment_values(Segment(0, 32, 0.5), seeds)]
        net = BayesNetwork(models, seeds, structure="tree")
        assert net.parents == [None]
        assert net.sample_atoms(random.Random(0))

    def test_tree_is_spanning(self):
        from repro.entropyip.bayes import BayesNetwork

        seeds = _structured_seeds(300)
        segments = [Segment(0, 8, 0.0), Segment(8, 16, 0.0),
                    Segment(16, 24, 0.3), Segment(24, 32, 0.8)]
        models = [mine_segment_values(s, seeds) for s in segments]
        net = BayesNetwork(models, seeds, structure="tree")
        roots = [i for i, p in enumerate(net.parents) if p is None]
        assert roots == [0]
        # every node reachable from the root
        for i, parent in enumerate(net.parents):
            if parent is not None:
                assert 0 <= parent < len(net.parents)
                assert parent != i

    def test_rejects_unknown_structure(self):
        from repro.entropyip.bayes import BayesNetwork

        seeds = _structured_seeds(20)
        models = [mine_segment_values(Segment(0, 32, 0.5), seeds)]
        with pytest.raises(ValueError):
            BayesNetwork(models, seeds, structure="dag")

    def test_tree_enumeration_descending(self):
        from repro.entropyip.bayes import BayesNetwork

        seeds = _structured_seeds(300)
        segments = [Segment(0, 16, 0.0), Segment(16, 30, 0.2), Segment(30, 32, 0.9)]
        models = [mine_segment_values(s, seeds) for s in segments]
        net = BayesNetwork(models, seeds, structure="tree")
        pairs = zip_first(net.iter_vectors_by_probability(), 25)
        probs = [p for p, _ in pairs]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_tree_vs_chain_same_marginal_support(self):
        from repro.entropyip.bayes import BayesNetwork

        seeds = _structured_seeds(300)
        segments = [Segment(0, 16, 0.0), Segment(16, 32, 0.5)]
        models = [mine_segment_values(s, seeds) for s in segments]
        chain = BayesNetwork(models, seeds, structure="chain")
        tree = BayesNetwork(models, seeds, structure="tree")
        # with two segments both structures are the same single edge
        assert chain.parents == tree.parents


class TestProbabilities:
    def test_vector_probability_positive(self):
        chain, models = _fit_chain(_structured_seeds())
        vec = tuple(0 for _ in models)
        assert chain.vector_probability(vec) > 0

    def test_prefix_probability(self):
        chain, _ = _fit_chain(_structured_seeds())
        assert chain.vector_probability((0,)) == pytest.approx(chain.root_probs[0])

    def test_ordered_enumeration_descending(self):
        chain, _ = _fit_chain(_structured_seeds(200))
        probs = [p for p, _ in zip_first(chain.iter_vectors_by_probability(), 30)]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_ordered_enumeration_unique(self):
        chain, _ = _fit_chain(_structured_seeds(200))
        vectors = [v for _, v in zip_first(chain.iter_vectors_by_probability(), 50)]
        assert len(vectors) == len(set(vectors))

    def test_atoms_to_ranges(self):
        chain, models = _fit_chain(_structured_seeds())
        vec = tuple(0 for _ in models)
        bounds = chain.atoms_to_ranges(vec)
        for (low, high), model in zip(bounds, models):
            assert model.atoms[0].low == low
            assert model.atoms[0].high == high


def zip_first(iterator, n):
    out = []
    for item in iterator:
        out.append(item)
        if len(out) >= n:
            break
    return out
