"""Unit tests for nybble helpers."""

import pytest

from repro.ipv6 import nybble as nyb


class TestNybbleShift:
    def test_most_significant(self):
        assert nyb.nybble_shift(0) == 124

    def test_least_significant(self):
        assert nyb.nybble_shift(31) == 0

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            nyb.nybble_shift(32)
        with pytest.raises(IndexError):
            nyb.nybble_shift(-1)


class TestGetSetNybble:
    def test_get_first(self):
        assert nyb.get_nybble(0x2 << 124, 0) == 0x2

    def test_get_last(self):
        assert nyb.get_nybble(0xF, 31) == 0xF

    def test_set_then_get(self):
        value = nyb.set_nybble(0, 5, 0xA)
        assert nyb.get_nybble(value, 5) == 0xA

    def test_set_overwrites(self):
        value = nyb.set_nybble((0xF << 124), 0, 0x3)
        assert nyb.get_nybble(value, 0) == 0x3

    def test_set_rejects_bad_value(self):
        with pytest.raises(ValueError):
            nyb.set_nybble(0, 0, 16)

    def test_set_preserves_other_positions(self):
        base = int("123456789abcdef0" * 2, 16)
        modified = nyb.set_nybble(base, 7, 0x0)
        for i in range(32):
            if i != 7:
                assert nyb.get_nybble(modified, i) == nyb.get_nybble(base, i)


class TestToFromNybbles:
    def test_roundtrip_zero(self):
        assert nyb.from_nybbles(nyb.to_nybbles(0)) == 0

    def test_roundtrip_max(self):
        assert nyb.from_nybbles(nyb.to_nybbles(nyb.MAX_ADDRESS)) == nyb.MAX_ADDRESS

    def test_roundtrip_arbitrary(self):
        value = 0x20010DB8000000000000000000112222
        assert nyb.from_nybbles(nyb.to_nybbles(value)) == value

    def test_msb_first(self):
        nybbles = nyb.to_nybbles(0x2 << 124)
        assert nybbles[0] == 2
        assert all(n == 0 for n in nybbles[1:])

    def test_to_nybbles_rejects_negative(self):
        with pytest.raises(ValueError):
            nyb.to_nybbles(-1)

    def test_from_nybbles_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            nyb.from_nybbles([0] * 31)

    def test_from_nybbles_rejects_bad_value(self):
        with pytest.raises(ValueError):
            nyb.from_nybbles([16] + [0] * 31)


class TestHexDigits:
    def test_digit_values(self):
        for i in range(16):
            assert nyb.hex_value(nyb.hex_digit(i)) == i

    def test_uppercase_accepted(self):
        assert nyb.hex_value("A") == 10

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            nyb.hex_value("g")


class TestMasks:
    def test_mask_of_values(self):
        assert nyb.mask_of([0, 1]) == 0b11

    def test_mask_of_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            nyb.mask_of([16])

    def test_mask_values_roundtrip(self):
        values = (1, 5, 15)
        assert nyb.mask_values(nyb.mask_of(values)) == values

    def test_popcount_full(self):
        assert nyb.popcount16(nyb.FULL_MASK) == 16

    def test_mask_contains(self):
        mask = nyb.mask_of([3, 7])
        assert nyb.mask_contains(mask, 3)
        assert nyb.mask_contains(mask, 7)
        assert not nyb.mask_contains(mask, 4)
