"""Parity of the vectorised 6Gen kernel against the reference path.

The vectorised kernel (``use_vector_kernel=True``) must be bit-for-bit
identical to the pure reference implementation for a fixed ``rng_seed``:
same clusters, same targets, same sampled addresses, same budget use,
same iteration count.  These tests sweep randomized seed pools across
the full configuration matrix (loose/tight ranges, exact/range-sum
ledgers, growth cache on/off) and also check the kernel's building
blocks against their scalar references.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import SeedMatrix, find_candidates_python
from repro.core.sixgen import run_6gen
from repro.ipv6.nybble_tree import NybbleTree
from repro.ipv6.range_ import NybbleRange


def make_pool(rng: random.Random, n: int, networks: int = 3) -> list[int]:
    """A clustered seed pool: a few networks with structured low bits."""
    bases = [rng.getrandbits(128) & ~((1 << 40) - 1) for _ in range(networks)]
    seeds: set[int] = set()
    while len(seeds) < n:
        base = rng.choice(bases)
        low = rng.getrandbits(12) | (rng.getrandbits(4) << (4 * rng.randrange(0, 10)))
        seeds.add(base | low)
    return sorted(seeds)


def run_signature(result):
    """Everything that must match between the two paths."""
    return (
        sorted((c.range.masks, c.seed_count) for c in result.clusters),
        frozenset(result.target_set()),
        tuple(result.sampled),
        result.budget_used,
        result.iterations,
    )


CONFIG_MATRIX = list(
    itertools.product(
        (True, False),  # loose
        ("exact", "range-sum"),  # ledger
        (True, False),  # use_growth_cache
    )
)


class TestEndToEndParity:
    @pytest.mark.parametrize("loose,ledger,cache", CONFIG_MATRIX)
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 40])
    def test_vector_matches_reference(self, n, loose, ledger, cache):
        pool = make_pool(random.Random(n * 1009 + 17), n) if n else []
        for budget in (0, 25, 4000):
            ref = run_6gen(
                pool,
                budget,
                loose=loose,
                ledger=ledger,
                use_growth_cache=cache,
                use_vector_kernel=False,
            )
            vec = run_6gen(
                pool,
                budget,
                loose=loose,
                ledger=ledger,
                use_growth_cache=cache,
                use_vector_kernel=True,
            )
            assert run_signature(ref) == run_signature(vec)

    @pytest.mark.parametrize("loose,ledger,cache", CONFIG_MATRIX)
    def test_python_candidate_path_matches(self, loose, ledger, cache):
        """The no-numpy path agrees with both matrix-backed paths."""
        pool = make_pool(random.Random(99), 12)
        pure = run_6gen(
            pool,
            300,
            loose=loose,
            ledger=ledger,
            use_growth_cache=cache,
            use_seed_matrix=False,
            use_vector_kernel=False,
        )
        vec = run_6gen(
            pool,
            300,
            loose=loose,
            ledger=ledger,
            use_growth_cache=cache,
            use_vector_kernel=True,
        )
        assert run_signature(pure) == run_signature(vec)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=3, max_value=25),
        st.integers(min_value=0, max_value=1500),
    )
    def test_randomized_pools(self, pool_seed, n, budget):
        pool = make_pool(random.Random(pool_seed), n)
        ref = run_6gen(pool, budget, use_vector_kernel=False)
        vec = run_6gen(pool, budget, use_vector_kernel=True)
        assert run_signature(ref) == run_signature(vec)

    def test_density_stream_matches_target_set(self):
        """iter_targets_by_density covers exactly the target set, both paths."""
        pool = make_pool(random.Random(5), 20)
        for kernel in (False, True):
            result = run_6gen(pool, 500, use_vector_kernel=kernel)
            streamed = list(result.iter_targets_by_density())
            assert len(streamed) == len(set(streamed))
            assert set(streamed) == result.target_set()


class TestKernelBuildingBlocks:
    def test_all_pairs_matches_per_singleton_search(self):
        pool = make_pool(random.Random(7), 60)
        matrix = SeedMatrix(pool)
        batched = matrix.all_pairs_min_candidates()
        assert len(batched) == len(pool)
        for i, (dist, indices) in enumerate(batched):
            expected = matrix.min_positive_candidates(
                NybbleRange.from_address(pool[i])
            )
            assert (dist, indices) == expected
            assert (dist, indices) == find_candidates_python(
                NybbleRange.from_address(pool[i]), pool
            )

    def test_all_pairs_blocked_equals_unblocked(self):
        pool = make_pool(random.Random(11), 30)
        matrix = SeedMatrix(pool)
        assert matrix.all_pairs_min_candidates(block_rows=4) == (
            matrix.all_pairs_min_candidates(block_rows=len(pool))
        )

    def test_all_pairs_duplicate_free_pool_of_one(self):
        matrix = SeedMatrix([42])
        assert matrix.all_pairs_min_candidates() == [(0, [])]

    def test_mismatch_bits_positions(self):
        rng = random.Random(13)
        pool = make_pool(rng, 10)
        matrix = SeedMatrix(pool)
        range_ = NybbleRange.from_address(pool[0])
        packed = matrix.mismatch_bits(range_, list(range(len(pool))))
        for idx, bits in enumerate(packed):
            x = pool[0] ^ pool[idx]
            expected = 0
            for pos in range(32):
                if (x >> (4 * (31 - pos))) & 0xF:
                    expected |= 1 << pos
            assert bits == expected

    def test_widen_distances_incremental(self):
        rng = random.Random(21)
        pool = make_pool(rng, 25)
        matrix = SeedMatrix(pool)
        old = NybbleRange.from_address(pool[0])
        new = old.span(pool[1], loose=False).span(pool[2], loose=True)
        vec = matrix.distances_to_range(old)
        matrix.widen_distances_inplace(vec, old, new)
        assert vec.tolist() == matrix.distances_to_range(new).tolist()

    def test_count_in_ranges_matches_scalar(self):
        rng = random.Random(31)
        pool = make_pool(rng, 40)
        tree = NybbleTree(pool)
        ranges = [
            NybbleRange.from_address(pool[0]).span(pool[i], loose=(i % 2 == 0))
            for i in range(1, 12)
        ]
        assert tree.count_in_ranges(ranges) == [
            tree.count_in_range(r) for r in ranges
        ]
        assert tree.count_in_ranges([]) == []
