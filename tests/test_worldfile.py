"""Tests for world-file serialization."""

import json

import pytest

from repro.ipv6.prefix import Prefix
from repro.simnet.ground_truth import NetworkSpec, default_internet
from repro.simnet.worldfile import (
    WorldFileError,
    load_world,
    save_internet,
    save_world,
    spec_from_dict,
    spec_to_dict,
)


def _spec():
    return NetworkSpec(
        asn=64512,
        routed_prefix=Prefix.parse("2001:db8::/32"),
        policy_name="low-byte",
        policy_kwargs={"bits": 12},
        host_count=60,
        subnet_count=3,
        aliased_lengths=(96,),
        aliased_seed_count=10,
        seed_rate=0.4,
    )


class TestSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = _spec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_defaults_filled(self):
        spec = spec_from_dict({"asn": 1, "routed_prefix": "2001:db8::/32"})
        assert spec.policy_name == "low-byte"
        assert spec.subnet_length == 64

    def test_invalid_rejected(self):
        with pytest.raises(WorldFileError):
            spec_from_dict({"asn": 1, "routed_prefix": "not-a-prefix/zz"})
        with pytest.raises(WorldFileError):
            spec_from_dict({"routed_prefix": "2001:db8::/32"})


class TestWorldRoundTrip:
    def test_save_load_identical_world(self, tmp_path):
        path = tmp_path / "world.json"
        save_world(path, [_spec()], rng_seed=99)
        a = load_world(path)
        b = load_world(path)
        assert a.all_active_hosts() == b.all_active_hosts()
        assert a.truth.host_count(80) > 0
        assert len(a.truth.aliased) == 1

    def test_save_internet_reproduces(self, tmp_path):
        original = default_internet(scale=0.05, rng_seed=7)
        path = tmp_path / "world.json"
        save_internet(path, original)
        rebuilt = load_world(path)
        assert rebuilt.all_active_hosts() == original.all_active_hosts()
        assert {str(p) for p in rebuilt.routed_prefixes()} == {
            str(p) for p in original.routed_prefixes()
        }

    def test_port_rates_preserved(self, tmp_path):
        path = tmp_path / "world.json"
        save_world(path, [_spec()], rng_seed=1, port_rates={443: 1.0})
        world = load_world(path)
        assert world.truth.host_count(443) == world.truth.host_count(80)
        assert world.truth.host_count(25) == 0


class TestErrors:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(WorldFileError):
            load_world(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-world", "version": 99}))
        with pytest.raises(WorldFileError):
            load_world(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(WorldFileError):
            load_world(path)

    def test_rejects_empty_specs(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format": "repro-world", "version": 1, "specs": []})
        )
        with pytest.raises(WorldFileError):
            load_world(path)


class TestValidationOnLoad:
    def test_invalid_world_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        save_world(path, [_spec()], rng_seed=1)
        import json as json_mod

        doc = json_mod.loads(path.read_text())
        doc["specs"].append(dict(doc["specs"][0]))  # duplicate prefix
        path.write_text(json_mod.dumps(doc))
        with pytest.raises(WorldFileError, match="validation"):
            load_world(path)
