"""End-to-end integration tests: sim → seeds → TGA → scan → dealias.

These exercise the full §6 pipeline at a reduced scale and assert the
paper's qualitative findings hold in the reproduction.
"""

import pytest

from repro.analysis.grouping import run_per_prefix
from repro.core.sixgen import run_6gen
from repro.scanner.dealias import dealias
from repro.scanner.engine import Scanner
from repro.simnet.bgp import group_by_routed_prefix


@pytest.fixture(scope="module")
def pipeline(tiny_internet_module, tiny_seeds_module):
    internet, seeds = tiny_internet_module, tiny_seeds_module
    groups = group_by_routed_prefix(seeds.addresses(), internet.bgp)
    run = run_per_prefix(groups, budget=2000)
    scanner = Scanner(internet.truth)
    scan = scanner.scan(run.all_targets())
    report = dealias(scan.hits, scanner, internet.bgp)
    return internet, seeds, groups, run, scan, report


@pytest.fixture(scope="module")
def tiny_internet_module():
    from repro.simnet import default_internet

    return default_internet(scale=0.1, rng_seed=42)


@pytest.fixture(scope="module")
def tiny_seeds_module(tiny_internet_module):
    from repro.simnet import collect_seeds

    return collect_seeds(tiny_internet_module, rng_seed=7)


class TestPipeline:
    def test_finds_new_hosts(self, pipeline):
        internet, seeds, groups, run, scan, report = pipeline
        new_clean = report.clean_hits - set(seeds.addresses())
        assert len(new_clean) > 100  # 6Gen discovers unseen hosts

    def test_aliased_hits_dominate_raw(self, pipeline):
        # the paper's central measurement finding (§6.2)
        internet, seeds, groups, run, scan, report = pipeline
        assert report.aliased_fraction() > 0.4

    def test_no_ground_truth_aliased_leaks_into_clean(self, pipeline):
        internet, seeds, groups, run, scan, report = pipeline
        leaked = [h for h in report.clean_hits if internet.truth.is_aliased(h)]
        assert leaked == []

    def test_clean_hits_are_real_hosts(self, pipeline):
        internet, seeds, groups, run, scan, report = pipeline
        hosts = internet.truth.hosts(80)
        assert all(h in hosts for h in report.clean_hits)

    def test_budget_respected_per_prefix(self, pipeline):
        internet, seeds, groups, run, scan, report = pipeline
        for prefix_run in run.runs.values():
            assert prefix_run.result.budget_used <= prefix_run.budget

    def test_aliasing_concentrated(self, pipeline):
        internet, seeds, groups, run, scan, report = pipeline
        aliased_asns = {
            internet.bgp.origin_asn(h) for h in report.aliased_hits
        }
        assert len(aliased_asns) <= 8  # few ASes hold all aliasing

    def test_112_granularity_ases_flagged(self, pipeline):
        internet, seeds, groups, run, scan, report = pipeline
        flagged_names = {internet.as_name(a) for a in report.aliased_asns}
        assert flagged_names <= {"Cloudflare", "Mittwald"}


class TestCrossAlgorithm:
    def test_6gen_beats_random_on_structure(self, tiny_internet_module, tiny_seeds_module):
        from repro.baselines.random_gen import run_random

        internet, seeds = tiny_internet_module, tiny_seeds_module
        groups = group_by_routed_prefix(seeds.addresses(), internet.bgp)
        prefix, prefix_seeds = max(groups.items(), key=lambda kv: len(kv[1]))
        scanner = Scanner(internet.truth)
        budget = 2000

        sixgen_targets = run_6gen(prefix_seeds, budget).new_targets(prefix_seeds)
        random_targets = run_random(prefix_seeds, budget)
        sixgen_hits = scanner.scan(sixgen_targets).hit_count()
        random_hits = scanner.scan(random_targets).hit_count()
        assert sixgen_hits > max(4 * random_hits, 10)

    def test_churn_analysis_possible(self, pipeline):
        # §6.6: for some prefixes, hits exceed inactive seeds — proof of
        # genuinely new discoveries rather than churn.
        internet, seeds, groups, run, scan, report = pipeline
        from repro.analysis.metrics import hits_per_prefix

        counts = hits_per_prefix(report.clean_hits, groups)
        inactive = {
            prefix: sum(
                1 for s in prefix_seeds if not internet.truth.is_responsive(s)
            )
            for prefix, prefix_seeds in groups.items()
        }
        positive = [
            prefix
            for prefix in groups
            if counts[prefix] - inactive[prefix] > 0
        ]
        assert positive  # at least some prefixes show net-new discovery
