"""Shared fixtures: small simulated internets and seed sets."""

from __future__ import annotations

import random

import pytest

from repro.ipv6 import IPv6Addr
from repro.simnet import collect_seeds, default_internet


def addr(text: str) -> int:
    """Parse IPv6 text into the integer form used internally."""
    return IPv6Addr.parse(text).value


@pytest.fixture(scope="session")
def tiny_internet():
    """A very small simulated Internet shared across tests."""
    return default_internet(scale=0.05, rng_seed=42)


@pytest.fixture(scope="session")
def tiny_seeds(tiny_internet):
    """The FDNS seed snapshot of the tiny internet."""
    return collect_seeds(tiny_internet, rng_seed=7)


@pytest.fixture()
def rng():
    return random.Random(12345)


@pytest.fixture()
def dense_block_seeds():
    """Eight contiguous low-byte addresses plus one distant outlier."""
    seeds = [addr(f"2001:db8::{i:x}") for i in range(1, 9)]
    seeds.append(addr("2001:db8:ffff::1"))
    return seeds
