"""Tests for the §8 exploration drivers."""

import pytest

from repro.analysis import extensions as ext

SCALE = 0.05
BUDGET = 1500


class TestCrossProtocol:
    def test_finds_dual_stack_hosts(self):
        result = ext.cross_protocol_experiment(
            seed_port=80, target_port=443, budget=BUDGET, scale=SCALE
        )
        assert result.seed_count > 0
        assert result.hits_on_target_port > 0
        assert 0.0 <= result.coverage <= 1.0
        assert "cross-protocol" in ext.format_cross_protocol(result)

    def test_seed_count_smaller_than_total(self):
        from repro.analysis.experiments import standard_context

        result = ext.cross_protocol_experiment(budget=BUDGET, scale=SCALE)
        context = standard_context(SCALE)
        assert result.seed_count <= len(context.seed_addresses)

    def test_service_population_ordering(self):
        # HTTPS is common on web hosts, SSH less so, SMTP rare.
        from repro.analysis.experiments import standard_context

        truth = standard_context(SCALE).internet.truth
        assert (
            truth.host_count(25)
            < truth.host_count(22)
            < truth.host_count(443)
            <= truth.host_count(80)
        )

    def test_smtp_hunting_works(self):
        result = ext.cross_protocol_experiment(
            seed_port=80, target_port=25, budget=BUDGET, scale=SCALE
        )
        assert result.hits_on_target_port > 0
        assert result.true_hosts_on_target_port > 0


class TestSeedTypes:
    def test_slices_ordered(self):
        rows = ext.seed_type_experiment(budget=BUDGET, scale=SCALE)
        by_type = {r.record_type: r for r in rows}
        full = by_type["AAAA (all)"]
        assert full.seed_count > by_type["NS"].seed_count
        assert full.raw_hits >= by_type["NS"].raw_hits
        assert full.raw_hits >= by_type["MX"].raw_hits
        assert "record type" in ext.format_seed_types(rows)

    def test_single_type_still_discovers(self):
        rows = ext.seed_type_experiment(budget=BUDGET, scale=SCALE)
        ns = [r for r in rows if r.record_type == "NS"][0]
        # NS seeds alone still find hosts beyond themselves
        assert ns.dealiased_hits > ns.seed_count


class TestPrefilter:
    def test_variants_ordered_by_seed_count(self):
        rows = ext.seed_prefilter_experiment(budget=BUDGET, scale=SCALE)
        assert [r.variant for r in rows] == [
            "all seeds", "active seeds", "active+dealiased",
        ]
        counts = [r.seed_count for r in rows]
        assert counts[0] >= counts[1] >= counts[2]
        assert "prefiltering" in ext.format_prefilter(rows)

    def test_dealiased_seeds_reduce_aliased_hits(self):
        rows = ext.seed_prefilter_experiment(budget=BUDGET, scale=SCALE)
        by_variant = {r.variant: r for r in rows}
        all_aliased = (
            by_variant["all seeds"].raw_hits
            - by_variant["all seeds"].dealiased_hits
        )
        filtered_aliased = (
            by_variant["active+dealiased"].raw_hits
            - by_variant["active+dealiased"].dealiased_hits
        )
        # dropping aliased seeds steers budget away from aliased space
        assert filtered_aliased < all_aliased


class TestBudgetAllocation:
    def test_equal_total_budgets(self):
        rows = ext.budget_allocation_experiment(
            budget_per_prefix=BUDGET, scale=SCALE
        )
        assert {r.policy for r in rows} == {"static", "seed-proportional"}
        static, prop = rows[0], rows[1]
        # totals within ~20 % of each other (integer division slack)
        assert abs(static.total_budget - prop.total_budget) < 0.2 * static.total_budget
        assert "allocation" in ext.format_allocation(rows)

    def test_both_policies_find_hits(self):
        rows = ext.budget_allocation_experiment(
            budget_per_prefix=BUDGET, scale=SCALE
        )
        assert all(r.dealiased_hits > 0 for r in rows)


class TestAdaptiveComparison:
    def test_adaptive_more_efficient_on_aliased_network(self):
        rows = ext.adaptive_vs_classic_experiment(budget=4000, scale=0.1)
        by_pipeline = {r.pipeline: r for r in rows}
        classic, adaptive = by_pipeline["classic"], by_pipeline["adaptive"]
        # the feedback loop wastes fewer probes on aliased space
        assert adaptive.aliased_responses < classic.aliased_responses
        assert adaptive.probes <= classic.probes
        assert "scanner integration" in ext.format_adaptive_comparison(rows)


class TestProbeTypes:
    def test_icmp_population_larger(self):
        rows = ext.probe_type_experiment(budget=BUDGET, scale=SCALE)
        by_probe = {r.probe: r for r in rows}
        assert by_probe["ICMPv6"].true_population >= by_probe["TCP/80"].true_population
        assert by_probe["ICMPv6"].raw_hits >= by_probe["TCP/80"].raw_hits
        assert "probe-type" in ext.format_probe_types(rows)

    def test_coverage_bounded(self):
        rows = ext.probe_type_experiment(budget=BUDGET, scale=SCALE)
        assert all(0.0 <= r.coverage <= 1.0 for r in rows)
