"""Unit and property tests for CIDR prefixes."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6.prefix import Prefix, PrefixError, host_mask, network_mask

from conftest import addr


class TestConstruction:
    def test_parse(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.network == 0x20010DB8 << 96
        assert p.length == 32

    def test_parse_full_length(self):
        p = Prefix.parse("::1/128")
        assert p.size() == 1

    def test_parse_zero_length(self):
        p = Prefix.parse("::/0")
        assert p.size() == 1 << 128

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("2001:db8::1/32")

    def test_rejects_missing_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("2001:db8::")

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix.parse("::/129")
        with pytest.raises(PrefixError):
            Prefix.parse("::/abc")

    def test_containing_masks_host_bits(self):
        p = Prefix.containing(addr("2001:db8::1"), 32)
        assert p == Prefix.parse("2001:db8::/32")

    def test_immutable(self):
        p = Prefix.parse("::/0")
        with pytest.raises(AttributeError):
            p.length = 1


class TestMembership:
    def test_contains_own_network(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.contains(p.network)

    def test_contains_last(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.contains(p.last)
        assert not p.contains(p.last + 1)

    def test_contains_prefix(self):
        outer = Prefix.parse("2001:db8::/32")
        inner = Prefix.parse("2001:db8:1::/48")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_size(self):
        assert Prefix.parse("::/96").size() == 1 << 32


class TestNavigation:
    def test_supernet(self):
        p = Prefix.parse("2001:db8:1::/48")
        assert p.supernet(32) == Prefix.parse("2001:db8::/32")

    def test_supernet_rejects_longer(self):
        with pytest.raises(PrefixError):
            Prefix.parse("::/32").supernet(48)

    def test_subnets(self):
        p = Prefix.parse("2001:db8::/126")
        subs = list(p.subnets(128))
        assert len(subs) == 4
        assert subs[0].network == p.network

    def test_subnets_rejects_shorter(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("::/48").subnets(32))

    def test_addresses(self):
        p = Prefix.parse("2001:db8::/127")
        addrs = list(p.addresses())
        assert len(addrs) == 2
        assert int(addrs[1]) == p.network + 1

    def test_random_address_inside(self):
        p = Prefix.parse("2001:db8::/32")
        rng = random.Random(0)
        for _ in range(50):
            assert p.contains(p.random_address(rng))


class TestOrderingAndRepr:
    def test_str(self):
        assert str(Prefix.parse("2001:db8::/32")) == "2001:db8::/32"

    def test_equality_hash(self):
        a = Prefix.parse("2001:db8::/32")
        b = Prefix.containing(addr("2001:db8::ff"), 32)
        assert a == b and hash(a) == hash(b)

    def test_sortable(self):
        a = Prefix.parse("2001:db8::/32")
        b = Prefix.parse("2001:db9::/32")
        assert sorted([b, a]) == [a, b]


class TestMasks:
    def test_network_mask_bounds(self):
        assert network_mask(0) == 0
        assert network_mask(128) == (1 << 128) - 1

    def test_host_mask_bounds(self):
        assert host_mask(128) == 0
        assert host_mask(0) == (1 << 128) - 1

    def test_masks_complementary(self):
        for length in (0, 1, 32, 64, 96, 127, 128):
            assert network_mask(length) ^ host_mask(length) == (1 << 128) - 1

    def test_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            network_mask(129)


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=0, max_value=128),
    )
    def test_containing_always_contains(self, value, length):
        assert Prefix.containing(value, length).contains(value)

    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=0, max_value=128),
    )
    def test_roundtrip_through_text(self, value, length):
        p = Prefix.containing(value, length)
        assert Prefix.parse(str(p)) == p

    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=1, max_value=128),
    )
    def test_supernet_contains_subnet(self, value, length):
        p = Prefix.containing(value, length)
        assert p.supernet(length - 1).contains_prefix(p)


class TestPickling:
    def test_round_trip(self):
        import pickle

        p = Prefix.parse("2001:db8::/32")
        assert pickle.loads(pickle.dumps(p)) == p
