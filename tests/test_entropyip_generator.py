"""Tests for the Entropy/IP pipeline and budgeted generation."""

import random

import pytest

from repro.entropyip.generator import (
    EntropyIPConfig,
    fit_entropy_ip,
    run_entropy_ip,
)

from conftest import addr


def _structured_seeds(count=600, rng_seed=3):
    """2001:db8:X::Y with X in 0..15 and Y in 1..199."""
    rng = random.Random(rng_seed)
    seeds = set()
    while len(seeds) < count:
        x = rng.randrange(16)
        y = rng.randrange(1, 200)
        seeds.add(addr(f"2001:db8:{x:x}::{y:x}"))
    return sorted(seeds)


class TestFit:
    def test_model_components(self):
        model = fit_entropy_ip(_structured_seeds())
        assert len(model.entropies) == 32
        assert model.segments
        assert len(model.segment_models) == len(model.segments)
        assert model.seed_count == 600

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_entropy_ip([])

    def test_support_size_reasonable(self):
        model = fit_entropy_ip(_structured_seeds())
        # true pattern space is 16 * 199 = 3184; support bound must cover it
        assert model.support_size() >= 3184


class TestGenerate:
    def test_generates_distinct_targets(self):
        model = fit_entropy_ip(_structured_seeds())
        targets = model.generate(1000)
        assert len(targets) == 1000

    def test_targets_match_learned_structure(self):
        seeds = _structured_seeds()
        model = fit_entropy_ip(seeds)
        for target in model.generate(500):
            assert target >> 112 == 0x2001
            assert (target >> 96) & 0xFFFF == 0x0DB8

    def test_recovers_heldout_population(self):
        seeds = _structured_seeds()
        truth = {addr(f"2001:db8:{x:x}::{y:x}") for x in range(16) for y in range(1, 200)}
        model = fit_entropy_ip(seeds)
        targets = model.generate(5000)
        heldout = truth - set(seeds)
        recovered = len(targets & heldout) / len(heldout)
        assert recovered > 0.9

    def test_exclude_seeds(self):
        seeds = _structured_seeds(200)
        targets = run_entropy_ip(seeds, 500, exclude_seeds=True)
        assert not (targets & set(seeds))

    def test_zero_budget(self):
        model = fit_entropy_ip(_structured_seeds(50))
        assert model.generate(0) == set()

    def test_rejects_negative_budget(self):
        model = fit_entropy_ip(_structured_seeds(50))
        with pytest.raises(ValueError):
            model.generate(-1)

    def test_stops_when_support_exhausted(self):
        # A tiny, fully structured seed set has small support; asking
        # for far more targets must terminate and return the support.
        seeds = [addr(f"2001:db8::{i:x}") for i in range(1, 11)]
        model = fit_entropy_ip(seeds)
        targets = model.generate(100000)
        assert len(targets) < 100000

    def test_deterministic_with_seeded_rng(self):
        seeds = _structured_seeds(100)
        a = fit_entropy_ip(seeds, EntropyIPConfig(rng_seed=5)).generate(200)
        b = fit_entropy_ip(seeds, EntropyIPConfig(rng_seed=5)).generate(200)
        assert a == b


class TestGenerateOrdered:
    def test_ordered_prefix_of_budget(self):
        model = fit_entropy_ip(_structured_seeds())
        ordered = model.generate_ordered(100)
        assert len(ordered) == 100
        assert len(set(ordered)) == 100

    def test_ordered_respects_exclusion(self):
        seeds = _structured_seeds(100)
        model = fit_entropy_ip(seeds)
        ordered = model.generate_ordered(50, exclude=seeds)
        assert not (set(ordered) & set(seeds))

    def test_high_probability_first(self):
        # the first ordered targets should score at least as high as
        # the last ones under the model
        model = fit_entropy_ip(_structured_seeds())
        ordered = model.generate_ordered(200)
        head = sum(model.score(a) for a in ordered[:20]) / 20
        tail = sum(model.score(a) for a in ordered[-20:]) / 20
        assert head >= tail


class TestScore:
    def test_seen_address_scores_positive(self):
        seeds = _structured_seeds(100)
        model = fit_entropy_ip(seeds)
        assert model.score(seeds[0]) > 0

    def test_structured_beats_random(self):
        seeds = _structured_seeds()
        model = fit_entropy_ip(seeds)
        structured = model.score(addr("2001:db8:5::55"))
        unrelated = model.score(addr("fe80::1234:5678:9abc:def0"))
        assert structured > unrelated


class TestDescribe:
    def test_report_sections(self):
        model = fit_entropy_ip(_structured_seeds(200))
        text = model.describe()
        assert "Entropy/IP model (200 seeds)" in text
        assert "per-nybble entropy" in text
        assert "segments and mined values" in text
        assert "(root)" in text

    def test_tree_dependencies_shown(self):
        model = fit_entropy_ip(
            _structured_seeds(200), EntropyIPConfig(bayes_structure="tree")
        )
        assert "<- segment" in model.describe()
