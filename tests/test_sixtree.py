"""Tests for the 6Tree-style successor algorithm."""

import pytest

from repro.ipv6.prefix import Prefix
from repro.scanner.engine import Scanner
from repro.simnet.aliasing import AliasedRegionSet
from repro.simnet.ground_truth import GroundTruth
from repro.successors.sixtree import (
    SixTreeConfig,
    SixTree,
    build_space_tree,
    leaves,
    run_sixtree,
)

from conftest import addr


def _scanner(hosts=()):
    return Scanner(GroundTruth({80: set(hosts)}, AliasedRegionSet()), rng_seed=0)


class TestSpaceTree:
    def test_single_seed_is_leaf(self):
        tree = build_space_tree([addr("2001:db8::1")])
        assert tree.is_leaf
        assert tree.depth == 32
        assert tree.region().is_singleton()

    def test_common_prefix_extended(self):
        seeds = [addr("2001:db8::1"), addr("2001:db8::2")]
        tree = build_space_tree(seeds, max_leaf_seeds=1)
        # the shared prefix covers all but the last nybble
        assert tree.depth == 31
        assert len(tree.children) == 2

    def test_split_on_leftmost_differing_nybble(self):
        seeds = [addr("2001:db8:1::5"), addr("2001:db8:2::5"), addr("2001:db8:2::6")]
        tree = build_space_tree(seeds, max_leaf_seeds=1)
        # hextet 3 is "0001"/"0002": the first differing nybble is its
        # last digit, index 11
        assert tree.depth == 11
        assert set(tree.children) == {1, 2}

    def test_leaf_size_respected(self):
        seeds = [addr(f"2001:db8::{i:x}") for i in range(1, 17)]
        tree = build_space_tree(seeds, max_leaf_seeds=4)
        for leaf in leaves(tree):
            assert len(leaf.seeds) <= 4 or leaf.depth == 32

    def test_leaves_partition_seeds(self):
        seeds = [addr(f"2001:db8:{i % 3:x}::{i:x}") for i in range(1, 30)]
        tree = build_space_tree(seeds, max_leaf_seeds=4)
        leaf_seeds = sorted(s for leaf in leaves(tree) for s in leaf.seeds)
        assert leaf_seeds == sorted(set(seeds))

    def test_regions_contain_their_seeds(self):
        seeds = [addr(f"2001:db8:{i % 5:x}::{i:x}") for i in range(1, 40)]
        tree = build_space_tree(seeds)
        for leaf in leaves(tree):
            region = leaf.region()
            assert all(region.contains(s) for s in leaf.seeds)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_space_tree([])


class TestDynamicScan:
    def test_budget_respected(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 200)]
        result = run_sixtree(hosts[::8], _scanner(hosts), 300)
        assert result.probes_used <= 300

    def test_finds_unseen_hosts(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 250)]
        seeds = hosts[::10]
        result = run_sixtree(seeds, _scanner(hosts), 600)
        new_hits = result.hits - set(seeds)
        assert len(new_hits) > 50

    def test_expansion_reaches_parent_region(self):
        # seeds in ::1-::8; hosts also fill ::10-::ff — only reachable
        # after expanding the leaf region upward
        seeds = [addr(f"2001:db8::{i:x}") for i in range(1, 9)]
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 256)]
        result = run_sixtree(seeds, _scanner(hosts), 400)
        assert result.expansions >= 1
        beyond_leaf = [h for h in result.hits if (h & 0xFFF) > 0xF]
        assert beyond_leaf

    def test_barren_region_not_expanded(self):
        # only the seeds respond; nothing else in their region
        seeds = [addr("2001:db8::1"), addr("2001:db8:ffff::1")]
        result = run_sixtree(seeds, _scanner(seeds), 400, expand_threshold=0.5)
        assert result.expansions == 0

    def test_zero_budget(self):
        result = run_sixtree([addr("::1")], _scanner(), 0)
        assert result.probes_used == 0

    def test_empty_seeds(self):
        result = run_sixtree([], _scanner(), 100)
        assert result.probes_used == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SixTree(_scanner(), SixTreeConfig(total_budget=-1))

    def test_deterministic(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 100)]
        a = run_sixtree(hosts[::5], _scanner(hosts), 300, rng_seed=2)
        b = run_sixtree(hosts[::5], _scanner(hosts), 300, rng_seed=2)
        assert a.hits == b.hits
        assert a.probes_used == b.probes_used

    def test_hit_rate_property(self):
        hosts = [addr(f"2001:db8::{i:x}") for i in range(1, 60)]
        result = run_sixtree(hosts[:10], _scanner(hosts), 200)
        assert 0.0 <= result.hit_rate <= 1.0
