"""Tests for the AS registry."""

import pytest

from repro.simnet.asn import WELL_KNOWN_ASES, AsRegistry, AutonomousSystem


class TestRegistry:
    def test_well_known_present(self):
        registry = AsRegistry.with_well_known()
        assert registry.name_of(20940) == "Akamai"
        assert registry.name_of(13335) == "Cloudflare"
        assert len(registry) == len(WELL_KNOWN_ASES)

    def test_unknown_fallback_name(self):
        registry = AsRegistry()
        assert registry.name_of(42) == "AS42"
        assert registry.get(42) is None

    def test_add_and_contains(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(7, "seven"))
        assert 7 in registry
        assert registry.get(7).name == "seven"

    def test_duplicate_rejected(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(7, "seven"))
        with pytest.raises(ValueError):
            registry.add(AutonomousSystem(7, "again"))

    def test_add_filler_skips_taken(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(200_000, "taken"))
        added = registry.add_filler(3)
        assert len(added) == 3
        assert all(a.asn != 200_000 for a in added)
        assert len(registry) == 4

    def test_iteration(self):
        registry = AsRegistry.with_well_known()
        assert {a.asn for a in registry} == {a.asn for a in WELL_KNOWN_ASES}

    def test_str(self):
        assert str(AutonomousSystem(7, "seven")) == "AS7 (seven)"
