"""Tests for Entropy/IP stage 2: segmentation."""

import pytest

from repro.entropyip.segments import Segment, segment_addresses, segment_positions
from repro.ipv6.nybble import NYBBLE_COUNT

from conftest import addr


class TestSegment:
    def test_extract(self):
        seg = Segment(28, 32, 0.0)
        assert seg.extract(addr("2001:db8::abcd")) == 0xABCD

    def test_extract_middle(self):
        seg = Segment(4, 8, 0.0)
        assert seg.extract(addr("2001:db8::1")) == 0x0DB8

    def test_insert(self):
        seg = Segment(28, 32, 0.0)
        assert seg.insert(0, 0x1234) == 0x1234
        assert seg.insert(addr("2001:db8::ffff"), 0) == addr("2001:db8::")

    def test_insert_extract_roundtrip(self):
        seg = Segment(10, 14, 0.0)
        value = seg.insert(addr("2001:db8::1"), 0xBEE)
        assert seg.extract(value) == 0xBEE

    def test_insert_rejects_oversize(self):
        seg = Segment(30, 32, 0.0)
        with pytest.raises(ValueError):
            seg.insert(0, 0x100)

    def test_width(self):
        assert Segment(0, 4, 0.0).width == 4


class TestSegmentation:
    def test_covers_all_positions(self):
        entropies = [0.0] * 16 + [1.0] * 16
        segments = segment_positions(entropies)
        assert segments[0].start == 0
        assert segments[-1].end == NYBBLE_COUNT
        for a, b in zip(segments, segments[1:]):
            assert a.end == b.start

    def test_splits_on_entropy_step(self):
        entropies = [0.0] * 16 + [1.0] * 16
        segments = segment_positions(entropies, threshold=0.1)
        boundaries = {s.start for s in segments}
        assert 16 in boundaries

    def test_max_width_respected(self):
        entropies = [0.5] * 32
        segments = segment_positions(entropies, max_width=4)
        assert all(s.width <= 4 for s in segments)

    def test_threshold_controls_granularity(self):
        entropies = [i / 64 for i in range(32)]  # slow ramp
        fine = segment_positions(entropies, threshold=0.01, max_width=32)
        coarse = segment_positions(entropies, threshold=0.5, max_width=32)
        assert len(fine) >= len(coarse)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            segment_positions([0.0] * 31)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            segment_positions([0.0] * 32, max_width=0)

    def test_segment_addresses_convenience(self):
        seeds = [addr(f"2001:db8::{i:x}") for i in range(16)]
        segments = segment_addresses(seeds)
        assert segments[-1].end == NYBBLE_COUNT
        # The final (random) nybble should end up in its own segment.
        assert segments[-1].start >= 28
