"""Tests for the aliased-region model (§6.2 substrate)."""

import pytest

from repro.ipv6.prefix import Prefix
from repro.simnet.aliasing import AliasedRegion, AliasedRegionSet

from conftest import addr


class TestAliasedRegion:
    def test_responds_inside(self):
        region = AliasedRegion(Prefix.parse("2001:db8::/56"), frozenset({80}))
        assert region.responds(addr("2001:db8:0:aa::1234"), 80)

    def test_silent_outside(self):
        region = AliasedRegion(Prefix.parse("2001:db8::/56"), frozenset({80}))
        assert not region.responds(addr("2001:db9::1"), 80)

    def test_port_filter(self):
        region = AliasedRegion(Prefix.parse("2001:db8::/56"), frozenset({80}))
        assert not region.responds(addr("2001:db8::1"), 443)

    def test_str(self):
        region = AliasedRegion(Prefix.parse("2001:db8::/56"), frozenset({80, 443}))
        assert "80,443" in str(region)


class TestAliasedRegionSet:
    def _set(self):
        regions = AliasedRegionSet()
        regions.add_prefix(Prefix.parse("2001:db8::/56"))
        regions.add_prefix(Prefix.parse("2600::/96"), ports=(80, 443))
        regions.add_prefix(Prefix.parse("2606:4700::ffff:0/112"))
        return regions

    def test_membership(self):
        regions = self._set()
        assert regions.responds(addr("2001:db8:0:42::1"), 80)
        assert regions.responds(addr("2600::1234"), 443)
        assert regions.responds(addr("2606:4700::ffff:9"), 80)
        assert not regions.responds(addr("2606:4700::fffe:9"), 80)

    def test_find(self):
        regions = self._set()
        found = regions.find(addr("2600::1"))
        assert found is not None and found.prefix == Prefix.parse("2600::/96")
        assert regions.find(addr("1::1")) is None

    def test_duplicate_rejected(self):
        regions = self._set()
        with pytest.raises(ValueError):
            regions.add_prefix(Prefix.parse("2001:db8::/56"))

    def test_len_iter_bool(self):
        regions = self._set()
        assert len(regions) == 3
        assert len(list(regions)) == 3
        assert regions
        assert not AliasedRegionSet()


class TestBatchLookups:
    def _nested(self):
        regions = AliasedRegionSet()
        regions.add_prefix(Prefix.parse("2001:db8::/56"), (80,))
        regions.add_prefix(Prefix.parse("2001:db8:0:0:aa::/96"), (443,))
        regions.add_prefix(Prefix.parse("2600:aaaa::cafe:0/112"), (80,))
        return regions

    def test_find_returns_shortest_nested_region(self):
        regions = self._nested()
        inside_both = addr("2001:db8:0:0:aa::1")
        found = regions.find(inside_both)
        assert found is not None and found.prefix.length == 56

    def test_find_many_matches_scalar(self):
        regions = self._nested()
        probes = [
            addr("2001:db8:0:0:aa::1"),   # nested: /56 wins
            addr("2001:db8:0:ff::1"),     # /56 only
            addr("2600:aaaa::cafe:1"),    # /112 only
            addr("2600:aaaa::beef:1"),    # near miss
            addr("9999::1"),              # far miss
        ]
        assert regions.find_many(probes) == [regions.find(a) for a in probes]

    def test_responds_many_matches_scalar(self):
        regions = self._nested()
        probes = [
            addr("2001:db8:0:0:aa::1"),
            addr("2600:aaaa::cafe:1"),
            addr("9999::1"),
        ]
        for port in (80, 443, 22):
            assert regions.responds_many(probes, port) == [
                regions.responds(a, port) for a in probes
            ]

    def test_empty_set_fast_path(self):
        regions = AliasedRegionSet()
        probes = [addr("::1"), addr("2001:db8::1")]
        assert regions.find_many(probes) == [None, None]
        assert regions.responds_many(probes, 80) == [False, False]

    def test_cache_invalidated_on_add(self):
        regions = AliasedRegionSet()
        regions.add_prefix(Prefix.parse("2001:db8::/56"), (80,))
        probe = addr("2001:db8:0:0:aa::1")
        assert regions.find_many([probe])[0].prefix.length == 56
        # a later, shorter region must supersede the cached decision
        regions.add_prefix(Prefix.parse("2001:db8::/48"), (80,))
        assert regions.find_many([probe])[0].prefix.length == 48
