"""Tests for the 16-ary nybble tree (paper §5.5 optimization)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipv6.nybble_tree import NybbleTree
from repro.ipv6.range_ import NybbleRange

from conftest import addr

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestBasics:
    def test_empty(self):
        tree = NybbleTree()
        assert len(tree) == 0
        assert not tree
        assert 0 not in tree

    def test_insert_and_contains(self):
        tree = NybbleTree()
        assert tree.insert(addr("2001:db8::1"))
        assert addr("2001:db8::1") in tree
        assert addr("2001:db8::2") not in tree
        assert len(tree) == 1

    def test_duplicate_insert_ignored(self):
        tree = NybbleTree()
        assert tree.insert(5)
        assert not tree.insert(5)
        assert len(tree) == 1

    def test_constructor_bulk_insert(self):
        tree = NybbleTree([1, 2, 3, 2])
        assert len(tree) == 3

    def test_remove(self):
        tree = NybbleTree([1, 2])
        assert tree.remove(1)
        assert 1 not in tree
        assert len(tree) == 1
        assert not tree.remove(1)
        assert not tree.remove(99)

    def test_remove_then_reinsert(self):
        tree = NybbleTree([7])
        tree.remove(7)
        assert tree.insert(7)
        assert 7 in tree


class TestRangeQueries:
    def test_count_in_range(self):
        seeds = [addr(f"2001:db8::{i:x}") for i in range(8)]
        seeds.append(addr("2001:db9::1"))
        tree = NybbleTree(seeds)
        assert tree.count_in_range(NybbleRange.parse("2001:db8::?")) == 8
        assert tree.count_in_range(NybbleRange.full()) == 9
        assert tree.count_in_range(NybbleRange.parse("2002::?")) == 0

    def test_iter_in_range_sorted(self):
        seeds = [addr("2001:db8::3"), addr("2001:db8::1"), addr("2001:db8::2")]
        tree = NybbleTree(seeds)
        values = list(tree.iter_in_range(NybbleRange.parse("2001:db8::?")))
        assert values == sorted(seeds)

    def test_iter_all(self):
        seeds = {addr("::1"), addr("ffff::1")}
        tree = NybbleTree(seeds)
        assert set(tree.iter_all()) == seeds

    def test_count_with_prefix_nybbles(self):
        tree = NybbleTree([addr("2001:db8::1"), addr("2001:db8::2"), addr("3::1")])
        assert tree.count_with_prefix_nybbles([2, 0, 0, 1]) == 2
        assert tree.count_with_prefix_nybbles([0, 0, 0, 3]) == 1  # "3::" = 0003:...
        assert tree.count_with_prefix_nybbles([4]) == 0
        assert tree.count_with_prefix_nybbles([]) == 3

    def test_densest_child(self):
        tree = NybbleTree([addr("2001:db8::1"), addr("2001:db8::2"), addr("3::1")])
        value, count = tree.densest_child([])
        assert value == 2 and count == 2
        assert tree.densest_child([9]) is None


class TestBruteForceEquivalence:
    @settings(max_examples=30)
    @given(st.lists(addresses, min_size=0, max_size=50))
    def test_len_matches_set(self, values):
        tree = NybbleTree(values)
        assert len(tree) == len(set(values))

    @settings(max_examples=30)
    @given(st.lists(addresses, min_size=1, max_size=40), addresses)
    def test_count_in_range_matches_brute_force(self, values, pivot):
        tree = NybbleTree(values)
        r = NybbleRange.from_address(values[0]).span_loose(pivot)
        expected = sum(1 for v in set(values) if r.contains(v))
        assert tree.count_in_range(r) == expected
        assert sorted(tree.iter_in_range(r)) == sorted(
            v for v in set(values) if r.contains(v)
        )

    @settings(max_examples=20)
    @given(st.lists(addresses, min_size=1, max_size=30))
    def test_remove_keeps_counts_consistent(self, values):
        tree = NybbleTree(values)
        reference = set(values)
        rng = random.Random(0)
        for value in rng.sample(values, len(values) // 2):
            assert tree.remove(value) == (value in reference)
            reference.discard(value)
        assert len(tree) == len(reference)
        assert set(tree.iter_all()) == reference


class TestShortCircuit:
    def test_full_suffix_uses_subtree_count(self):
        # A query whose low nybbles are all-wildcard should count via
        # node counters; verify correctness on a dense low block.
        seeds = [addr(f"2001:db8::{i:x}") for i in range(256)]
        tree = NybbleTree(seeds)
        r = NybbleRange.parse("2001:db8::??")
        assert tree.count_in_range(r) == 256

    def test_partial_wildcards(self):
        seeds = [addr("2001:db8::10"), addr("2001:db8::1f"), addr("2001:db8::2f")]
        tree = NybbleTree(seeds)
        assert tree.count_in_range(NybbleRange.parse("2001:db8::1?")) == 2
