"""Behavioural tests for the 6Gen algorithm (paper §5)."""

import pytest

from repro.core.sixgen import SixGen, SixGenConfig, run_6gen
from repro.ipv6.range_ import NybbleRange

from conftest import addr


class TestEdgeCases:
    def test_no_seeds(self):
        result = run_6gen([], budget=100)
        assert result.clusters == []
        assert result.target_count() == 0
        assert result.budget_used == 0

    def test_single_seed(self):
        result = run_6gen([addr("2001:db8::1")], budget=100)
        assert len(result.clusters) == 1
        assert result.clusters[0].is_singleton()
        assert result.budget_used == 0
        assert result.target_set() == {addr("2001:db8::1")}

    def test_duplicate_seeds_deduplicated(self):
        result = run_6gen([addr("::1")] * 5, budget=100)
        assert result.seed_count == 1

    def test_zero_budget_yields_singletons(self):
        seeds = [addr("2001:db8::1"), addr("2001:db8::2")]
        result = run_6gen(seeds, budget=0)
        assert all(c.is_singleton() for c in result.clusters)
        assert result.target_set() == set(seeds)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            run_6gen([addr("::1")], budget=-1)


class TestClustering:
    def test_dense_block_forms_one_cluster(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=100)
        grown = result.grown_clusters()
        assert len(grown) >= 1
        best = max(grown, key=lambda c: c.seed_count)
        assert best.range == NybbleRange.parse("2001:db8::?")
        assert best.seed_count == 8

    def test_outlier_stays_separate_when_budget_small(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=20)
        # the distant outlier cannot be affordably unified
        singleton_ranges = {c.range for c in result.singleton_clusters()}
        assert NybbleRange.from_address(addr("2001:db8:ffff::1")) in singleton_ranges

    def test_two_seed_network_grows(self):
        # The §5.4 note: the unifying growth is applied, not discarded —
        # otherwise 2-seed prefixes would never grow (contradicting Fig. 5b).
        seeds = [addr("2001:db8::1"), addr("2001:db8::2")]
        result = run_6gen(seeds, budget=100)
        assert len(result.grown_clusters()) == 1
        assert result.grown_clusters()[0].seed_count == 2

    def test_encapsulated_clusters_deleted(self):
        seeds = [addr(f"2001:db8::{i:x}") for i in range(1, 9)]
        result = run_6gen(seeds, budget=100)
        # all 8 seeds unify into one cluster; no singleton survives inside it
        assert len(result.clusters) == 1
        assert result.clusters[0].seed_count == 8

    def test_two_distant_dense_blocks(self):
        block_a = [addr(f"2001:db8::{i:x}") for i in range(1, 7)]
        block_b = [addr(f"2001:db8:ffff::{i:x}") for i in range(1, 7)]
        result = run_6gen(block_a + block_b, budget=32)
        grown_ranges = {c.range for c in result.grown_clusters()}
        assert NybbleRange.parse("2001:db8::?") in grown_ranges
        assert NybbleRange.parse("2001:db8:ffff::?") in grown_ranges

    def test_density_priority(self):
        # A dense block and a sparse pair: the dense block must grow first.
        dense = [addr(f"2001:db8::{i:x}") for i in range(1, 9)]
        sparse = [addr("2001:db8:1::1"), addr("2001:db8:1::9")]
        result = run_6gen(dense + sparse, budget=16)
        best = max(result.grown_clusters(), key=lambda c: c.seed_count)
        assert best.range == NybbleRange.parse("2001:db8::?")


class TestBudget:
    def test_budget_never_exceeded(self, dense_block_seeds):
        for budget in (1, 5, 16, 100, 1000):
            result = run_6gen(dense_block_seeds, budget=budget)
            assert result.budget_used <= budget
            new = result.new_targets(dense_block_seeds)
            assert len(new) <= budget

    def test_budget_consumed_exactly_when_exceeding(self):
        # Growth into a huge range triggers exact consumption by sampling.
        seeds = [addr("2001:db8::1"), addr("2001:db8:1234:5678::1")]
        result = run_6gen(seeds, budget=50)
        assert result.budget_used == 50
        assert len(result.sampled) == 50

    def test_targets_include_seeds(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=100)
        assert set(dense_block_seeds) <= result.target_set()

    def test_target_count_consistency(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=100)
        assert result.target_count() == len(result.target_set())
        assert result.target_count() == result.budget_used + result.seed_count


class TestModes:
    def test_tight_ranges_smaller(self, dense_block_seeds):
        loose = run_6gen(dense_block_seeds, budget=30, loose=True)
        tight = run_6gen(dense_block_seeds, budget=30, loose=False)
        loose_best = max(loose.clusters, key=lambda c: c.seed_count)
        tight_best = max(tight.clusters, key=lambda c: c.seed_count)
        assert tight_best.range.size() <= loose_best.range.size()

    def test_tight_mode_value_sets(self):
        seeds = [addr("2001:db8::1"), addr("2001:db8::3")]
        result = run_6gen(seeds, budget=100, loose=False)
        grown = result.grown_clusters()[0]
        assert grown.range.values_at(31) == (1, 3)

    def test_ledger_modes_same_clusters_on_disjoint_input(self):
        # With non-overlapping clusters both ledgers pick the same growths;
        # their costs differ exactly by the seeds inside the grown range
        # (the exact ledger never charges already-known addresses).
        seeds = [addr(f"2001:db8::{i:x}") for i in range(1, 7)]
        exact = run_6gen(seeds, budget=16, ledger="exact")
        rangesum = run_6gen(seeds, budget=16, ledger="range-sum")
        assert {c.range for c in exact.clusters} == {c.range for c in rangesum.clusters}
        grown = exact.grown_clusters()[0]
        # range-sum charged size-1 (from the founding singleton); exact
        # charged size minus every seed that fell inside.
        assert rangesum.budget_used - exact.budget_used == grown.seed_count - 1

    def test_python_fallback_matches_numpy(self, dense_block_seeds):
        fast = run_6gen(dense_block_seeds, budget=40, use_seed_matrix=True)
        slow = run_6gen(dense_block_seeds, budget=40, use_seed_matrix=False)
        assert {c.range for c in fast.clusters} == {c.range for c in slow.clusters}

    def test_no_cache_matches_cached(self, dense_block_seeds):
        cached = run_6gen(dense_block_seeds, budget=40, use_growth_cache=True)
        naive = run_6gen(dense_block_seeds, budget=40, use_growth_cache=False)
        assert {c.range for c in cached.clusters} == {c.range for c in naive.clusters}
        assert cached.budget_used == naive.budget_used


class TestDeterminism:
    def test_same_rng_seed_same_result(self, dense_block_seeds):
        a = run_6gen(dense_block_seeds, budget=60, rng_seed=7)
        b = run_6gen(dense_block_seeds, budget=60, rng_seed=7)
        assert {c.range for c in a.clusters} == {c.range for c in b.clusters}
        assert a.target_set() == b.target_set()

    def test_seed_order_irrelevant(self, dense_block_seeds):
        a = run_6gen(dense_block_seeds, budget=60, rng_seed=7)
        b = run_6gen(list(reversed(dense_block_seeds)), budget=60, rng_seed=7)
        assert {c.range for c in a.clusters} == {c.range for c in b.clusters}


class TestResultIntrospection:
    def test_dynamic_nybble_indices(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=16)
        assert 31 in result.dynamic_nybble_indices()

    def test_iterations_counted(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=16)
        assert result.iterations >= 1

    def test_elapsed_recorded(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=16)
        assert result.elapsed_seconds > 0

    def test_config_object_api(self, dense_block_seeds):
        config = SixGenConfig(budget=16, loose=False, rng_seed=3)
        result = SixGen(dense_block_seeds, config).run()
        assert result.budget_limit == 16


class TestDensityOrderedStream:
    def test_sampled_addresses_last(self):
        # force a final-growth sampling, then check stream ordering
        seeds = [addr("2001:db8::1"), addr("2001:db8:1234:5678::1")]
        result = run_6gen(seeds, budget=20)
        assert result.sampled
        stream = list(result.iter_targets_by_density())
        tail = stream[-len(result.sampled):]
        assert set(tail) <= set(result.sampled) | set(seeds)

    def test_stream_has_no_duplicates(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=60)
        stream = list(result.iter_targets_by_density())
        assert len(stream) == len(set(stream))


class TestWholeSpaceSeeds:
    def test_extreme_span_handled(self):
        # seeds at opposite corners of the space: the unifying growth is
        # the whole 2**128 space; sampling must still work
        seeds = [0, (1 << 128) - 1, 1 << 64]
        result = run_6gen(seeds, budget=25)
        assert result.budget_used <= 25
        assert len(result.target_set()) <= 25 + 3

    def test_budget_of_one(self, dense_block_seeds):
        result = run_6gen(dense_block_seeds, budget=1)
        assert result.budget_used <= 1
        assert len(result.new_targets(dense_block_seeds)) <= 1
