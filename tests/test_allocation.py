"""Tests for address-allocation policies (RFC 7707 practices)."""

import pytest

from repro.ipv6 import patterns
from repro.ipv6.prefix import Prefix
from repro.simnet.allocation import (
    POLICY_CLASSES,
    EUI64Policy,
    HexWordPolicy,
    IPv4EmbeddedPolicy,
    LowBytePolicy,
    PortEmbedPolicy,
    PrivacyRandomPolicy,
    SequentialPolicy,
    allocate_subnets,
    make_policy,
)

SUBNET = Prefix.parse("2001:db8:0:1::/64")


class TestLowByte:
    def test_sequential_dense(self, rng):
        hosts = LowBytePolicy(bits=8).allocate(SUBNET, 10, rng)
        assert hosts == {SUBNET.network | i for i in range(1, 11)}

    def test_respects_bit_width(self, rng):
        hosts = LowBytePolicy(bits=8, sequential=False).allocate(SUBNET, 50, rng)
        assert all(patterns.is_low_byte(h, 8) for h in hosts)

    def test_count_capped_by_space(self, rng):
        hosts = LowBytePolicy(bits=4).allocate(SUBNET, 100, rng)
        assert len(hosts) == 15  # 2**4 minus the zero start

    def test_all_inside_subnet(self, rng):
        for host in LowBytePolicy(bits=16, sequential=False).allocate(SUBNET, 30, rng):
            assert SUBNET.contains(host)


class TestSequential:
    def test_pool_base(self, rng):
        hosts = SequentialPolicy(pool_base=0x1000).allocate(SUBNET, 5, rng)
        assert hosts == {SUBNET.network | (0x1000 + i) for i in range(5)}

    def test_stride(self, rng):
        hosts = SequentialPolicy(pool_base=0, stride=4).allocate(SUBNET, 4, rng)
        assert hosts == {SUBNET.network | (i * 4) for i in range(4)}


class TestEui64:
    def test_shape(self, rng):
        hosts = EUI64Policy(oui=0x001122).allocate(SUBNET, 20, rng)
        assert len(hosts) == 20
        for host in hosts:
            assert patterns.is_eui64(host)
            mac = patterns.mac_from_eui64_iid(patterns.interface_id(host))
            assert mac is not None and mac >> 24 == 0x001122


class TestPrivacyRandom:
    def test_distinct_and_inside(self, rng):
        hosts = PrivacyRandomPolicy().allocate(SUBNET, 50, rng)
        assert len(hosts) == 50
        assert all(SUBNET.contains(h) for h in hosts)


class TestPortEmbed:
    def test_ports_embedded(self, rng):
        hosts = PortEmbedPolicy(ports=(80, 443)).allocate(SUBNET, 10, rng)
        assert SUBNET.network | 0x80 in hosts
        assert SUBNET.network | 0x443 in hosts
        assert len(hosts) == 2


class TestHexWord:
    def test_words_visible(self, rng):
        hosts = HexWordPolicy(words=("dead",)).allocate(SUBNET, 4, rng)
        assert len(hosts) == 4
        for host in hosts:
            assert patterns.contains_hex_word(host) == "dead"


class TestIPv4Embedded:
    def test_sequential_v4(self, rng):
        policy = IPv4EmbeddedPolicy(v4_base=0x0A000001)
        hosts = policy.allocate(SUBNET, 3, rng)
        assert hosts == {SUBNET.network | 0x0A000001,
                         SUBNET.network | 0x0A000002,
                         SUBNET.network | 0x0A000003}


class TestFactory:
    def test_all_registered(self):
        assert set(POLICY_CLASSES) == {
            "low-byte", "dhcpv6-sequential", "slaac-eui64", "privacy-random",
            "port-embed", "hex-word", "ipv4-embed",
        }

    def test_make_with_kwargs(self):
        policy = make_policy("low-byte", bits=16)
        assert isinstance(policy, LowBytePolicy)
        assert policy.bits == 16

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nope")


class TestAllocateSubnets:
    def test_spreads_across_subnets(self, rng):
        routed = Prefix.parse("2001:db8::/32")
        hosts = allocate_subnets(routed, LowBytePolicy(), 40, 4, rng)
        subnets = {h >> 64 for h in hosts}
        assert len(subnets) == 4
        assert all(routed.contains(h) for h in hosts)

    def test_sequential_subnet_ids(self, rng):
        routed = Prefix.parse("2001:db8::/32")
        hosts = allocate_subnets(routed, LowBytePolicy(), 20, 2, rng)
        subnet_ids = {(h >> 64) & 0xFFFFFFFF for h in hosts}
        assert subnet_ids == {0, 1}

    def test_long_routed_prefix(self, rng):
        routed = Prefix.parse("2a00:0:0:8000::/66")
        hosts = allocate_subnets(
            routed, LowBytePolicy(), 10, 2, rng, subnet_length=96
        )
        assert all(routed.contains(h) for h in hosts)

    def test_rejects_subnet_shorter_than_prefix(self, rng):
        with pytest.raises(ValueError):
            allocate_subnets(Prefix.parse("2001:db8::/48"), LowBytePolicy(), 5, 1, rng, subnet_length=32)
